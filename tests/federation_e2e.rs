//! End-to-end federated PIA: three `indaas` daemons (one per provider)
//! execute the real multi-party P-SOP exchange over TCP, and the outcome
//! — intersection, union, Jaccard, *and per-party traffic* — must match
//! the in-process `SimNetwork` run of the identical topology bit for bit.

use std::sync::Arc;
use std::time::Duration;

use indaas::deps::VersionedDepDb;
use indaas::federation::{provider_component_set, Federation, FederationCoordinator, PeerRegistry};
use indaas::pia::{run_psop, PsopConfig};
use indaas::service::proto::{Request, Response, FEDERATION_PROTOCOL_VERSION};
use indaas::service::{Client, ServeConfig, Server, V1Client};
use indaas::simnet::SimNetwork;

/// Table-1 record sets for three providers with a shared core (libc6,
/// openssl, tor-shared) and distinct tails.
const PROVIDER_RECORDS: [&str; 3] = [
    r#"
        <src="A1" dst="Internet" route="ToR-shared,CoreA"/>
        <hw="A1" type="CPU" dep="xeon-a"/>
        <pgm="Riak" hw="A1" dep="libc6,openssl,erlang"/>
    "#,
    r#"
        <src="B1" dst="Internet" route="ToR-shared,CoreB"/>
        <hw="B1" type="CPU" dep="xeon-b"/>
        <pgm="Mongo" hw="B1" dep="libc6,openssl,boost"/>
    "#,
    r#"
        <src="C1" dst="Internet" route="ToR-C,CoreC"/>
        <hw="C1" type="CPU" dep="xeon-c"/>
        <pgm="Redis" hw="C1" dep="libc6,jemalloc"/>
    "#,
];

struct TestDaemon {
    addr: String,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

/// Boots one provider daemon on an ephemeral port with `records`
/// pre-loaded and federation enabled (`allow` = peer allow-list, empty =
/// open).
fn boot_daemon(records: &str, allow: &[String]) -> TestDaemon {
    boot_daemon_with_version(records, allow, FEDERATION_PROTOCOL_VERSION)
}

/// [`boot_daemon`] with the federation engine pinned to offer `version`
/// when dialing its ring successor — `1` forces the legacy hex framing.
fn boot_daemon_with_version(records: &str, allow: &[String], version: u32) -> TestDaemon {
    let mut db = VersionedDepDb::new();
    db.ingest_text(records).expect("test records parse");
    let server = Server::bind_with_db(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        },
        db,
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    let registry = PeerRegistry::with_peers(allow.iter().cloned());
    server.set_federation(Arc::new(
        Federation::with_registry(addr.clone(), registry).with_protocol_version(version),
    ));
    let handle = std::thread::spawn(move || server.run());
    TestDaemon { addr, handle }
}

fn shutdown(daemons: Vec<TestDaemon>) {
    for d in daemons {
        let mut c = Client::connect(&d.addr).expect("connect for shutdown");
        c.shutdown().expect("shutdown ack");
        d.handle.join().expect("server thread").expect("serve ok");
    }
}

#[test]
fn three_daemon_audit_matches_simnetwork_run() {
    let daemons: Vec<TestDaemon> = PROVIDER_RECORDS
        .iter()
        .map(|r| boot_daemon(r, &[]))
        .collect();
    let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();

    // The reference run: same component sets, same config, in-process.
    let datasets: Vec<Vec<String>> = PROVIDER_RECORDS
        .iter()
        .map(|r| {
            let mut db = VersionedDepDb::new();
            db.ingest_text(r).unwrap();
            provider_component_set(db.db())
        })
        .collect();
    let mut net = SimNetwork::new(datasets.len() + 1);
    let expected = run_psop(&datasets, &PsopConfig::default(), &mut net);

    let outcome = FederationCoordinator::new(peers.clone())
        .run()
        .expect("federated audit succeeds");
    let got = outcome.psop.as_ref().expect("clean run carries a result");
    assert!(!outcome.degraded(), "clean run must not degrade");

    // The audit result is identical...
    assert_eq!(got.intersection, expected.intersection);
    assert_eq!(got.union, expected.union);
    assert!((got.jaccard - expected.jaccard).abs() < 1e-12);
    // ...and so is every party's traffic accounting (Figure 8's metric):
    // parties 0..k are the daemons in ring order, party k the agent.
    for party in 0..=datasets.len() {
        assert_eq!(
            got.traffic.sent_bytes(party),
            expected.traffic.sent_bytes(party),
            "party {party} sent bytes diverge from the simulated run"
        );
        assert_eq!(
            got.traffic.recv_bytes(party),
            expected.traffic.recv_bytes(party),
            "party {party} received bytes diverge from the simulated run"
        );
    }
    assert_eq!(got.traffic.total_bytes(), expected.traffic.total_bytes());
    assert_eq!(
        got.traffic.message_count(),
        expected.traffic.message_count()
    );
    assert_eq!(
        got.traffic.max_sent_bytes(),
        expected.traffic.max_sent_bytes()
    );

    // Sanity: the shared core (libc6, openssl is only in two sets —
    // the 3-way intersection is the components in *all* sets).
    assert!(got.intersection >= 1, "libc6 is everywhere");
    assert!(got.union > got.intersection);

    shutdown(daemons);
}

/// The binary-framing acceptance: the identical audit over the
/// identical topology, once at peer protocol v2 (raw binary round
/// frames) and once forced down to v1 (hex-in-JSON lines). Results must
/// be byte-identical — same intersection/union, same per-party
/// *protocol payload* traffic — while the measured per-party *wire*
/// bytes drop by at least the promised 1.8×.
#[test]
fn binary_framing_cuts_wire_bytes_without_changing_results() {
    let run_at = |version: u32| {
        let daemons: Vec<TestDaemon> = PROVIDER_RECORDS
            .iter()
            .map(|r| boot_daemon_with_version(r, &[], version))
            .collect();
        let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();
        let outcome = FederationCoordinator::new(peers)
            .run()
            .expect("federated audit succeeds");
        shutdown(daemons);
        outcome
    };
    let hex_outcome = run_at(1);
    let binary_outcome = run_at(FEDERATION_PROTOCOL_VERSION);
    let hex = hex_outcome.psop.as_ref().expect("hex run carries a result");
    let binary = binary_outcome
        .psop
        .as_ref()
        .expect("binary run carries a result");

    // Byte-identical audit results and payload accounting.
    assert_eq!(binary.intersection, hex.intersection);
    assert_eq!(binary.union, hex.union);
    assert!((binary.jaccard - hex.jaccard).abs() < 1e-12);
    for party in 0..=PROVIDER_RECORDS.len() {
        assert_eq!(
            binary.traffic.sent_bytes(party),
            hex.traffic.sent_bytes(party),
            "protocol payload bytes are framing-independent (party {party})"
        );
    }

    // The wire itself is what shrinks: every provider's measured bytes
    // to its ring successor drop ≥ 1.8×.
    assert_eq!(
        binary_outcome.party_wire_bytes.len(),
        PROVIDER_RECORDS.len()
    );
    for (party, (&hex_wire, &bin_wire)) in hex_outcome
        .party_wire_bytes
        .iter()
        .zip(&binary_outcome.party_wire_bytes)
        .enumerate()
    {
        assert!(bin_wire > 0, "party {party} sent ring frames");
        let ratio = hex_wire as f64 / bin_wire as f64;
        assert!(
            ratio >= 1.8,
            "party {party}: hex framing used {hex_wire} wire bytes vs binary {bin_wire} \
             ({ratio:.2}x, needed >= 1.8x)"
        );
    }
}

#[test]
fn allow_listed_ring_works_and_unlisted_successor_is_refused() {
    // Boot the ring twice over the same record sets: first with mutual
    // allow-lists (must work), then point a coordinator at a successor
    // missing from the daemon's list (must fail fast).
    let a = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let b = boot_daemon(PROVIDER_RECORDS[1], &[]);
    // Daemon C only trusts A and B.
    let c = boot_daemon(PROVIDER_RECORDS[2], &[a.addr.clone(), b.addr.clone()]);

    let outcome = FederationCoordinator::new([a.addr.clone(), b.addr.clone(), c.addr.clone()])
        .run()
        .expect("mutually-listed ring runs");
    assert!(outcome.psop.expect("listed ring carries a result").union > 0);

    // An outsider daemon C refuses to dial (not on its allow-list).
    let outsider = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let err = FederationCoordinator::new([c.addr.clone(), outsider.addr.clone()])
        .run()
        .expect_err("C must refuse an unlisted successor");
    assert!(
        err.to_string().contains("allow-list"),
        "unexpected error: {err}"
    );

    shutdown(vec![a, b, c, outsider]);
}

#[test]
fn self_peering_is_rejected_with_a_clear_error() {
    let daemon = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let response = client
        .request(&Request::FederateStart {
            session: 7,
            index: 0,
            parties: 2,
            successor: daemon.addr.clone(),
            seed: 1,
            multiset: true,
            round_timeout_ms: Some(500),
        })
        .unwrap();
    match response {
        Response::Error { message } => {
            assert!(
                message.contains("own listen address") || message.contains("self"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected an error, got {other:?}"),
    }
    shutdown(vec![daemon]);
}

#[test]
fn handshake_negotiates_version_and_rejects_ancient_peers() {
    let daemon = boot_daemon(PROVIDER_RECORDS[0], &[]);
    // A peer handshake is by definition the first line of a raw
    // connection, so these probes ride the line-mode V1Client.
    // A well-behaved (even newer) peer is welcomed at our version.
    let mut modern = V1Client::connect(&daemon.addr).unwrap();
    match modern
        .request(&Request::FederateHello {
            version: FEDERATION_PROTOCOL_VERSION + 3,
            node: "test-harness".into(),
            trace: Some(true),
        })
        .unwrap()
    {
        Response::FederateWelcome {
            version,
            node,
            trace,
        } => {
            assert_eq!(version, FEDERATION_PROTOCOL_VERSION);
            assert_eq!(node, daemon.addr);
            assert_eq!(trace, Some(true), "a v2 peer offering tracing gets it");
        }
        other => panic!("expected a welcome, got {other:?}"),
    }
    // A peer speaking version 0 is turned away.
    let mut ancient = V1Client::connect(&daemon.addr).unwrap();
    match ancient
        .request(&Request::FederateHello {
            version: 0,
            node: "museum-piece".into(),
            trace: None,
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("version")),
        other => panic!("expected an error, got {other:?}"),
    }
    shutdown(vec![daemon]);
}

#[test]
fn frames_outside_a_peer_session_are_rejected() {
    let daemon = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let mut client = Client::connect(&daemon.addr).unwrap();
    match client
        .request(&Request::FederateData {
            session: 1,
            round: 0,
            from: 0,
            payload: "00ff".into(),
        })
        .unwrap()
    {
        Response::Error { message } => {
            assert!(message.contains("peer session"), "got: {message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    shutdown(vec![daemon]);
}

#[test]
fn federation_disabled_daemon_answers_with_a_clear_error() {
    // No engine installed at all.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    // A rejected handshake drops the connection, so probe each request
    // on a fresh one. FederateHello must be a connection's first line,
    // so it goes through the line-mode V1Client; FederateStart is an
    // ordinary request and rides the v2 session.
    let mut peer = V1Client::connect(&addr).unwrap();
    match peer
        .request(&Request::FederateHello {
            version: FEDERATION_PROTOCOL_VERSION,
            node: "n".into(),
            trace: None,
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("not enabled")),
        other => panic!("expected an error, got {other:?}"),
    }
    let mut client = Client::connect(&addr).unwrap();
    match client
        .request(&Request::FederateStart {
            session: 1,
            index: 0,
            parties: 2,
            successor: "127.0.0.1:1".into(),
            seed: 1,
            multiset: true,
            round_timeout_ms: None,
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("not enabled")),
        other => panic!("expected an error, got {other:?}"),
    }
    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

/// The tentpole acceptance: a federated audit leaves ONE stitched trace
/// behind. Fetching `Trace{id}` from every ring daemon and merging the
/// answers yields a span tree that spans both daemons, with genuine
/// cross-daemon parent links: the `fed_frame` spans a daemon records for
/// frames it *received* are children of the `fed_party` span minted on
/// the daemon that *sent* them.
#[test]
fn federated_audit_yields_one_stitched_trace_across_daemons() {
    use indaas::obs::{build_span_tree, format_trace_id, parse_trace_id, SpanRecord};

    let daemons: Vec<TestDaemon> = PROVIDER_RECORDS[..2]
        .iter()
        .map(|r| boot_daemon(r, &[]))
        .collect();
    let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();
    let outcome = FederationCoordinator::new(peers.clone())
        .run()
        .expect("federated audit succeeds");
    let trace_hex = format_trace_id(outcome.trace.trace_id);

    // Pull the spans each daemon recorded under the coordinator's trace.
    let mut spans: Vec<SpanRecord> = Vec::new();
    for peer in &peers {
        let mut client = Client::connect(peer).expect("connect for trace fetch");
        let (node, entries) = client.fetch_trace(&trace_hex).expect("Trace answered");
        assert_eq!(&node, peer, "daemon stamps its own address");
        for e in entries {
            assert_eq!(e.trace, trace_hex, "daemon only returns the asked trace");
            assert_eq!(e.node, node, "every span is stamped with its recorder");
            spans.push(SpanRecord {
                trace_id: parse_trace_id(&e.trace).expect("hex trace id parses"),
                span_id: e.span_id,
                parent_span_id: e.parent_span_id,
                name: e.name,
                detail: e.detail,
                node: e.node,
                start_us: e.start_us,
                elapsed_us: e.elapsed_us,
            });
        }
    }

    // Spans from BOTH daemons, under the one trace id.
    for peer in &peers {
        assert!(
            spans.iter().any(|s| &s.node == peer),
            "no spans recorded on {peer}"
        );
    }
    // Each daemon dispatched the coordinator's FederateStart and ran its
    // party under it.
    for name in ["request:FederateStart", "fed_party"] {
        for peer in &peers {
            assert!(
                spans.iter().any(|s| s.name == name && &s.node == peer),
                "{peer} recorded no {name} span"
            );
        }
    }
    // Both request spans are siblings under the coordinator's virtual
    // root span (which no daemon records).
    let request_parents: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "request:FederateStart")
        .map(|s| s.parent_span_id)
        .collect();
    assert_eq!(request_parents.len(), 2);
    assert_eq!(
        request_parents[0], request_parents[1],
        "both parties hang off the same coordinator root"
    );

    // The cross-daemon links: every received ring frame is recorded as a
    // child of the *sending* daemon's fed_party span.
    let fed_frames: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "fed_frame").collect();
    assert!(!fed_frames.is_empty(), "ring frames recorded spans");
    let mut cross_linked = 0usize;
    for frame in &fed_frames {
        let sender = spans
            .iter()
            .find(|s| s.name == "fed_party" && s.span_id == frame.parent_span_id)
            .unwrap_or_else(|| {
                panic!(
                    "fed_frame {:#x} has no fed_party parent {:#x}",
                    frame.span_id, frame.parent_span_id
                )
            });
        if sender.node != frame.node {
            cross_linked += 1;
        }
    }
    assert!(
        cross_linked > 0,
        "at least one frame span must link across daemons"
    );

    // And the whole thing assembles into one coherent tree: both request
    // spans end up as roots (their parent is the coordinator's virtual
    // root), each holding its party's spans beneath it.
    let total = spans.len();
    let tree = build_span_tree(spans);
    assert_eq!(
        tree.iter().map(|n| n.size()).sum::<usize>(),
        total,
        "every span appears in the stitched tree exactly once"
    );
    assert!(
        tree.iter()
            .any(|root| root.span.name == "request:FederateStart" && !root.children.is_empty()),
        "request roots carry their party subtrees"
    );

    shutdown(daemons);
}

/// A ring forced down to federation protocol v1 negotiates tracing away
/// (the hex framing has no room for a context) and still completes the
/// audit without wire errors; the daemons simply record no frame spans.
#[test]
fn v1_ring_negotiates_tracing_off_without_wire_errors() {
    use indaas::obs::format_trace_id;

    let daemons: Vec<TestDaemon> = PROVIDER_RECORDS[..2]
        .iter()
        .map(|r| boot_daemon_with_version(r, &[], 1))
        .collect();
    let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();
    let outcome = FederationCoordinator::new(peers.clone())
        .run()
        .expect("v1 ring still audits cleanly");
    assert!(outcome.psop.expect("listed ring carries a result").union > 0);

    let trace_hex = format_trace_id(outcome.trace.trace_id);
    for peer in &peers {
        let mut client = Client::connect(peer).expect("connect for trace fetch");
        let (_node, entries) = client.fetch_trace(&trace_hex).expect("Trace answered");
        // The request/party spans still exist (they ride the v2 client
        // envelope, not the ring framing) — but no frame ever carried a
        // context, so no fed_frame spans were recorded anywhere.
        assert!(
            entries.iter().any(|e| e.name == "fed_party"),
            "{peer} still records its party span"
        );
        assert!(
            !entries.iter().any(|e| e.name == "fed_frame"),
            "{peer} must not record frame spans on a v1 ring"
        );
    }

    shutdown(daemons);
}

#[test]
fn empty_database_cannot_federate() {
    let empty = {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        server.set_federation(Arc::new(Federation::new(addr.clone())));
        let handle = std::thread::spawn(move || server.run());
        TestDaemon { addr, handle }
    };
    let full = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let err = FederationCoordinator::new([empty.addr.clone(), full.addr.clone()])
        .with_round_timeout(Duration::from_secs(2))
        .run()
        .expect_err("an empty provider cannot join the ring");
    assert!(
        err.to_string().contains("no components"),
        "unexpected error: {err}"
    );
    shutdown(vec![empty, full]);
}
