//! End-to-end federated PIA: three `indaas` daemons (one per provider)
//! execute the real multi-party P-SOP exchange over TCP, and the outcome
//! — intersection, union, Jaccard, *and per-party traffic* — must match
//! the in-process `SimNetwork` run of the identical topology bit for bit.

use std::sync::Arc;
use std::time::Duration;

use indaas::deps::VersionedDepDb;
use indaas::federation::{provider_component_set, Federation, FederationCoordinator, PeerRegistry};
use indaas::pia::{run_psop, PsopConfig};
use indaas::service::proto::{Request, Response, FEDERATION_PROTOCOL_VERSION};
use indaas::service::{Client, ServeConfig, Server, V1Client};
use indaas::simnet::SimNetwork;

/// Table-1 record sets for three providers with a shared core (libc6,
/// openssl, tor-shared) and distinct tails.
const PROVIDER_RECORDS: [&str; 3] = [
    r#"
        <src="A1" dst="Internet" route="ToR-shared,CoreA"/>
        <hw="A1" type="CPU" dep="xeon-a"/>
        <pgm="Riak" hw="A1" dep="libc6,openssl,erlang"/>
    "#,
    r#"
        <src="B1" dst="Internet" route="ToR-shared,CoreB"/>
        <hw="B1" type="CPU" dep="xeon-b"/>
        <pgm="Mongo" hw="B1" dep="libc6,openssl,boost"/>
    "#,
    r#"
        <src="C1" dst="Internet" route="ToR-C,CoreC"/>
        <hw="C1" type="CPU" dep="xeon-c"/>
        <pgm="Redis" hw="C1" dep="libc6,jemalloc"/>
    "#,
];

struct TestDaemon {
    addr: String,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

/// Boots one provider daemon on an ephemeral port with `records`
/// pre-loaded and federation enabled (`allow` = peer allow-list, empty =
/// open).
fn boot_daemon(records: &str, allow: &[String]) -> TestDaemon {
    boot_daemon_with_version(records, allow, FEDERATION_PROTOCOL_VERSION)
}

/// [`boot_daemon`] with the federation engine pinned to offer `version`
/// when dialing its ring successor — `1` forces the legacy hex framing.
fn boot_daemon_with_version(records: &str, allow: &[String], version: u32) -> TestDaemon {
    let mut db = VersionedDepDb::new();
    db.ingest_text(records).expect("test records parse");
    let server = Server::bind_with_db(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        },
        db,
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    let registry = PeerRegistry::with_peers(allow.iter().cloned());
    server.set_federation(Arc::new(
        Federation::with_registry(addr.clone(), registry).with_protocol_version(version),
    ));
    let handle = std::thread::spawn(move || server.run());
    TestDaemon { addr, handle }
}

fn shutdown(daemons: Vec<TestDaemon>) {
    for d in daemons {
        let mut c = Client::connect(&d.addr).expect("connect for shutdown");
        c.shutdown().expect("shutdown ack");
        d.handle.join().expect("server thread").expect("serve ok");
    }
}

#[test]
fn three_daemon_audit_matches_simnetwork_run() {
    let daemons: Vec<TestDaemon> = PROVIDER_RECORDS
        .iter()
        .map(|r| boot_daemon(r, &[]))
        .collect();
    let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();

    // The reference run: same component sets, same config, in-process.
    let datasets: Vec<Vec<String>> = PROVIDER_RECORDS
        .iter()
        .map(|r| {
            let mut db = VersionedDepDb::new();
            db.ingest_text(r).unwrap();
            provider_component_set(db.db())
        })
        .collect();
    let mut net = SimNetwork::new(datasets.len() + 1);
    let expected = run_psop(&datasets, &PsopConfig::default(), &mut net);

    let outcome = FederationCoordinator::new(peers.clone())
        .run()
        .expect("federated audit succeeds");
    let got = &outcome.psop;

    // The audit result is identical...
    assert_eq!(got.intersection, expected.intersection);
    assert_eq!(got.union, expected.union);
    assert!((got.jaccard - expected.jaccard).abs() < 1e-12);
    // ...and so is every party's traffic accounting (Figure 8's metric):
    // parties 0..k are the daemons in ring order, party k the agent.
    for party in 0..=datasets.len() {
        assert_eq!(
            got.traffic.sent_bytes(party),
            expected.traffic.sent_bytes(party),
            "party {party} sent bytes diverge from the simulated run"
        );
        assert_eq!(
            got.traffic.recv_bytes(party),
            expected.traffic.recv_bytes(party),
            "party {party} received bytes diverge from the simulated run"
        );
    }
    assert_eq!(got.traffic.total_bytes(), expected.traffic.total_bytes());
    assert_eq!(
        got.traffic.message_count(),
        expected.traffic.message_count()
    );
    assert_eq!(
        got.traffic.max_sent_bytes(),
        expected.traffic.max_sent_bytes()
    );

    // Sanity: the shared core (libc6, openssl is only in two sets —
    // the 3-way intersection is the components in *all* sets).
    assert!(got.intersection >= 1, "libc6 is everywhere");
    assert!(got.union > got.intersection);

    shutdown(daemons);
}

/// The binary-framing acceptance: the identical audit over the
/// identical topology, once at peer protocol v2 (raw binary round
/// frames) and once forced down to v1 (hex-in-JSON lines). Results must
/// be byte-identical — same intersection/union, same per-party
/// *protocol payload* traffic — while the measured per-party *wire*
/// bytes drop by at least the promised 1.8×.
#[test]
fn binary_framing_cuts_wire_bytes_without_changing_results() {
    let run_at = |version: u32| {
        let daemons: Vec<TestDaemon> = PROVIDER_RECORDS
            .iter()
            .map(|r| boot_daemon_with_version(r, &[], version))
            .collect();
        let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();
        let outcome = FederationCoordinator::new(peers)
            .run()
            .expect("federated audit succeeds");
        shutdown(daemons);
        outcome
    };
    let hex = run_at(1);
    let binary = run_at(FEDERATION_PROTOCOL_VERSION);

    // Byte-identical audit results and payload accounting.
    assert_eq!(binary.psop.intersection, hex.psop.intersection);
    assert_eq!(binary.psop.union, hex.psop.union);
    assert!((binary.psop.jaccard - hex.psop.jaccard).abs() < 1e-12);
    for party in 0..=PROVIDER_RECORDS.len() {
        assert_eq!(
            binary.psop.traffic.sent_bytes(party),
            hex.psop.traffic.sent_bytes(party),
            "protocol payload bytes are framing-independent (party {party})"
        );
    }

    // The wire itself is what shrinks: every provider's measured bytes
    // to its ring successor drop ≥ 1.8×.
    assert_eq!(binary.party_wire_bytes.len(), PROVIDER_RECORDS.len());
    for (party, (&hex_wire, &bin_wire)) in hex
        .party_wire_bytes
        .iter()
        .zip(&binary.party_wire_bytes)
        .enumerate()
    {
        assert!(bin_wire > 0, "party {party} sent ring frames");
        let ratio = hex_wire as f64 / bin_wire as f64;
        assert!(
            ratio >= 1.8,
            "party {party}: hex framing used {hex_wire} wire bytes vs binary {bin_wire} \
             ({ratio:.2}x, needed >= 1.8x)"
        );
    }
}

#[test]
fn allow_listed_ring_works_and_unlisted_successor_is_refused() {
    // Boot the ring twice over the same record sets: first with mutual
    // allow-lists (must work), then point a coordinator at a successor
    // missing from the daemon's list (must fail fast).
    let a = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let b = boot_daemon(PROVIDER_RECORDS[1], &[]);
    // Daemon C only trusts A and B.
    let c = boot_daemon(PROVIDER_RECORDS[2], &[a.addr.clone(), b.addr.clone()]);

    let outcome = FederationCoordinator::new([a.addr.clone(), b.addr.clone(), c.addr.clone()])
        .run()
        .expect("mutually-listed ring runs");
    assert!(outcome.psop.union > 0);

    // An outsider daemon C refuses to dial (not on its allow-list).
    let outsider = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let err = FederationCoordinator::new([c.addr.clone(), outsider.addr.clone()])
        .run()
        .expect_err("C must refuse an unlisted successor");
    assert!(
        err.to_string().contains("allow-list"),
        "unexpected error: {err}"
    );

    shutdown(vec![a, b, c, outsider]);
}

#[test]
fn self_peering_is_rejected_with_a_clear_error() {
    let daemon = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let response = client
        .request(&Request::FederateStart {
            session: 7,
            index: 0,
            parties: 2,
            successor: daemon.addr.clone(),
            seed: 1,
            multiset: true,
            round_timeout_ms: Some(500),
        })
        .unwrap();
    match response {
        Response::Error { message } => {
            assert!(
                message.contains("own listen address") || message.contains("self"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected an error, got {other:?}"),
    }
    shutdown(vec![daemon]);
}

#[test]
fn handshake_negotiates_version_and_rejects_ancient_peers() {
    let daemon = boot_daemon(PROVIDER_RECORDS[0], &[]);
    // A peer handshake is by definition the first line of a raw
    // connection, so these probes ride the line-mode V1Client.
    // A well-behaved (even newer) peer is welcomed at our version.
    let mut modern = V1Client::connect(&daemon.addr).unwrap();
    match modern
        .request(&Request::FederateHello {
            version: FEDERATION_PROTOCOL_VERSION + 3,
            node: "test-harness".into(),
        })
        .unwrap()
    {
        Response::FederateWelcome { version, node } => {
            assert_eq!(version, FEDERATION_PROTOCOL_VERSION);
            assert_eq!(node, daemon.addr);
        }
        other => panic!("expected a welcome, got {other:?}"),
    }
    // A peer speaking version 0 is turned away.
    let mut ancient = V1Client::connect(&daemon.addr).unwrap();
    match ancient
        .request(&Request::FederateHello {
            version: 0,
            node: "museum-piece".into(),
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("version")),
        other => panic!("expected an error, got {other:?}"),
    }
    shutdown(vec![daemon]);
}

#[test]
fn frames_outside_a_peer_session_are_rejected() {
    let daemon = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let mut client = Client::connect(&daemon.addr).unwrap();
    match client
        .request(&Request::FederateData {
            session: 1,
            round: 0,
            from: 0,
            payload: "00ff".into(),
        })
        .unwrap()
    {
        Response::Error { message } => {
            assert!(message.contains("peer session"), "got: {message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    shutdown(vec![daemon]);
}

#[test]
fn federation_disabled_daemon_answers_with_a_clear_error() {
    // No engine installed at all.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    // A rejected handshake drops the connection, so probe each request
    // on a fresh one. FederateHello must be a connection's first line,
    // so it goes through the line-mode V1Client; FederateStart is an
    // ordinary request and rides the v2 session.
    let mut peer = V1Client::connect(&addr).unwrap();
    match peer
        .request(&Request::FederateHello {
            version: FEDERATION_PROTOCOL_VERSION,
            node: "n".into(),
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("not enabled")),
        other => panic!("expected an error, got {other:?}"),
    }
    let mut client = Client::connect(&addr).unwrap();
    match client
        .request(&Request::FederateStart {
            session: 1,
            index: 0,
            parties: 2,
            successor: "127.0.0.1:1".into(),
            seed: 1,
            multiset: true,
            round_timeout_ms: None,
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("not enabled")),
        other => panic!("expected an error, got {other:?}"),
    }
    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn empty_database_cannot_federate() {
    let empty = {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        server.set_federation(Arc::new(Federation::new(addr.clone())));
        let handle = std::thread::spawn(move || server.run());
        TestDaemon { addr, handle }
    };
    let full = boot_daemon(PROVIDER_RECORDS[0], &[]);
    let err = FederationCoordinator::new([empty.addr.clone(), full.addr.clone()])
        .with_round_timeout(Duration::from_secs(2))
        .run()
        .expect_err("an empty provider cannot join the ring");
    assert!(
        err.to_string().contains("no components"),
        "unexpected error: {err}"
    );
    shutdown(vec![empty, full]);
}
