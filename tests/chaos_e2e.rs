//! Chaos e2e: a three-daemon federated ring plus live subscriptions
//! driven under injected faults (`indaas-faultinj`). Every scenario must
//! end in one of exactly two ways — byte-identical completion, or an
//! *explicitly observable* degradation (a degraded `FederatedOutcome`, a
//! `ConnectionLost` terminal state, a non-zero exit) — never a hang,
//! never a panic, never silent data loss.
//!
//! The fault registry is process-global, so every test serializes on
//! [`chaos`] and disarms on drop (even when the test panics).

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use indaas::core::{AuditSpec, CandidateDeployment};
use indaas::deps::VersionedDepDb;
use indaas::faultinj;
use indaas::federation::{Federation, FederationCoordinator, PeerRegistry};
use indaas::service::{Client, ServeConfig, Server, SubscriptionEnd};
use proptest::prelude::*;

/// Same three-provider topology as the federation e2e suite: a shared
/// core (libc6) and distinct tails.
const PROVIDER_RECORDS: [&str; 3] = [
    r#"
        <src="A1" dst="Internet" route="ToR-shared,CoreA"/>
        <hw="A1" type="CPU" dep="xeon-a"/>
        <pgm="Riak" hw="A1" dep="libc6,openssl,erlang"/>
    "#,
    r#"
        <src="B1" dst="Internet" route="ToR-shared,CoreB"/>
        <hw="B1" type="CPU" dep="xeon-b"/>
        <pgm="Mongo" hw="B1" dep="libc6,openssl,boost"/>
    "#,
    r#"
        <src="C1" dst="Internet" route="ToR-C,CoreC"/>
        <hw="C1" type="CPU" dep="xeon-c"/>
        <pgm="Redis" hw="C1" dep="libc6,jemalloc"/>
    "#,
];

static CHAOS: Mutex<()> = Mutex::new(());

/// Serializes chaos tests and guarantees a clean registry on both entry
/// and exit (drop runs even when the test body panics).
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        faultinj::disarm_all();
        faultinj::clear_observer();
    }
}

fn chaos() -> ChaosGuard {
    let guard = CHAOS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    faultinj::disarm_all();
    faultinj::clear_observer();
    ChaosGuard(guard)
}

struct TestDaemon {
    addr: String,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

/// Boots a provider daemon at `addr` ("127.0.0.1:0" = ephemeral) with
/// `records` pre-loaded and open federation.
fn boot_daemon_at(addr: &str, records: &str) -> TestDaemon {
    let mut db = VersionedDepDb::new();
    db.ingest_text(records).expect("test records parse");
    let server = Server::bind_with_db(
        ServeConfig {
            addr: addr.into(),
            workers: 2,
            ..ServeConfig::default()
        },
        db,
    )
    .expect("bind daemon");
    let addr = server.local_addr().to_string();
    let registry = PeerRegistry::with_peers(std::iter::empty::<String>());
    server.set_federation(Arc::new(Federation::with_registry(addr.clone(), registry)));
    let handle = std::thread::spawn(move || server.run());
    TestDaemon { addr, handle }
}

fn boot_ring() -> Vec<TestDaemon> {
    PROVIDER_RECORDS
        .iter()
        .map(|r| boot_daemon_at("127.0.0.1:0", r))
        .collect()
}

fn shutdown(daemons: Vec<TestDaemon>) {
    for d in daemons {
        let mut c = Client::connect(&d.addr).expect("connect for shutdown");
        c.shutdown().expect("shutdown ack");
        d.handle.join().expect("server thread").expect("serve ok");
    }
}

/// Sums one counter across every daemon's `Metrics` answer.
fn counter_sum(daemons: &[TestDaemon], name: &str) -> u64 {
    daemons
        .iter()
        .map(|d| {
            let mut c = Client::connect(&d.addr).expect("connect for metrics");
            let m = c.metrics(Some(0)).expect("metrics answer");
            m.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        })
        .sum()
}

/// The no-fault regression: with nothing armed, two federated runs over
/// identical rings produce identical results AND identical measured
/// wire bytes, with zero retries/redials/failures recorded — the
/// fault-injection plumbing must be invisible when off.
#[test]
fn unarmed_runs_are_byte_identical_with_zero_retries() {
    let _guard = chaos();
    let run_once = || {
        let daemons = boot_ring();
        let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();
        let outcome = FederationCoordinator::new(peers)
            .run()
            .expect("clean federated audit");
        let retries = counter_sum(&daemons, "fed_frame_retries_total");
        let redials = counter_sum(&daemons, "fed_redials_total");
        let injected = counter_sum(&daemons, "faults_injected_total");
        shutdown(daemons);
        (outcome, retries, redials, injected)
    };
    let (first, r1, d1, i1) = run_once();
    let (second, r2, d2, i2) = run_once();

    assert_eq!((r1, d1, i1), (0, 0, 0), "no-fault run must not retry");
    assert_eq!((r2, d2, i2), (0, 0, 0));
    assert!(!first.degraded() && !second.degraded());
    let (a, b) = (first.psop.unwrap(), second.psop.unwrap());
    assert_eq!(a.intersection, b.intersection);
    assert_eq!(a.union, b.union);
    assert_eq!(
        first.party_wire_bytes, second.party_wire_bytes,
        "unarmed federation wire bytes must be deterministic"
    );
}

/// Delay faults slow every ring frame but change nothing: the audit
/// completes with the exact clean-run result while the injection
/// counter proves the fault actually fired.
#[test]
fn delayed_frames_complete_with_identical_result() {
    let _guard = chaos();
    let daemons = boot_ring();
    let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();
    let clean = FederationCoordinator::new(peers.clone())
        .run()
        .expect("clean run")
        .psop
        .unwrap();

    faultinj::arm("fed.frame.send=delay(20)").unwrap();
    let delayed = FederationCoordinator::new(peers)
        .run()
        .expect("delayed run still completes");
    // Read the trigger count *before* disarming — disarm resets it.
    assert!(faultinj::triggered("fed.frame.send") > 0, "fault must fire");
    faultinj::disarm_all();
    assert!(!delayed.degraded());
    let delayed = delayed.psop.unwrap();
    assert_eq!(delayed.intersection, clean.intersection);
    assert_eq!(delayed.union, clean.union);
    assert!((delayed.jaccard - clean.jaccard).abs() < 1e-12);
    shutdown(daemons);
}

/// Probabilistic send errors exercise the retry/backoff/re-dial path.
/// The run must end in one of the two acceptable shapes: a clean
/// completion whose result is byte-identical to the unfaulted run (with
/// the retries that saved it recorded in telemetry), or an explicit
/// degraded outcome / error — never a hang, never a wrong answer.
#[test]
fn frame_send_errors_retry_to_the_same_answer_or_fail_loudly() {
    let _guard = chaos();
    let daemons = boot_ring();
    let peers: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();
    let clean = FederationCoordinator::new(peers.clone())
        .run()
        .expect("clean run")
        .psop
        .unwrap();

    faultinj::arm("fed.frame.send=error:0.2:42").unwrap();
    let faulted = FederationCoordinator::new(peers)
        .with_round_timeout(Duration::from_secs(2))
        .run();
    assert!(faultinj::triggered("fed.frame.send") > 0, "fault must fire");
    faultinj::disarm_all();
    match faulted {
        Ok(outcome) if !outcome.degraded() => {
            let got = outcome.psop.unwrap();
            assert_eq!(got.intersection, clean.intersection, "retried run drifted");
            assert_eq!(got.union, clean.union);
            assert!(
                counter_sum(&daemons, "fed_frame_retries_total") > 0,
                "a clean completion under send errors must have retried"
            );
        }
        Ok(outcome) => {
            assert!(outcome.psop.is_none(), "degraded outcome carries no result");
            assert!(
                !outcome.parties_failed.is_empty(),
                "degradation names parties"
            );
        }
        Err(e) => {
            // An explicit, attributable error is the other allowed shape.
            assert!(!e.to_string().is_empty());
        }
    }
    shutdown(daemons);
}

/// The tentpole partial-failure scenario: one ring member is dead, and
/// the coordinator must report a *degraded* outcome naming the dead
/// party (minority unreachable) instead of erroring out — then, once the
/// daemon is restarted at the same address, the next audit completes
/// cleanly with the full result.
#[test]
fn dead_peer_degrades_with_party_named_then_restart_heals() {
    let _guard = chaos();
    // Reserve an address, then free it: the "dead" ring member.
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let dead_addr = reserved.local_addr().expect("reserved addr").to_string();
    drop(reserved);

    let a = boot_daemon_at("127.0.0.1:0", PROVIDER_RECORDS[0]);
    let b = boot_daemon_at("127.0.0.1:0", PROVIDER_RECORDS[1]);
    let peers = vec![a.addr.clone(), b.addr.clone(), dead_addr.clone()];

    let outcome = FederationCoordinator::new(peers.clone())
        .with_round_timeout(Duration::from_millis(400))
        .run()
        .expect("minority death degrades instead of erroring");
    assert!(outcome.degraded(), "one dead peer of three must degrade");
    assert!(outcome.psop.is_none(), "a degraded round has no result");
    let dead = outcome
        .parties_failed
        .iter()
        .find(|f| f.peer == dead_addr)
        .expect("the dead party is named");
    assert!(!dead.reachable, "the dead party is flagged unreachable");
    assert_eq!(dead.index, 2);
    for f in outcome
        .parties_failed
        .iter()
        .filter(|f| f.peer != dead_addr)
    {
        assert!(
            f.reachable,
            "live daemons failed their rounds *reachably*: {}",
            f.error
        );
    }

    // Restart the dead member at its old address: the ring heals and the
    // next audit completes cleanly.
    let c = boot_daemon_at(&dead_addr, PROVIDER_RECORDS[2]);
    let healed = FederationCoordinator::new(peers)
        .run()
        .expect("healed ring completes");
    assert!(!healed.degraded());
    let psop = healed.psop.expect("healed run carries the full result");
    assert!(psop.intersection >= 1, "libc6 is shared by all providers");
    assert!(psop.union > psop.intersection);
    shutdown(vec![a, b, c]);
}

/// `svc.frame.read` severs v2 sessions server-side: in-flight requests
/// fail loudly, the subscription reports `ConnectionLost` (not a clean
/// shutdown), and — once disarmed — a fresh connection works.
#[test]
fn read_fault_drops_sessions_and_subscribers_see_connection_loss() {
    let _guard = chaos();
    let daemon = boot_daemon_at("127.0.0.1:0", PROVIDER_RECORDS[0]);
    let mut client = Client::connect(&daemon.addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    let spec = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated("d", ["A1"])]);
    let mut subscription = client.subscribe(&spec).expect("subscribe");
    subscription
        .recv_timeout(Duration::from_secs(10))
        .expect("initial event")
        .expect("initial event arrives");

    faultinj::arm("svc.frame.read=disconnect").unwrap();
    // The session dies at the read loop's next iteration; the first ping
    // may still be answered (it can already be in the read buffer), but
    // pings cannot keep succeeding once the fault is armed.
    let mut survived = 0u32;
    while client.ping().is_ok() {
        survived += 1;
        assert!(survived < 50, "armed read fault never severed the session");
    }
    assert!(faultinj::triggered("svc.frame.read") > 0);
    faultinj::disarm_all();

    // The subscription drains to a ConnectionLost terminal state.
    let deadline = Instant::now() + Duration::from_secs(10);
    let end = loop {
        match subscription.recv_timeout(Duration::from_millis(100)) {
            Err(_) => break subscription.end(),
            Ok(_) => assert!(Instant::now() < deadline, "subscription never ended"),
        }
    };
    match end {
        Some(SubscriptionEnd::ConnectionLost(reason)) => {
            assert!(!reason.is_empty());
        }
        other => panic!("expected ConnectionLost, got {other:?}"),
    }

    // Disarmed: the daemon serves fresh sessions as if nothing happened.
    let mut fresh = Client::connect(&daemon.addr).expect("reconnect");
    fresh.ping().expect("daemon healthy after disarm");
    drop(client);
    drop(fresh);
    shutdown(vec![daemon]);
}

/// An *announced* shutdown is the opposite terminal state: the daemon
/// pushes `ShuttingDown` to every subscriber before draining, and the
/// subscription ends `CleanShutdown` — the signal a self-healing client
/// uses to exit zero instead of re-dialing a corpse.
#[test]
fn announced_shutdown_ends_subscriptions_cleanly() {
    let _guard = chaos();
    let daemon = boot_daemon_at("127.0.0.1:0", PROVIDER_RECORDS[0]);
    let mut watcher = Client::connect(&daemon.addr).expect("connect watcher");
    let spec = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated("d", ["A1"])]);
    let mut subscription = watcher.subscribe(&spec).expect("subscribe");
    subscription
        .recv_timeout(Duration::from_secs(10))
        .expect("initial event")
        .expect("initial event arrives");

    let mut admin = Client::connect(&daemon.addr).expect("connect admin");
    admin.shutdown().expect("shutdown ack");
    daemon
        .handle
        .join()
        .expect("server thread")
        .expect("serve ok");

    let deadline = Instant::now() + Duration::from_secs(10);
    let end = loop {
        match subscription.recv_timeout(Duration::from_millis(100)) {
            Err(_) => break subscription.end(),
            Ok(_) => assert!(Instant::now() < deadline, "subscription never ended"),
        }
    };
    assert_eq!(
        end,
        Some(SubscriptionEnd::CleanShutdown),
        "announced drain must not read as connection loss"
    );
}

/// The self-healing CLI watcher end-to-end: `indaas watch` loses its
/// connection mid-subscription (injected writer disconnect), re-dials,
/// re-subscribes, detects the epoch it missed while away, pulls the
/// fresh state, and exits zero having printed both epochs.
#[test]
fn watch_cli_reconnects_and_misses_no_epochs() {
    let _guard = chaos();
    // Two servers sharing a ToR: the CLI requires at least two per
    // deployment.
    let daemon = boot_daemon_at(
        "127.0.0.1:0",
        r#"
            <src="A1" dst="Internet" route="tor1,core1"/>
            <src="A2" dst="Internet" route="tor1,core2"/>
        "#,
    );

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_indaas"))
        .args([
            "watch",
            "--deploy",
            "d=A1,A2",
            "--addr",
            &daemon.addr,
            "--count",
            "2",
            "--timeout-ms",
            "30000",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn indaas watch");

    // Stream the child's stdout so we can synchronize on its events.
    let stdout = child.stdout.take().expect("child stdout");
    let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        use std::io::BufRead;
        let mut collected = Vec::new();
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            let _ = line_tx.send(line.clone());
            collected.push(line);
        }
        collected
    });
    // Mirror stderr too, so a watcher that dies early explains itself.
    let stderr = child.stderr.take().expect("child stderr");
    let err_reader = std::thread::spawn(move || {
        use std::io::Read;
        let mut text = String::new();
        let _ = std::io::BufReader::new(stderr).read_to_string(&mut text);
        text
    });
    let first = line_rx
        .recv_timeout(Duration::from_secs(20))
        .expect("watcher prints the initial event");
    assert!(
        first.contains("[epoch 1]"),
        "unexpected first line: {first}"
    );

    // Cut the watcher's connection under the writer, then land an ingest
    // wave while it is away.
    faultinj::arm("svc.frame.write=disconnect").unwrap();
    let mut admin = Client::connect(&daemon.addr).expect("connect admin");
    // The admin session's own response frame may also be cut — the
    // mutation still lands server-side.
    let _ = admin.ingest(r#"<hw="A1" type="Disk" dep="disk-chaos"/>"#);
    let fired_by = Instant::now() + Duration::from_secs(10);
    while faultinj::triggered("svc.frame.write") == 0 {
        assert!(Instant::now() < fired_by, "write fault never fired");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Give the watcher's session a moment to die, then heal the daemon.
    std::thread::sleep(Duration::from_millis(150));
    faultinj::disarm_all();

    // The reconnected watcher's resubscription pulls the fresh epoch-2
    // state and exits zero at --count 2.
    let status = child.wait().expect("child exits");
    let lines = reader.join().expect("stdout reader");
    let err_text = err_reader.join().expect("stderr reader");
    assert!(
        status.success(),
        "watch must exit zero after self-healing; stdout: {lines:?}; stderr: {err_text}"
    );
    assert!(
        lines.iter().any(|l| l.contains("[epoch 2]")),
        "the missed wave must surface after reconnect: {lines:?}"
    );
    shutdown(vec![daemon]);
}

/// Fault-spec parser properties (satellite): every well-formed spec
/// round-trips through Display/FromStr exactly, and malformed input is
/// rejected instead of half-parsed.
mod fault_spec_props {
    use super::*;
    use indaas::faultinj::{FaultPolicy, FaultSpec, DEFAULT_SEED};

    fn decode_policy(n: u8, delay_ms: u64) -> FaultPolicy {
        match n % 5 {
            0 => FaultPolicy::Error,
            1 => FaultPolicy::Delay(delay_ms),
            2 => FaultPolicy::Drop,
            3 => FaultPolicy::Disconnect,
            _ => FaultPolicy::Crash,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn well_formed_specs_round_trip(
            point_n in 0usize..7,
            policy_n in any::<u8>(),
            delay_ms in 0u64..100_000,
            prob_n in 0u64..1000,
            seed in any::<u64>(),
        ) {
            let points = [
                "svc.frame.read", "svc.frame.write", "fed.dial",
                "fed.frame.send", "sched.dispatch", "db.save", "db.load",
            ];
            let prob = (prob_n + 1) as f64 / 1000.0;
            let spec = FaultSpec {
                point: points[point_n].to_string(),
                policy: decode_policy(policy_n, delay_ms),
                prob,
                // At prob 1.0 the seed is never consulted and the
                // parser normalizes it — use the default there so
                // Display/parse round-trips exactly.
                seed: if prob >= 1.0 { DEFAULT_SEED } else { seed },
            };
            let rendered = spec.to_string();
            let parsed: FaultSpec = rendered.parse()
                .unwrap_or_else(|e| panic!("{rendered:?} failed to re-parse: {e}"));
            prop_assert_eq!(parsed, spec);
        }

        #[test]
        fn garbage_specs_are_rejected_not_half_parsed(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            // Anything without a point=policy shape must be rejected.
            if !text.contains('=') {
                prop_assert!(text.parse::<FaultSpec>().is_err());
            }
            // And these always, regardless of generated bytes:
            prop_assert!("=error".parse::<FaultSpec>().is_err(), "empty point");
            prop_assert!("p=".parse::<FaultSpec>().is_err(), "empty policy");
            prop_assert!("p=bogus".parse::<FaultSpec>().is_err(), "unknown policy");
            prop_assert!("p=error:1.5".parse::<FaultSpec>().is_err(), "prob > 1");
            prop_assert!("p=error:0".parse::<FaultSpec>().is_err(), "prob 0 is a no-op");
        }
    }
}
