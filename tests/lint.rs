//! Tier-1 gate: the workspace must lint clean.
//!
//! `indaas-lint` enforces the daemon's structural invariants — no
//! blocking calls reachable from the readiness loop, disciplined lock
//! nesting, every fault point and metric name declared once in its
//! registry, and no unannotated panic paths in daemon code. A finding
//! here is a real regression (or a missing reasoned
//! `// lint:allow(..)` annotation), so the whole suite fails on one.

use indaas_lint::{run, LintConfig};

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = run(&LintConfig::workspace(root)).expect("lint walks the workspace");
    assert!(
        findings.is_empty(),
        "indaas-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
