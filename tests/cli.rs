//! Integration tests for the `indaas` command-line tool.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_indaas"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("indaas-cli-test-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

const RECORDS: &str = r#"
    <src="S1" dst="Internet" route="tor1,core1"/>
    <src="S2" dst="Internet" route="tor1,core2"/>
    <src="S3" dst="Internet" route="tor2,core2"/>
"#;

#[test]
fn sia_text_report_ranks_deployments() {
    let records = write_temp("records-sia", RECORDS);
    let out = bin()
        .args([
            "sia",
            "--records",
            records.to_str().unwrap(),
            "--deploy",
            "same-rack=S1,S2",
            "--deploy",
            "cross-rack=S1,S3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cross-rack"));
    assert!(text.contains("unexpected RGs=1"), "same-rack shares tor1");
    // cross-rack must rank first.
    let cross = text.find("cross-rack").unwrap();
    let same = text.find("same-rack").unwrap();
    assert!(cross < same);
}

#[test]
fn sia_json_report_parses() {
    let records = write_temp("records-json", RECORDS);
    let out = bin()
        .args([
            "sia",
            "--records",
            records.to_str().unwrap(),
            "--deploy",
            "pair=S1,S2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["deployments"][0]["name"], "pair");
}

#[test]
fn pia_ranks_component_sets() {
    let a = write_temp("set-a", "libc6\nopenssl\nerlang\n");
    let b = write_temp("set-b", "libc6\nopenssl\nboost\n");
    let c = write_temp("set-c", "musl\nluajit\n");
    let out = bin()
        .args([
            "pia",
            "--set",
            &format!("A={}", a.display()),
            "--set",
            &format!("B={}", b.display()),
            "--set",
            &format!("C={}", c.display()),
            "--way",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // A & B share 2 of 4; pairs with C are disjoint → A & B ranks last.
    let last_line = text.lines().rfind(|l| !l.trim().is_empty()).unwrap();
    assert!(last_line.contains("A & B"), "got: {last_line}");
}

#[test]
fn dot_emits_graphviz() {
    let records = write_temp("records-dot", RECORDS);
    let out = bin()
        .args([
            "dot",
            "--records",
            records.to_str().unwrap(),
            "--servers",
            "S1,S2",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph fault_graph"));
    assert!(text.contains("tor1"));
}

#[test]
fn bad_usage_fails_with_message() {
    let out = bin().arg("sia").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--records"));

    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());

    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn serve_help_documents_daemon_and_protocol() {
    let out = bin()
        .args(["serve", "--help"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--listen"), "got: {text}");
    assert!(text.contains("--workers"), "got: {text}");
    assert!(text.contains("PROTOCOL"), "got: {text}");
    // The top-level help advertises the subcommand too.
    let out = bin().arg("--help").output().expect("binary runs");
    assert!(String::from_utf8_lossy(&out.stderr).contains("serve"));
}

#[test]
fn serve_rejects_bad_flags_and_missing_records() {
    let out = bin()
        .args(["serve", "--workers", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));

    let out = bin()
        .args(["serve", "--workers", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));

    let out = bin()
        .args(["serve", "--records", "/no/such/file"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/no/such/file"));
}

#[test]
fn serve_answers_ping_and_malformed_requests_over_tcp() {
    use std::io::{BufRead, BufReader, Write};

    // Spawn the daemon on an ephemeral port; it prints the bound address
    // on stderr ("indaas daemon listening on 127.0.0.1:PORT").
    let mut child = bin()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut banner = String::new();
    BufReader::new(stderr)
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();

    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Malformed request → Error response, connection survives.
    writer.write_all(b"{oops\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("Error") && line.contains("malformed request"),
        "got: {line}"
    );

    line.clear();
    writer.write_all(b"\"Ping\"\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim(), "\"Pong\"");

    line.clear();
    writer.write_all(b"\"Shutdown\"\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim(), "\"ShuttingDown\"");

    let status = child.wait().expect("daemon exits");
    assert!(status.success());
}
