//! Integration tests for the `indaas` command-line tool.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_indaas"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("indaas-cli-test-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

const RECORDS: &str = r#"
    <src="S1" dst="Internet" route="tor1,core1"/>
    <src="S2" dst="Internet" route="tor1,core2"/>
    <src="S3" dst="Internet" route="tor2,core2"/>
"#;

#[test]
fn sia_text_report_ranks_deployments() {
    let records = write_temp("records-sia", RECORDS);
    let out = bin()
        .args([
            "sia",
            "--records",
            records.to_str().unwrap(),
            "--deploy",
            "same-rack=S1,S2",
            "--deploy",
            "cross-rack=S1,S3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cross-rack"));
    assert!(text.contains("unexpected RGs=1"), "same-rack shares tor1");
    // cross-rack must rank first.
    let cross = text.find("cross-rack").unwrap();
    let same = text.find("same-rack").unwrap();
    assert!(cross < same);
}

#[test]
fn sia_json_report_parses() {
    let records = write_temp("records-json", RECORDS);
    let out = bin()
        .args([
            "sia",
            "--records",
            records.to_str().unwrap(),
            "--deploy",
            "pair=S1,S2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["deployments"][0]["name"], "pair");
}

#[test]
fn pia_ranks_component_sets() {
    let a = write_temp("set-a", "libc6\nopenssl\nerlang\n");
    let b = write_temp("set-b", "libc6\nopenssl\nboost\n");
    let c = write_temp("set-c", "musl\nluajit\n");
    let out = bin()
        .args([
            "pia",
            "--set",
            &format!("A={}", a.display()),
            "--set",
            &format!("B={}", b.display()),
            "--set",
            &format!("C={}", c.display()),
            "--way",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // A & B share 2 of 4; pairs with C are disjoint → A & B ranks last.
    let last_line = text.lines().rfind(|l| !l.trim().is_empty()).unwrap();
    assert!(last_line.contains("A & B"), "got: {last_line}");
}

#[test]
fn dot_emits_graphviz() {
    let records = write_temp("records-dot", RECORDS);
    let out = bin()
        .args([
            "dot",
            "--records",
            records.to_str().unwrap(),
            "--servers",
            "S1,S2",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph fault_graph"));
    assert!(text.contains("tor1"));
}

#[test]
fn bad_usage_fails_with_message() {
    let out = bin().arg("sia").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--records"));

    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());

    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn serve_help_documents_daemon_and_protocol() {
    let out = bin()
        .args(["serve", "--help"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--listen"), "got: {text}");
    assert!(text.contains("--workers"), "got: {text}");
    assert!(text.contains("PROTOCOL"), "got: {text}");
    // The top-level help advertises the subcommand too.
    let out = bin().arg("--help").output().expect("binary runs");
    assert!(String::from_utf8_lossy(&out.stderr).contains("serve"));
}

#[test]
fn serve_rejects_bad_flags_and_missing_records() {
    let out = bin()
        .args(["serve", "--workers", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));

    let out = bin()
        .args(["serve", "--max-conns", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-conns"));

    let out = bin()
        .args(["serve", "--workers", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));

    let out = bin()
        .args(["serve", "--records", "/no/such/file"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/no/such/file"));

    // A non-empty directory without a manifest is refused as --db-dir
    // rather than silently shadowed by an empty store.
    let junk_dir = std::env::temp_dir().join(format!("indaas-cli-junkdb-{}", std::process::id()));
    std::fs::create_dir_all(&junk_dir).expect("mkdir");
    std::fs::write(junk_dir.join("unrelated.txt"), "not a db").expect("write junk");
    let out = bin()
        .args(["serve", "--db-dir", junk_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("MANIFEST"));
    std::fs::remove_dir_all(&junk_dir).ok();
}

/// `serve --db-dir` across two daemon processes: the first persists its
/// `--records` seed as segments at shutdown, the second boots from the
/// directory alone and still knows every record.
#[test]
fn serve_db_dir_persists_across_processes() {
    use std::io::{BufRead, BufReader, Write};

    let dir = std::env::temp_dir().join(format!("indaas-cli-dbdir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let records = write_temp(
        "dbdir-seed.txt",
        r#"
        <src="S1" dst="Internet" route="tor1,core1"/>
        <src="S2" dst="Internet" route="tor1,core2"/>
        <hw="S1" type="Disk" dep="S1-disk"/>
        "#,
    );

    let run_daemon = |extra: &[&str]| -> String {
        let mut args = vec!["serve", "--listen", "127.0.0.1:0", "--db-dir"];
        args.push(dir.to_str().unwrap());
        args.extend_from_slice(extra);
        let mut child = bin()
            .args(&args)
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("daemon starts");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut banner = String::new();
        BufReader::new(stderr)
            .read_line(&mut banner)
            .expect("read banner");
        let addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in banner")
            .to_string();

        let stream = std::net::TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        writer.write_all(b"\"Status\"\n").expect("write");
        reader.read_line(&mut status_line).expect("read status");
        let mut line = String::new();
        writer.write_all(b"\"Shutdown\"\n").expect("write");
        reader.read_line(&mut line).expect("read shutdown ack");
        assert!(child.wait().expect("daemon exits").success());
        status_line
    };

    let first = run_daemon(&["--records", records.to_str().unwrap()]);
    assert!(first.contains("\"records\":3"), "got: {first}");
    assert!(
        dir.join("MANIFEST.json").exists(),
        "shutdown must write the segmented layout"
    );

    // Second process: no --records, everything comes from the db dir.
    let second = run_daemon(&[]);
    assert!(second.contains("\"records\":3"), "got: {second}");
    assert!(second.contains("\"epoch\":1"), "got: {second}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&records).ok();
}

#[test]
fn serve_answers_ping_and_malformed_requests_over_tcp() {
    use std::io::{BufRead, BufReader, Write};

    // Spawn the daemon on an ephemeral port; it prints the bound address
    // on stderr ("indaas daemon listening on 127.0.0.1:PORT").
    let mut child = bin()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut banner = String::new();
    BufReader::new(stderr)
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();

    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Malformed request → Error response, connection survives.
    writer.write_all(b"{oops\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("Error") && line.contains("malformed request"),
        "got: {line}"
    );

    line.clear();
    writer.write_all(b"\"Ping\"\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim(), "\"Pong\"");

    line.clear();
    writer.write_all(b"\"Shutdown\"\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim(), "\"ShuttingDown\"");

    let status = child.wait().expect("daemon exits");
    assert!(status.success());
}

/// The `watch` quickstart, end to end across two processes: a daemon
/// pre-loaded with records, then `indaas watch` subscribing over the v2
/// protocol and exiting after the initial pushed event.
#[test]
fn watch_receives_the_initial_pushed_event() {
    use std::io::{BufRead, BufReader, Write};

    let records = write_temp(
        "watch-records.txt",
        r#"
        <src="S1" dst="Internet" route="tor1,core1"/>
        <src="S2" dst="Internet" route="tor1,core2"/>
        <src="S3" dst="Internet" route="tor2,core2"/>
        "#,
    );
    let mut daemon = bin()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--records",
            records.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let stderr = daemon.stderr.take().expect("stderr piped");
    let mut banner = String::new();
    BufReader::new(stderr)
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();

    let out = bin()
        .args([
            "watch",
            "--addr",
            &addr,
            "--deploy",
            "same-tor=S1,S2",
            "--deploy",
            "cross-tor=S1,S3",
            "--count",
            "1",
            "--timeout-ms",
            "15000",
        ])
        .output()
        .expect("watch runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best=cross-tor"), "got: {text}");
    assert!(text.contains("same-tor"), "got: {text}");

    // JSON mode yields one parseable object per event.
    let out = bin()
        .args([
            "watch",
            "--addr",
            &addr,
            "--deploy",
            "pair=S1,S3",
            "--count",
            "1",
            "--timeout-ms",
            "15000",
            "--json",
        ])
        .output()
        .expect("watch --json runs");
    assert!(out.status.success());
    let line = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(line.trim()).expect("valid JSON event");
    assert_eq!(v["report"]["deployments"][0]["name"], "pair");

    // Shut the daemon down over a raw v1 line.
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    writer.write_all(b"\"Shutdown\"\n").expect("write");
    reader.read_line(&mut line).expect("read shutdown ack");
    assert!(daemon.wait().expect("daemon exits").success());
    std::fs::remove_file(&records).ok();
}

/// The "Federated PIA" quickstart, end to end: three daemons (one per
/// provider, each pre-loaded with its own records), then `indaas
/// federate` as the auditing agent.
#[test]
fn federate_audits_three_serve_processes() {
    use std::io::{BufRead, BufReader};

    let provider_records = [
        r#"<src="A1" dst="Internet" route="tor-shared,coreA"/>
<pgm="Riak" hw="A1" dep="libc6,openssl,erlang"/>"#,
        r#"<src="B1" dst="Internet" route="tor-shared,coreB"/>
<pgm="Mongo" hw="B1" dep="libc6,openssl,boost"/>"#,
        r#"<src="C1" dst="Internet" route="tor-C,coreC"/>
<pgm="Redis" hw="C1" dep="libc6,jemalloc"/>"#,
    ];
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for (i, records) in provider_records.iter().enumerate() {
        let path = write_temp(&format!("federate-cli-{i}.txt"), records);
        let mut child = bin()
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--records",
                path.to_str().unwrap(),
            ])
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("daemon starts");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut banner = String::new();
        BufReader::new(stderr)
            .read_line(&mut banner)
            .expect("read banner");
        addrs.push(
            banner
                .trim()
                .rsplit(' ')
                .next()
                .expect("address in banner")
                .to_string(),
        );
        children.push(child);
    }

    let out = bin()
        .args([
            "federate", "--peer", &addrs[0], "--peer", &addrs[1], "--peer", &addrs[2], "--json",
        ])
        .output()
        .expect("federate runs");
    assert!(
        out.status.success(),
        "federate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let num = |val: &serde_json::Value| match val {
        serde_json::Value::Number(n) => n.as_f64(),
        other => panic!("expected a number, got {other:?}"),
    };
    // libc6 is the only component in all three sets.
    assert_eq!(num(&v["intersection"]), 1.0);
    assert!(num(&v["jaccard"]) > 0.0);
    assert!(num(&v["parties"][0]["sent_bytes"]) > 0.0);
    assert_eq!(v["parties"][2]["addr"], addrs[2].as_str());

    for (child, addr) in children.iter_mut().zip(&addrs) {
        use std::io::Write;
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer.write_all(b"\"Shutdown\"\n").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(child.wait().expect("daemon exits").success());
    }
}
