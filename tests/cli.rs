//! Integration tests for the `indaas` command-line tool.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_indaas"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("indaas-cli-test-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

const RECORDS: &str = r#"
    <src="S1" dst="Internet" route="tor1,core1"/>
    <src="S2" dst="Internet" route="tor1,core2"/>
    <src="S3" dst="Internet" route="tor2,core2"/>
"#;

#[test]
fn sia_text_report_ranks_deployments() {
    let records = write_temp("records-sia", RECORDS);
    let out = bin()
        .args([
            "sia",
            "--records",
            records.to_str().unwrap(),
            "--deploy",
            "same-rack=S1,S2",
            "--deploy",
            "cross-rack=S1,S3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cross-rack"));
    assert!(text.contains("unexpected RGs=1"), "same-rack shares tor1");
    // cross-rack must rank first.
    let cross = text.find("cross-rack").unwrap();
    let same = text.find("same-rack").unwrap();
    assert!(cross < same);
}

#[test]
fn sia_json_report_parses() {
    let records = write_temp("records-json", RECORDS);
    let out = bin()
        .args([
            "sia",
            "--records",
            records.to_str().unwrap(),
            "--deploy",
            "pair=S1,S2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["deployments"][0]["name"], "pair");
}

#[test]
fn pia_ranks_component_sets() {
    let a = write_temp("set-a", "libc6\nopenssl\nerlang\n");
    let b = write_temp("set-b", "libc6\nopenssl\nboost\n");
    let c = write_temp("set-c", "musl\nluajit\n");
    let out = bin()
        .args([
            "pia",
            "--set",
            &format!("A={}", a.display()),
            "--set",
            &format!("B={}", b.display()),
            "--set",
            &format!("C={}", c.display()),
            "--way",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // A & B share 2 of 4; pairs with C are disjoint → A & B ranks last.
    let last_line = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .last()
        .unwrap();
    assert!(last_line.contains("A & B"), "got: {last_line}");
}

#[test]
fn dot_emits_graphviz() {
    let records = write_temp("records-dot", RECORDS);
    let out = bin()
        .args([
            "dot",
            "--records",
            records.to_str().unwrap(),
            "--servers",
            "S1,S2",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph fault_graph"));
    assert!(text.contains("tor1"));
}

#[test]
fn bad_usage_fails_with_message() {
    let out = bin().arg("sia").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--records"));

    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());

    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
