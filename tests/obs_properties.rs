//! Property-based tests on the observability core: log₂ histogram
//! invariants (bucket placement, merge, quantile bounds) and
//! flight-recorder ring eviction.

use indaas::obs::{
    bucket_index, bucket_upper_bound, FlightRecorder, Histo, HistoSnapshot, Trace, HISTO_BUCKETS,
};
use proptest::prelude::*;

/// Strategy: values spread across the full log₂ range, not just the low
/// buckets a uniform `any::<u64>()` would oversample.
fn spread_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 1..64usize).prop_map(|raws| {
        raws.into_iter()
            // The value's low bits pick how far to shift it down, so the
            // samples cover every bucket order of magnitude.
            .map(|raw| raw >> (raw % 64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands in exactly the bucket whose half-open range
    /// contains it, and the bucket upper bounds are monotone.
    #[test]
    fn bucket_placement_and_monotonicity(values in spread_values()) {
        for v in values {
            let i = bucket_index(v);
            prop_assert!(i < HISTO_BUCKETS);
            prop_assert!(v <= bucket_upper_bound(i), "value above its bucket bound");
            if i > 0 {
                prop_assert!(
                    v > bucket_upper_bound(i - 1),
                    "value {} also fits the previous bucket {}",
                    v,
                    i - 1
                );
            }
        }
        for i in 1..HISTO_BUCKETS {
            prop_assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
    }

    /// Merging two snapshots is indistinguishable from having recorded
    /// both value streams interleaved into one histogram. Values are
    /// masked below 2^56 so the sum cannot overflow (128 × 2^56 < 2^64)
    /// — `record` is wrapping, `merge` saturating; they only agree while
    /// the sum stays in range, which real microsecond latencies do.
    #[test]
    fn merge_equals_interleaved_record(a in spread_values(), b in spread_values()) {
        let mask = (1u64 << 56) - 1;
        let a: Vec<u64> = a.into_iter().map(|v| v & mask).collect();
        let b: Vec<u64> = b.into_iter().map(|v| v & mask).collect();
        let left = Histo::new();
        let right = Histo::new();
        let combined = Histo::new();
        for &v in &a {
            left.record(v);
            combined.record(v);
        }
        for &v in &b {
            right.record(v);
            combined.record(v);
        }
        let mut merged: HistoSnapshot = left.snapshot();
        merged.merge(&right.snapshot());
        let expected = combined.snapshot();
        prop_assert_eq!(merged.count, expected.count);
        prop_assert_eq!(merged.sum, expected.sum);
        prop_assert_eq!(merged.buckets.to_vec(), expected.buckets.to_vec());
    }

    /// The reported quantile bound is sound: at least a `q` fraction of
    /// recorded values are `<=` it, and it never exceeds twice the true
    /// maximum (the log₂ bucket guarantee `v <= bound < 2v + 1`).
    #[test]
    fn quantile_bounds_are_sound(values in spread_values(), q in 1u32..101) {
        let q = f64::from(q) / 100.0;
        let histo = Histo::new();
        for &v in &values {
            histo.record(v);
        }
        let snap = histo.snapshot();
        let bound = snap.quantile(q);
        let at_or_below = values.iter().filter(|&&v| v <= bound).count();
        let rank = (q * values.len() as f64).ceil().max(1.0) as usize;
        prop_assert!(
            at_or_below >= rank.min(values.len()),
            "quantile({}) = {} covers only {}/{} values",
            q,
            bound,
            at_or_below,
            values.len()
        );
        let max = *values.iter().max().unwrap();
        prop_assert!(bound <= max.saturating_mul(2).saturating_add(1));
    }
}

mod trace_props {
    use indaas::obs::{build_span_tree, SpanNode, SpanRecord, TraceContext};
    use indaas::service::proto::{decode_traced_round_frame, encode_traced_round_frame};
    use proptest::prelude::*;

    /// A valid wire context from raw draws — ids nonzero where the
    /// encoding requires (zero is the "absent" sentinel).
    fn ctx_from(hi: u64, lo: u64, span: u64, parent: u64) -> TraceContext {
        TraceContext {
            trace_id: ((hi as u128) << 64 | lo as u128).max(1),
            span_id: span.max(1),
            parent_span_id: parent,
        }
    }

    /// Flattens a span forest back into records, any order.
    fn flatten(nodes: &[SpanNode], out: &mut Vec<SpanRecord>) {
        for node in nodes {
            out.push(node.span.clone());
            flatten(&node.children, out);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Both wire forms of the context — the envelope header string
        /// and the 32-byte frame extension — roundtrip exactly.
        #[test]
        fn context_wire_forms_roundtrip(
            hi in any::<u64>(),
            lo in any::<u64>(),
            span in any::<u64>(),
            parent in any::<u64>(),
        ) {
            let ctx = ctx_from(hi, lo, span, parent);
            let header = ctx.encode_header();
            prop_assert_eq!(TraceContext::parse_header(&header), Some(ctx));
            prop_assert_eq!(TraceContext::from_bytes(&ctx.to_bytes()), Some(ctx));
        }

        /// Arbitrary byte soup never panics the header parser, and
        /// anything it does accept re-encodes to a header that parses
        /// to the same context.
        #[test]
        fn garbage_headers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
            let s = String::from_utf8_lossy(&bytes);
            if let Some(ctx) = TraceContext::parse_header(&s) {
                prop_assert_eq!(TraceContext::parse_header(&ctx.encode_header()), Some(ctx));
            }
        }

        /// Arbitrary bytes never panic the binary round-frame reader,
        /// and a traced frame roundtrips payload and context — with or
        /// without the 32-byte extension.
        #[test]
        fn frame_reader_survives_garbage_and_roundtrips(
            garbage in proptest::collection::vec(any::<u8>(), 0..96),
            session in any::<u64>(),
            round in 0u32..64,
            from in 0u32..64,
            payload in proptest::collection::vec(any::<u8>(), 0..128),
            traced in any::<bool>(),
            hi in any::<u64>(),
            lo in any::<u64>(),
        ) {
            // Garbage: any outcome but a panic is acceptable.
            let _ = decode_traced_round_frame(&garbage);

            let ctx = traced.then(|| ctx_from(hi, lo, hi ^ lo, lo));
            let frame = encode_traced_round_frame(session, round, from, &payload, ctx.as_ref());
            let (s, r, f, p, c) = decode_traced_round_frame(&frame).expect("own encoding decodes");
            prop_assert_eq!(s, session);
            prop_assert_eq!(r, round);
            prop_assert_eq!(f, from);
            prop_assert_eq!(p, payload.as_slice());
            prop_assert_eq!(c, ctx);
        }

        /// Span-tree assembly is insertion-order independent: any
        /// permutation of the records builds the same tree, holding
        /// every record exactly once.
        #[test]
        fn span_tree_is_order_independent(
            // spans[i]'s parent is an earlier span (or the virtual root
            // when the draw lands on i itself).
            parents in proptest::collection::vec(any::<u64>(), 1..24),
            seed in any::<u64>(),
        ) {
            let trace_id = 0xfeedu128;
            let mut spans: Vec<SpanRecord> = Vec::new();
            for (i, pick) in parents.iter().enumerate() {
                let parent = (pick % (i as u64 + 1)) as usize; // in 0..=i
                spans.push(SpanRecord {
                    trace_id,
                    span_id: i as u64 + 1,
                    parent_span_id: if parent == i { 0 } else { parent as u64 + 1 },
                    name: format!("span{i}"),
                    detail: String::new(),
                    node: String::new(),
                    start_us: (i as u64) * 10,
                    elapsed_us: 5,
                });
            }
            let baseline = build_span_tree(spans.clone());

            // A cheap deterministic Fisher–Yates shuffle.
            let mut shuffled = spans.clone();
            let mut state = seed | 1;
            for i in (1..shuffled.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                shuffled.swap(i, (state >> 33) as usize % (i + 1));
            }
            let permuted = build_span_tree(shuffled);
            prop_assert_eq!(&baseline, &permuted);

            let mut flat = Vec::new();
            flatten(&baseline, &mut flat);
            prop_assert_eq!(flat.len(), spans.len());
            let mut ids: Vec<u64> = flat.iter().map(|s| s.span_id).collect();
            ids.sort_unstable();
            let mut expected: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
            expected.sort_unstable();
            prop_assert_eq!(ids, expected);
        }
    }
}

mod ring_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The ring keeps exactly the newest `capacity` traces, assigns
        /// strictly increasing sequence numbers, and `recent(n)` returns
        /// them newest first.
        #[test]
        fn ring_evicts_oldest_keeps_newest(
            capacity in 1usize..20,
            total in 0usize..60,
            slow_us in 0u64..2000,
        ) {
            let recorder = FlightRecorder::new(capacity, slow_us);
            for i in 0..total {
                let mut trace = Trace::new("sia", format!("t{i}"));
                trace.total_us = i as u64 * 100;
                recorder.record(trace);
            }
            prop_assert_eq!(recorder.len(), total.min(capacity));
            let recent = recorder.recent(total + 1);
            prop_assert_eq!(recent.len(), total.min(capacity));
            // Newest first, contiguous, and ending at the newest seq.
            for (offset, trace) in recent.iter().enumerate() {
                prop_assert_eq!(trace.seq, (total - offset) as u64);
                prop_assert_eq!(
                    trace.detail.clone(),
                    format!("t{}", total - offset - 1)
                );
                prop_assert_eq!(trace.slow, trace.total_us >= slow_us);
            }
            // A partial read returns only the newest n.
            let two = recorder.recent(2);
            prop_assert_eq!(two.len(), total.min(capacity).min(2));
            if let Some(first) = two.first() {
                prop_assert_eq!(first.seq, total as u64);
            }
        }
    }
}
