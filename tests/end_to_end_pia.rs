//! End-to-end private independence auditing: provider component sets →
//! normalization → (MinHash) → P-SOP → Jaccard ranking, across crates.

use std::collections::BTreeSet;

use indaas::deps::DepDb;
use indaas::pia::jaccard::jaccard_exact;
use indaas::pia::normalize::normalize_set;
use indaas::pia::{minhash_signature, rank_deployments, run_psop, PsopConfig};
use indaas::simnet::SimNetwork;
use indaas::topology::clouds::{cloud_software_records, cloud_stacks};

/// P-SOP over the four case-study clouds yields exactly the plaintext
/// Jaccard similarities — privacy costs no accuracy at this level.
#[test]
fn psop_matches_plaintext_jaccard_on_cloud_stacks() {
    let stacks = cloud_stacks();
    for pair in [(0usize, 1usize), (1, 2), (0, 3)] {
        let a = normalize_set(stacks[pair.0].packages.iter().map(String::as_str));
        let b = normalize_set(stacks[pair.1].packages.iter().map(String::as_str));
        let exact = {
            let sa: BTreeSet<String> = a.iter().cloned().collect();
            let sb: BTreeSet<String> = b.iter().cloned().collect();
            jaccard_exact(&[sa, sb])
        };
        let mut net = SimNetwork::new(3);
        let out = run_psop(&[a, b], &PsopConfig::default(), &mut net);
        assert!(
            (out.jaccard - exact).abs() < 1e-12,
            "pair {pair:?}: psop={} exact={exact}",
            out.jaccard
        );
    }
}

/// The full Table 2 pipeline: all 2-way and 3-way rankings are complete,
/// ascending, and identify the Erlang-sharing pair as least independent.
#[test]
fn table2_rankings_complete_and_ordered() {
    let providers: Vec<(String, Vec<String>)> = cloud_stacks()
        .into_iter()
        .map(|s| (s.name, normalize_set(s.packages.iter().map(String::as_str))))
        .collect();
    let two = rank_deployments(&providers, 2, None, &PsopConfig::default());
    let three = rank_deployments(&providers, 3, None, &PsopConfig::default());
    assert_eq!(two.len(), 6);
    assert_eq!(three.len(), 4);
    for w in two.windows(2) {
        assert!(w[0].jaccard <= w[1].jaccard);
    }
    assert_eq!(two[5].providers, vec!["Cloud1", "Cloud4"]); // Riak + CouchDB.
    assert_eq!(three[0].providers, vec!["Cloud2", "Cloud3", "Cloud4"]);
}

/// MinHash-compressed PIA approximates the exact ranking within the
/// O(1/sqrt(m)) error bound and keeps the worst pair last.
#[test]
fn minhash_pia_tracks_exact() {
    let providers: Vec<(String, Vec<String>)> = cloud_stacks()
        .into_iter()
        .map(|s| (s.name, normalize_set(s.packages.iter().map(String::as_str))))
        .collect();
    let exact = rank_deployments(&providers, 2, None, &PsopConfig::default());
    let approx = rank_deployments(&providers, 2, Some(512), &PsopConfig::default());
    assert_eq!(
        approx.last().unwrap().providers,
        exact.last().unwrap().providers
    );
    // Values within the estimator's error budget.
    for r in &approx {
        let e = exact.iter().find(|x| x.providers == r.providers).unwrap();
        assert!(
            (r.jaccard - e.jaccard).abs() < 0.15,
            "{:?}: approx {} vs exact {}",
            r.providers,
            r.jaccard,
            e.jaccard
        );
    }
}

/// The DepDB component-set extraction feeds PIA directly: records in,
/// similarity out.
#[test]
fn depdb_component_sets_feed_psop() {
    let db = DepDb::from_records(cloud_software_records());
    let hosts: Vec<String> = db.hosts().into_iter().collect();
    assert_eq!(hosts.len(), 4);
    let sets: Vec<Vec<String>> = hosts
        .iter()
        .map(|h| db.component_set_of(h).into_iter().collect())
        .collect();
    let mut net = SimNetwork::new(3);
    let out = run_psop(
        &[sets[0].clone(), sets[1].clone()],
        &PsopConfig::default(),
        &mut net,
    );
    assert!(out.union > 0);
    assert!(out.intersection > 0, "all stacks share base packages");
}

/// Signatures are deterministic: two providers computing MinHash
/// independently over equal sets produce identical signatures (the
/// protocol depends on this).
#[test]
fn minhash_deterministic_across_parties() {
    let set = normalize_set(["libc6-2.19", "openssl-1.0.1f", "zlib1g-1.2.8"]);
    assert_eq!(minhash_signature(&set, 64), minhash_signature(&set, 64));
}
