//! End-to-end structural independence auditing: dependency records →
//! DepDB → fault graph → risk groups → ranked report, across crates.

use indaas::core::{AuditSpec, AuditingAgent, CandidateDeployment, RankingMetric, RgAlgorithm};
use indaas::deps::DependencyAcquisitionModule;
use indaas::deps::{parse_records, DepDb, FailureProbModel, SimCollector};
use indaas::topology::{BensonDatacenter, IaasLab};

/// The §6.2.2 case study end to end: the audit must surface the co-located
/// VMs' shared host as the top risk group, and the re-deployment must
/// eliminate all unexpected risk groups.
#[test]
fn iaas_case_study_end_to_end() {
    let lab = IaasLab::new(42);
    let agent = AuditingAgent::new(DepDb::from_records(lab.records()));
    let spec = AuditSpec {
        software: false,
        ..AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
            "riak",
            [lab.vm_name(7), lab.vm_name(8)],
        )])
    };
    let report = agent.audit_sia(&spec).unwrap();
    let audit = &report.deployments[0];
    assert_eq!(audit.ranked_rgs[0].events, vec!["Server2".to_string()]);
    assert!(audit.unexpected_rgs > 0);

    // Re-deploy on distinct servers, as the report suggests.
    let fixed = IaasLab::with_placement(vec![1, 1, 1, 1, 1, 1, 1, 2]);
    let agent = AuditingAgent::new(DepDb::from_records(fixed.records()));
    let spec = AuditSpec {
        software: false,
        ..AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
            "riak-fixed",
            [fixed.vm_name(7), fixed.vm_name(8)],
        )])
    };
    let report = agent.audit_sia(&spec).unwrap();
    assert_eq!(report.deployments[0].unexpected_rgs, 0);
}

/// The §6.2.1 case study end to end with both RG algorithms: minimal and
/// sampling must agree on which deployments have unexpected RGs.
#[test]
fn network_case_study_algorithms_agree() {
    let dc = BensonDatacenter::new();
    let agent = AuditingAgent::new(DepDb::from_records(dc.network_records()));
    // A clean cross-group pair and a dirty same-group pair.
    let candidates = vec![
        CandidateDeployment::replicated("same-agg", [dc.server_name(1), dc.server_name(2)]),
        CandidateDeployment::replicated("cross-agg", [dc.server_name(1), dc.server_name(20)]),
    ];
    let minimal = agent
        .audit_sia(&AuditSpec::sia_size_based(candidates.clone()))
        .unwrap();
    let sampling = agent
        .audit_sia(&AuditSpec {
            algorithm: RgAlgorithm::Sampling {
                rounds: 20_000,
                fail_prob: 0.5,
                seed: 1,
                threads: 2,
            },
            ..AuditSpec::sia_size_based(candidates)
        })
        .unwrap();
    for report in [&minimal, &sampling] {
        assert_eq!(report.best().unwrap().name, "cross-agg");
        assert_eq!(report.best().unwrap().unexpected_rgs, 0);
        let dirty = report
            .deployments
            .iter()
            .find(|d| d.name == "same-agg")
            .unwrap();
        assert_eq!(
            dirty.unexpected_rgs, 1,
            "shared b1 must be an unexpected RG"
        );
    }
}

/// Lossy collectors (the paper's ~90% detection) still surface the shared
/// dependency as long as at least one route mentioning it is detected.
#[test]
fn audit_through_lossy_collector() {
    let dc = BensonDatacenter::new();
    let mut collector = SimCollector::new("nsdminer", dc.network_records(), 0.1, 99);
    let mut records = Vec::new();
    for host in collector.hosts() {
        records.extend(collector.collect(&host).unwrap());
    }
    let full = dc.network_records().len();
    assert!(
        records.len() < full,
        "the lossy collector must miss something"
    );
    assert!(records.len() > full * 8 / 10, "~90% coverage expected");

    let agent = AuditingAgent::new(DepDb::from_records(records));
    // Both racks are in the b1 group: {b1} should still be found if both
    // servers kept at least one route.
    let spec = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
        "same-agg",
        [dc.server_name(3), dc.server_name(4)],
    )]);
    let report = agent.audit_sia(&spec).unwrap();
    let audit = &report.deployments[0];
    assert!(
        audit
            .ranked_rgs
            .iter()
            .any(|rg| rg.events == vec!["b1".to_string()]),
        "the shared aggregation router must survive 10% collection loss"
    );
}

/// Probability-ranked audit over the Figure 3 running example: Pr(outage)
/// must match the analytic value for the dominating singleton RGs.
#[test]
fn probability_audit_matches_analytic() {
    let db = DepDb::from_records(
        parse_records(
            r#"
            <src="S1" dst="Internet" route="tor1"/>
            <src="S2" dst="Internet" route="tor1"/>
        "#,
        )
        .unwrap(),
    );
    let agent = AuditingAgent::new(db);
    let spec = AuditSpec {
        metric: RankingMetric::Probability { default_prob: 0.25 },
        prob_model: Some(FailureProbModel::new(0.25)),
        ..AuditSpec::sia_size_based(vec![CandidateDeployment::replicated("pair", ["S1", "S2"])])
    };
    let report = agent.audit_sia(&spec).unwrap();
    let audit = &report.deployments[0];
    // Only RG is {tor1} with probability 0.25 → Pr(T) = 0.25.
    let pr = audit.failure_probability.unwrap();
    assert!((pr - 0.25).abs() < 1e-12, "Pr(T) = {pr}");
    assert_eq!(audit.ranked_rgs.len(), 1);
    assert!((audit.ranked_rgs[0].importance.unwrap() - 1.0).abs() < 1e-12);
}

/// Reports serialize to JSON and back — the agent-to-client wire format.
#[test]
fn report_json_roundtrip() {
    let lab = IaasLab::new(7);
    let agent = AuditingAgent::new(DepDb::from_records(lab.records()));
    let spec = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
        "riak",
        [lab.vm_name(7), lab.vm_name(8)],
    )]);
    let report = agent.audit_sia(&spec).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: indaas::sia::AuditReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.deployments.len(), report.deployments.len());
    assert_eq!(back.best().unwrap().name, report.best().unwrap().name);
}
