//! Cross-crate property-based tests on the core auditing invariants.

use indaas::deps::{
    shard_index, DepDb, DepView, DependencyRecord, HardwareDep, NetworkDep, ShardedDepDb,
    SoftwareDep, VersionedDepDb,
};
use indaas::graph::detail::{component_sets_to_graph, ComponentSet};
use indaas::graph::{FaultGraphBuilder, Gate};
use indaas::sia::{
    failure_sampling, minimal_risk_groups, MinimalConfig, RgFamily, RiskGroup, SamplingConfig,
};
use proptest::prelude::*;

/// Strategy: 2–4 component sets over a small shared universe, every set
/// non-empty.
fn component_sets() -> impl Strategy<Value = Vec<ComponentSet>> {
    proptest::collection::vec(proptest::collection::btree_set(0u8..12, 1..6), 2..5usize).prop_map(
        |sets| {
            sets.into_iter()
                .enumerate()
                .map(|(i, comps)| {
                    ComponentSet::new(format!("E{i}"), comps.into_iter().map(|c| format!("c{c}")))
                })
                .collect()
        },
    )
}

/// Decodes a small integer into one of a few dozen distinct dependency
/// records spanning all three kinds — small enough a random pair of
/// batches overlaps often, which is where the epoch edge cases live.
fn decode_record(n: u32) -> DependencyRecord {
    let host = format!("S{}", (n / 3) % 4);
    let dep = (n / 12) % 5;
    match n % 3 {
        0 => DependencyRecord::Network(NetworkDep {
            src: host,
            dst: "Internet".to_string(),
            route: vec![format!("dev{dep}")],
        }),
        1 => DependencyRecord::Hardware(HardwareDep {
            hw: host,
            hw_type: "CPU".to_string(),
            dep: format!("chip{dep}"),
        }),
        _ => DependencyRecord::Software(SoftwareDep {
            pgm: "Svc".to_string(),
            hw: host,
            deps: vec![format!("lib{dep}")],
        }),
    }
}

/// Strategy: a batch of up to a dozen (possibly duplicate) records.
fn record_batch() -> impl Strategy<Value = Vec<DependencyRecord>> {
    proptest::collection::vec(0u32..60, 1..12usize)
        .prop_map(|ns| ns.into_iter().map(decode_record).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Retracting records that were never ingested is a complete no-op:
    /// no epoch bump, no record count change, everything ignored.
    #[test]
    fn retract_of_absent_records_never_bumps_epoch(
        ingest in record_batch(),
        retract in record_batch(),
    ) {
        let mut v = VersionedDepDb::new();
        v.ingest(ingest.clone());
        let absent: Vec<DependencyRecord> = retract
            .into_iter()
            .filter(|r| !ingest.contains(r))
            .collect();
        let epoch_before = v.epoch();
        let len_before = v.db().len();
        let report = v.retract(&absent);
        prop_assert_eq!(report.changed, 0);
        prop_assert_eq!(report.ignored, absent.len());
        prop_assert_eq!(v.epoch(), epoch_before);
        prop_assert_eq!(v.db().len(), len_before);
    }

    /// An update that retracts and re-ingests the same batch is a net
    /// no-op: the epoch must not move, whatever duplicates the batch
    /// contains.
    #[test]
    fn self_update_is_epoch_neutral(batch in record_batch()) {
        let mut v = VersionedDepDb::new();
        v.ingest(batch.clone());
        let epoch_before = v.epoch();
        let len_before = v.db().len();
        let report = v.update(&batch, batch.clone());
        prop_assert_eq!(report.changed, 0);
        prop_assert_eq!(v.epoch(), epoch_before);
        prop_assert_eq!(v.db().len(), len_before);
    }

    /// The epoch advances exactly when a batch changes the record set,
    /// and by exactly one per effective batch.
    #[test]
    fn epoch_bumps_iff_batch_changes_something(
        first in record_batch(),
        second in record_batch(),
    ) {
        let mut v = VersionedDepDb::new();
        let r1 = v.ingest(first.clone());
        prop_assert!(r1.changed > 0, "fresh batch into an empty db always changes it");
        prop_assert_eq!(v.epoch(), 1);
        let before = v.epoch();
        let len_before = v.db().len();
        let r2 = v.ingest(second.clone());
        let expect_bump = r2.changed > 0;
        prop_assert_eq!(v.epoch(), before + u64::from(expect_bump));
        prop_assert_eq!(v.db().len(), len_before + r2.changed);
        // Re-ingesting everything again is pure duplicates: no bump.
        let before = v.epoch();
        let dup = v.ingest(first.into_iter().chain(second));
        prop_assert_eq!(dup.changed, 0);
        prop_assert_eq!(v.epoch(), before);
    }

    /// Ingest then full retract round-trips to an empty database with
    /// exactly two epoch bumps, and a second retract of the same batch
    /// is entirely ignored.
    #[test]
    fn full_retract_empties_with_one_bump(batch in record_batch()) {
        let mut v = VersionedDepDb::new();
        v.ingest(batch.clone());
        prop_assert_eq!(v.epoch(), 1);
        let r = v.retract(&batch);
        prop_assert!(r.changed > 0);
        prop_assert_eq!(v.epoch(), 2);
        prop_assert!(v.db().is_empty());
        let again = v.retract(&batch);
        prop_assert_eq!(again.changed, 0);
        prop_assert_eq!(again.ignored, batch.len());
        prop_assert_eq!(v.epoch(), 2);
    }

    /// `update` replacing a batch with a disjoint one bumps exactly once
    /// and lands on exactly the fresh records.
    #[test]
    fn disjoint_update_is_one_bump(batch in record_batch()) {
        let mut v = VersionedDepDb::new();
        v.ingest(batch.clone());
        let fresh: Vec<DependencyRecord> = batch
            .iter()
            .map(|r| match r {
                DependencyRecord::Network(n) => {
                    let mut n = n.clone();
                    n.route.push("re-measured".to_string());
                    DependencyRecord::Network(n)
                }
                DependencyRecord::Hardware(h) => {
                    let mut h = h.clone();
                    h.dep.push_str("-v2");
                    DependencyRecord::Hardware(h)
                }
                DependencyRecord::Software(s) => {
                    let mut s = s.clone();
                    s.deps.push("libnew".to_string());
                    DependencyRecord::Software(s)
                }
            })
            .collect();
        let before = v.epoch();
        let report = v.update(&batch, fresh.clone());
        prop_assert!(report.changed > 0);
        prop_assert_eq!(v.epoch(), before + 1);
        for f in &fresh {
            prop_assert!(!v.db().is_empty());
            // Every fresh record must be present (retract removed the stale ones).
            let mut probe = VersionedDepDb::from_db(v.db().clone());
            prop_assert_eq!(probe.retract(std::slice::from_ref(f)).changed, 1);
        }
    }

    /// Shard routing is deterministic and host-sticky: every record of a
    /// host lands in `shard_index(host, n)`, so lookups through the
    /// sharded store and a monolithic database over the same batch are
    /// indistinguishable, and a batch touches no shard outside its
    /// hosts' shards.
    #[test]
    fn same_host_always_routes_to_the_same_shard(
        batch in record_batch(),
        shards in 1usize..12,
    ) {
        let sharded = ShardedDepDb::new(shards);
        let report = sharded.ingest(batch.clone());
        let mono = DepDb::from_records(batch.clone());
        prop_assert_eq!(sharded.len(), mono.len());
        let host_shards: std::collections::BTreeSet<usize> = batch
            .iter()
            .map(|r| shard_index(r.host(), shards))
            .collect();
        for &s in &report.touched {
            prop_assert!(host_shards.contains(&s), "shard {s} gained records without a host routed to it");
        }
        let snap = sharded.snapshot();
        for host in mono.hosts() {
            prop_assert_eq!(shard_index(&host, shards), snap.shard_of(&host));
            prop_assert_eq!(snap.network_deps(&host), mono.network_deps(&host));
            prop_assert_eq!(snap.hardware_deps(&host), mono.hardware_deps(&host));
            prop_assert_eq!(snap.software_deps(&host), mono.software_deps(&host));
        }
        // Epochs moved only on touched shards.
        let epochs = sharded.epochs();
        for s in 0..shards {
            let expect = u64::from(report.touched.contains(&s));
            prop_assert_eq!(epochs.get(s), expect);
        }
    }

    /// A duplicate re-ingest plus a retract of never-ingested records is
    /// a complete no-op shard-wise: every shard epoch stays exactly
    /// where it started and no snapshot is refreshed.
    #[test]
    fn noop_ingest_retract_leaves_every_shard_epoch_in_place(
        batch in record_batch(),
        absent in record_batch(),
        shards in 1usize..12,
    ) {
        let sharded = ShardedDepDb::new(shards);
        sharded.ingest(batch.clone());
        let epochs_before = sharded.epochs();
        let global_before = sharded.epoch();
        let dup = sharded.ingest(batch.clone());
        prop_assert_eq!(dup.changed, 0);
        prop_assert!(dup.touched.is_empty());
        let absent: Vec<DependencyRecord> = absent
            .into_iter()
            .filter(|r| !batch.contains(r))
            .collect();
        let gone = sharded.retract(&absent);
        prop_assert_eq!(gone.changed, 0);
        prop_assert!(gone.touched.is_empty());
        prop_assert_eq!(sharded.epochs(), epochs_before);
        prop_assert_eq!(sharded.epoch(), global_before);
    }

    /// Ingest-then-retract round-trips every shard back to its starting
    /// record set: touched shards bump exactly twice, shards outside the
    /// batch's hosts never move at all.
    #[test]
    fn ingest_retract_roundtrip_restores_every_shard(
        base in record_batch(),
        extra in record_batch(),
        shards in 1usize..12,
    ) {
        let sharded = ShardedDepDb::new(shards);
        sharded.ingest(base.clone());
        let epochs_start = sharded.epochs();
        let len_start = sharded.len();
        let fresh: Vec<DependencyRecord> = extra
            .into_iter()
            .filter(|r| !base.contains(r))
            .collect();
        let added = sharded.ingest(fresh.clone());
        let removed = sharded.retract(&fresh);
        prop_assert_eq!(added.changed, removed.changed);
        prop_assert_eq!(sharded.len(), len_start);
        let epochs_end = sharded.epochs();
        for s in 0..shards {
            if added.touched.contains(&s) {
                // Round-tripped shard bumps once per direction.
                prop_assert_eq!(epochs_end.get(s), epochs_start.get(s) + 2);
            } else {
                // A shard outside the batch must not move.
                prop_assert_eq!(epochs_end.get(s), epochs_start.get(s));
            }
        }
    }

    /// Cross-shard audits observe a consistent epoch vector: a snapshot
    /// pins the live vector at the instant it is taken, its host pins
    /// agree with that vector for every host, and later ingests never
    /// leak into it.
    #[test]
    fn snapshots_pin_a_consistent_epoch_vector(
        first in record_batch(),
        second in record_batch(),
        shards in 1usize..12,
    ) {
        let sharded = ShardedDepDb::new(shards);
        sharded.ingest(first);
        let snap = sharded.snapshot();
        prop_assert_eq!(snap.epochs(), &sharded.epochs());
        let hosts: Vec<String> = DepView::hosts(&snap).into_iter().collect();
        for (shard, epoch) in snap.pins_for_hosts(hosts.iter().map(String::as_str)) {
            prop_assert_eq!(epoch, snap.epochs().get(shard as usize));
        }
        let pinned = snap.epochs().clone();
        let pinned_len = snap.record_count();
        sharded.ingest(second);
        prop_assert_eq!(snap.epochs(), &pinned);
        prop_assert_eq!(snap.record_count(), pinned_len);
    }

    /// K threads ingesting disjoint-shard batches concurrently yield
    /// exactly the records and per-shard epochs of a serial replay:
    /// per-shard locking admits no interleaving that a serial order
    /// could not produce, and the global epoch counts effective batches
    /// whatever the arrival order.
    #[test]
    fn concurrent_disjoint_ingest_matches_serial_replay(
        plans in proptest::collection::vec(
            proptest::collection::vec(
                // Each small integer decodes to (host index, dep id).
                proptest::collection::vec(0u32..18, 1..6),
                1..5,
            ),
            2..5,
        ),
    ) {
        const SHARDS: usize = 8;
        // One disjoint host pool per writer thread: thread t only ever
        // touches shard t's hosts.
        let pools: Vec<Vec<String>> = (0..plans.len())
            .map(|t| {
                let mut pool = Vec::new();
                for i in 0..10_000 {
                    let host = format!("H{i}");
                    if shard_index(&host, SHARDS) == t {
                        pool.push(host);
                        if pool.len() == 3 {
                            break;
                        }
                    }
                }
                pool
            })
            .collect();
        let materialize = |t: usize, batch: &[u32]| -> Vec<DependencyRecord> {
            batch
                .iter()
                .map(|&n| {
                    DependencyRecord::Hardware(HardwareDep {
                        hw: pools[t][n as usize % 3].clone(),
                        hw_type: "CPU".to_string(),
                        dep: format!("chip{}", n / 3),
                    })
                })
                .collect()
        };

        let concurrent = ShardedDepDb::new(SHARDS);
        let barrier = std::sync::Barrier::new(plans.len());
        std::thread::scope(|scope| {
            for (t, batches) in plans.iter().enumerate() {
                let (concurrent, barrier, materialize) = (&concurrent, &barrier, &materialize);
                scope.spawn(move || {
                    barrier.wait(); // maximize overlap
                    for batch in batches {
                        concurrent.ingest(materialize(t, batch));
                    }
                });
            }
        });

        let serial = ShardedDepDb::new(SHARDS);
        for (t, batches) in plans.iter().enumerate() {
            for batch in batches {
                serial.ingest(materialize(t, batch));
            }
        }

        prop_assert_eq!(concurrent.epochs(), serial.epochs());
        prop_assert_eq!(concurrent.epoch(), serial.epoch());
        prop_assert_eq!(concurrent.len(), serial.len());
        let (csnap, ssnap) = (concurrent.snapshot(), serial.snapshot());
        prop_assert_eq!(DepView::hosts(&csnap), DepView::hosts(&ssnap));
        for host in DepView::hosts(&ssnap) {
            prop_assert_eq!(csnap.hardware_deps(&host), ssnap.hardware_deps(&host));
            prop_assert_eq!(
                csnap.pins_for_hosts([host.as_str()]),
                ssnap.pins_for_hosts([host.as_str()])
            );
        }
    }

    /// Every minimal RG fails the top event, and removing any member
    /// un-fails it (definition of minimality, §4.1.2).
    #[test]
    fn minimal_rgs_are_cut_sets_and_minimal(sets in component_sets()) {
        let graph = component_sets_to_graph(&sets).unwrap();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        prop_assert!(!rgs.is_empty(), "a finite graph always has cut sets");
        for g in rgs.groups() {
            let mut assignment = vec![false; graph.len()];
            for &id in g.ids() {
                assignment[id as usize] = true;
            }
            prop_assert!(graph.evaluate(&assignment));
            for &drop in g.ids() {
                let mut a = assignment.clone();
                a[drop as usize] = false;
                prop_assert!(!graph.evaluate(&a));
            }
        }
    }

    /// The minimal RG family matches brute-force enumeration over all
    /// basic-event assignments.
    #[test]
    fn minimal_rgs_match_bruteforce(sets in component_sets()) {
        let graph = component_sets_to_graph(&sets).unwrap();
        let basic = graph.basic_ids();
        prop_assume!(basic.len() <= 12);
        let mut brute = RgFamily::new();
        for mask in 1u32..(1 << basic.len()) {
            let mut assignment = vec![false; graph.len()];
            for (bit, &id) in basic.iter().enumerate() {
                assignment[id as usize] = mask >> bit & 1 == 1;
            }
            if graph.evaluate(&assignment) {
                brute.insert(RiskGroup::new(
                    basic
                        .iter()
                        .enumerate()
                        .filter(|&(bit, _)| mask >> bit & 1 == 1)
                        .map(|(_, &id)| id)
                        .collect(),
                ));
            }
        }
        let algo = minimal_risk_groups(&graph, &MinimalConfig::default());
        prop_assert_eq!(algo.to_named(&graph), brute.to_named(&graph));
    }

    /// Failure sampling only ever reports genuine minimal RGs, and every
    /// one it reports is in the exact family.
    #[test]
    fn sampling_is_sound(sets in component_sets(), seed in 0u64..1000) {
        let graph = component_sets_to_graph(&sets).unwrap();
        let exact = minimal_risk_groups(&graph, &MinimalConfig::default());
        let sampled = failure_sampling(&graph, &SamplingConfig {
            rounds: 300,
            fail_prob: 0.5,
            seed,
            threads: 1,
            minimize: true,
            weighted: false,
        });
        let exact_named: std::collections::HashSet<_> =
            exact.to_named(&graph).into_iter().collect();
        for g in sampled.to_named(&graph) {
            prop_assert!(exact_named.contains(&g), "sampled {g:?} not minimal");
        }
    }

    /// Subsumption minimization: no family member is a subset of another.
    #[test]
    fn family_is_antichain(groups in proptest::collection::vec(
        proptest::collection::btree_set(0u32..16, 1..5), 1..30)) {
        let fam: RgFamily = groups
            .into_iter()
            .map(|g| RiskGroup::new(g.into_iter().collect()))
            .collect();
        let items = fam.groups();
        for (i, a) in items.iter().enumerate() {
            for (j, b) in items.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset_of(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    /// k-of-n gates: the top event fails exactly when at least k replica
    /// subtrees fail.
    #[test]
    fn kofn_threshold_semantics(n in 2usize..7, k in 1usize..7, mask in 0u32..128) {
        prop_assume!(k <= n);
        let mut b = FaultGraphBuilder::new();
        let basics: Vec<_> = (0..n).map(|i| b.basic(format!("r{i}"), None)).collect();
        let top = b.gate("svc", Gate::KofN(k as u32), basics.clone());
        let graph = b.build(top).unwrap();
        let mut assignment = vec![false; graph.len()];
        let mut failed = 0;
        for (i, &id) in basics.iter().enumerate() {
            if mask >> i & 1 == 1 {
                assignment[id as usize] = true;
                failed += 1;
            }
        }
        prop_assert_eq!(graph.evaluate(&assignment), failed >= k);
    }
}

/// Protocol-v2 binary frame decoding: whatever bytes a peer feeds the
/// reader — truncated frames, lying or oversized length prefixes, raw
/// garbage — it must return an error or a clean classification, never
/// panic, and never allocate in proportion to an *announced* length the
/// peer did not actually send.
mod frame_props {
    use indaas::service::proto::{read_frame, write_frame, FrameRead};
    use proptest::prelude::*;

    /// The chunk size `read_frame` grows its buffer by; allocation may
    /// overshoot the received bytes by at most this much.
    const CHUNK: usize = 64 * 1024;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Encode/decode identity for any payload within the limit.
        #[test]
        fn roundtrip_is_identity(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            prop_assert_eq!(wire.len(), payload.len() + 4);
            let mut cursor = std::io::Cursor::new(wire);
            let mut buf = Vec::new();
            prop_assert!(matches!(
                read_frame(&mut cursor, &mut buf, 4096).unwrap(),
                FrameRead::Frame
            ));
            prop_assert_eq!(buf, payload);
            prop_assert!(matches!(
                read_frame(&mut cursor, &mut buf, 4096).unwrap(),
                FrameRead::Eof
            ));
        }

        /// A frame cut off anywhere — inside the length prefix or inside
        /// the announced payload — is an UnexpectedEof error, never a
        /// panic, never a bogus frame.
        #[test]
        fn truncated_frames_error(
            payload in proptest::collection::vec(any::<u8>(), 1..512),
            cut_seed in any::<usize>(),
        ) {
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            let cut = 1 + cut_seed % (wire.len() - 1); // 1..wire.len()
            wire.truncate(cut);
            let mut cursor = std::io::Cursor::new(wire);
            let mut buf = Vec::new();
            let err = read_frame(&mut cursor, &mut buf, 4096).unwrap_err();
            prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
            prop_assert!(buf.len() <= payload.len());
        }

        /// A length prefix past the limit is classified Oversized before
        /// a single payload byte is read or a single byte allocated.
        #[test]
        fn oversized_prefixes_never_allocate(
            over in 1u32..1_000_000,
            tail in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            const LIMIT: u64 = 4096;
            let announced = LIMIT as u32 + over;
            let mut wire = announced.to_be_bytes().to_vec();
            wire.extend_from_slice(&tail);
            let mut cursor = std::io::Cursor::new(wire);
            let mut buf = Vec::new();
            prop_assert!(matches!(
                read_frame(&mut cursor, &mut buf, LIMIT).unwrap(),
                FrameRead::Oversized
            ));
            prop_assert_eq!(buf.len(), 0);
            prop_assert!(buf.capacity() == 0, "rejected before any allocation");
            prop_assert!(cursor.position() == 4, "no payload byte consumed");
        }

        /// A lying in-limit prefix (announcing more than the peer ever
        /// sends) errors out with the buffer grown by at most what
        /// actually arrived plus one chunk — never the announced length.
        #[test]
        fn lying_prefixes_never_overallocate(
            announced in 1u32..16_000_000,
            sent in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            prop_assume!((sent.len() as u32) < announced);
            let mut wire = announced.to_be_bytes().to_vec();
            wire.extend_from_slice(&sent);
            let mut cursor = std::io::Cursor::new(wire);
            let mut buf = Vec::new();
            let err = read_frame(&mut cursor, &mut buf, 16 * 1024 * 1024).unwrap_err();
            prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
            prop_assert!(
                buf.len() <= sent.len() + CHUNK,
                "buffer grew to {} for {} received bytes",
                buf.len(),
                sent.len()
            );
        }

        /// Raw garbage never panics the reader; anything it accepts as a
        /// frame really was length-prefix-consistent with the input.
        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
            let mut cursor = std::io::Cursor::new(bytes.clone());
            let mut buf = Vec::new();
            match read_frame(&mut cursor, &mut buf, 1024) {
                Ok(FrameRead::Frame) => {
                    prop_assert!(buf.len() + 4 <= bytes.len());
                    prop_assert_eq!(&buf[..], &bytes[4..4 + buf.len()]);
                }
                Ok(FrameRead::Eof) => prop_assert!(bytes.is_empty()),
                Ok(FrameRead::Oversized) | Err(_) => {}
            }
        }
    }
}

/// The readiness loop's incremental codecs against the blocking readers
/// they replaced: however the kernel splits a byte stream across reads,
/// the incremental extractors must produce exactly the frames/lines the
/// blocking `read_frame`/`read_bounded_line` loops did — and a write
/// queue facing a socket that takes arbitrarily few bytes per call must
/// put exactly the pushed bytes on the wire, in order.
mod codec_props {
    use indaas::service::codec::{
        frame_bytes, line_bytes, try_extract_frame, try_extract_line, WriteProgress, WriteQueue,
    };
    use indaas::service::proto::{read_bounded_line, read_frame, FrameRead, LineRead};
    use proptest::prelude::*;

    const LIMIT: u64 = 4096;

    /// Splits `wire` into chunks whose sizes cycle through `cuts`
    /// (0 = deliver one byte, mimicking the worst kernel fragmentation).
    fn chunks(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut at = 0;
        let mut i = 0;
        while at < wire.len() {
            let step = (cuts[i % cuts.len()] % 97).max(1).min(wire.len() - at);
            out.push(wire[at..at + step].to_vec());
            at += step;
            i += 1;
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Frames delivered in arbitrary splits decode identically to
        /// the blocking reader on the whole stream.
        #[test]
        fn split_frames_decode_like_blocking(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..300), 0..6),
            cuts in proptest::collection::vec(any::<usize>(), 1..8),
        ) {
            let wire: Vec<u8> = payloads.iter().flat_map(|p| frame_bytes(p)).collect();

            let mut blocking = Vec::new();
            let mut cursor = std::io::Cursor::new(wire.clone());
            let mut buf = Vec::new();
            while matches!(read_frame(&mut cursor, &mut buf, LIMIT).unwrap(), FrameRead::Frame) {
                blocking.push(buf.clone());
            }

            let mut incremental = Vec::new();
            let mut inbuf = Vec::new();
            for chunk in chunks(&wire, &cuts) {
                inbuf.extend_from_slice(&chunk);
                while let Some(frame) = try_extract_frame(&mut inbuf, LIMIT).unwrap() {
                    incremental.push(frame);
                }
            }
            prop_assert_eq!(&incremental, &blocking);
            prop_assert_eq!(incremental, payloads);
            prop_assert!(inbuf.is_empty(), "no bytes left behind");
        }

        /// Lines delivered in arbitrary splits decode identically to the
        /// blocking reader (both keep the trailing newline).
        #[test]
        fn split_lines_decode_like_blocking(
            raw_lines in proptest::collection::vec(
                proptest::collection::vec(0x20u8..0x7f, 0..120), 0..6),
            cuts in proptest::collection::vec(any::<usize>(), 1..8),
        ) {
            let lines: Vec<String> = raw_lines
                .into_iter()
                .map(|b| String::from_utf8(b).unwrap())
                .collect();
            let wire: Vec<u8> = lines.iter().flat_map(|l| line_bytes(l)).collect();

            let mut blocking = Vec::new();
            let mut cursor = std::io::Cursor::new(wire.clone());
            let mut buf = String::new();
            while matches!(
                read_bounded_line(&mut cursor, &mut buf, LIMIT).unwrap(),
                LineRead::Line
            ) {
                blocking.push(buf.clone());
            }

            let mut incremental = Vec::new();
            let mut inbuf = Vec::new();
            for chunk in chunks(&wire, &cuts) {
                inbuf.extend_from_slice(&chunk);
                while let Some(line) = try_extract_line(&mut inbuf, LIMIT).unwrap() {
                    incremental.push(line.unwrap());
                }
            }
            prop_assert_eq!(&incremental, &blocking);
            prop_assert!(inbuf.is_empty(), "no bytes left behind");
        }

        /// A writer that accepts arbitrarily few bytes per call (and
        /// interleaves WouldBlock) still receives exactly the pushed
        /// messages, in order, resuming mid-message losslessly.
        #[test]
        fn partial_writes_resume_losslessly(
            messages in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..200), 1..6),
            script in proptest::collection::vec(0usize..40, 1..10),
        ) {
            /// Takes `script[i] % 40` bytes per call; 0 = WouldBlock.
            struct Miserly {
                out: Vec<u8>,
                script: Vec<usize>,
                i: usize,
            }
            impl std::io::Write for Miserly {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    let quota = self.script[self.i % self.script.len()];
                    self.i += 1;
                    if quota == 0 {
                        return Err(std::io::ErrorKind::WouldBlock.into());
                    }
                    let n = quota.min(buf.len());
                    self.out.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }

            let mut script = script;
            if script.iter().all(|&q| q == 0) {
                script[0] = 1; // an always-blocking socket never drains
            }
            let mut wq = WriteQueue::new();
            for m in &messages {
                wq.push(m.clone());
            }
            let expected: Vec<u8> = messages.concat();
            let cycle = script.len();
            let mut sink = Miserly { out: Vec::new(), script, i: 0 };
            // Every full pass through the script moves ≥ 1 byte, and each
            // write_to call consumes ≥ 1 script entry.
            for _ in 0..=(expected.len() + 1) * cycle + 2 {
                match wq.write_to(&mut sink).unwrap() {
                    WriteProgress::Drained => break,
                    WriteProgress::Blocked => {}
                }
            }
            prop_assert!(wq.is_empty(), "queue drained");
            prop_assert_eq!(sink.out, expected);
        }
    }
}
