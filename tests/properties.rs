//! Cross-crate property-based tests on the core auditing invariants.

use indaas::graph::detail::{component_sets_to_graph, ComponentSet};
use indaas::graph::{FaultGraphBuilder, Gate};
use indaas::sia::{
    failure_sampling, minimal_risk_groups, MinimalConfig, RgFamily, RiskGroup, SamplingConfig,
};
use proptest::prelude::*;

/// Strategy: 2–4 component sets over a small shared universe, every set
/// non-empty.
fn component_sets() -> impl Strategy<Value = Vec<ComponentSet>> {
    proptest::collection::vec(proptest::collection::btree_set(0u8..12, 1..6), 2..5usize).prop_map(
        |sets| {
            sets.into_iter()
                .enumerate()
                .map(|(i, comps)| {
                    ComponentSet::new(format!("E{i}"), comps.into_iter().map(|c| format!("c{c}")))
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every minimal RG fails the top event, and removing any member
    /// un-fails it (definition of minimality, §4.1.2).
    #[test]
    fn minimal_rgs_are_cut_sets_and_minimal(sets in component_sets()) {
        let graph = component_sets_to_graph(&sets).unwrap();
        let rgs = minimal_risk_groups(&graph, &MinimalConfig::default());
        prop_assert!(!rgs.is_empty(), "a finite graph always has cut sets");
        for g in rgs.groups() {
            let mut assignment = vec![false; graph.len()];
            for &id in g.ids() {
                assignment[id as usize] = true;
            }
            prop_assert!(graph.evaluate(&assignment));
            for &drop in g.ids() {
                let mut a = assignment.clone();
                a[drop as usize] = false;
                prop_assert!(!graph.evaluate(&a));
            }
        }
    }

    /// The minimal RG family matches brute-force enumeration over all
    /// basic-event assignments.
    #[test]
    fn minimal_rgs_match_bruteforce(sets in component_sets()) {
        let graph = component_sets_to_graph(&sets).unwrap();
        let basic = graph.basic_ids();
        prop_assume!(basic.len() <= 12);
        let mut brute = RgFamily::new();
        for mask in 1u32..(1 << basic.len()) {
            let mut assignment = vec![false; graph.len()];
            for (bit, &id) in basic.iter().enumerate() {
                assignment[id as usize] = mask >> bit & 1 == 1;
            }
            if graph.evaluate(&assignment) {
                brute.insert(RiskGroup::new(
                    basic
                        .iter()
                        .enumerate()
                        .filter(|&(bit, _)| mask >> bit & 1 == 1)
                        .map(|(_, &id)| id)
                        .collect(),
                ));
            }
        }
        let algo = minimal_risk_groups(&graph, &MinimalConfig::default());
        prop_assert_eq!(algo.to_named(&graph), brute.to_named(&graph));
    }

    /// Failure sampling only ever reports genuine minimal RGs, and every
    /// one it reports is in the exact family.
    #[test]
    fn sampling_is_sound(sets in component_sets(), seed in 0u64..1000) {
        let graph = component_sets_to_graph(&sets).unwrap();
        let exact = minimal_risk_groups(&graph, &MinimalConfig::default());
        let sampled = failure_sampling(&graph, &SamplingConfig {
            rounds: 300,
            fail_prob: 0.5,
            seed,
            threads: 1,
            minimize: true,
            weighted: false,
        });
        let exact_named: std::collections::HashSet<_> =
            exact.to_named(&graph).into_iter().collect();
        for g in sampled.to_named(&graph) {
            prop_assert!(exact_named.contains(&g), "sampled {g:?} not minimal");
        }
    }

    /// Subsumption minimization: no family member is a subset of another.
    #[test]
    fn family_is_antichain(groups in proptest::collection::vec(
        proptest::collection::btree_set(0u32..16, 1..5), 1..30)) {
        let fam: RgFamily = groups
            .into_iter()
            .map(|g| RiskGroup::new(g.into_iter().collect()))
            .collect();
        let items = fam.groups();
        for (i, a) in items.iter().enumerate() {
            for (j, b) in items.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset_of(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    /// k-of-n gates: the top event fails exactly when at least k replica
    /// subtrees fail.
    #[test]
    fn kofn_threshold_semantics(n in 2usize..7, k in 1usize..7, mask in 0u32..128) {
        prop_assume!(k <= n);
        let mut b = FaultGraphBuilder::new();
        let basics: Vec<_> = (0..n).map(|i| b.basic(format!("r{i}"), None)).collect();
        let top = b.gate("svc", Gate::KofN(k as u32), basics.clone());
        let graph = b.build(top).unwrap();
        let mut assignment = vec![false; graph.len()];
        let mut failed = 0;
        for (i, &id) in basics.iter().enumerate() {
            if mask >> i & 1 == 1 {
                assignment[id as usize] = true;
                failed += 1;
            }
        }
        prop_assert_eq!(graph.evaluate(&assignment), failed >= k);
    }
}
