//! End-to-end tests for the continuous auditing daemon: a real TCP
//! server on an ephemeral port, streamed ingestion, concurrent audits,
//! cache hits/invalidation, deadlines and protocol error paths.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use indaas::core::{AuditSpec, CandidateDeployment, RgAlgorithm};
use indaas::service::{Client, Request, Response, ServeConfig, Server};

const RECORDS: &str = r#"
    <src="S1" dst="Internet" route="tor1,core1"/>
    <src="S1" dst="Internet" route="tor1,core2"/>
    <src="S2" dst="Internet" route="tor1,core1"/>
    <src="S2" dst="Internet" route="tor1,core2"/>
    <src="S3" dst="Internet" route="tor2,core1"/>
    <src="S3" dst="Internet" route="tor2,core2"/>
    <hw="S1" type="Disk" dep="S1-disk"/>
    <hw="S2" type="Disk" dep="S2-disk"/>
    <hw="S3" type="Disk" dep="S3-disk"/>
"#;

/// Starts a daemon on an ephemeral port; returns its address and the
/// serve-loop handle (joined after a `Shutdown` request).
fn start_daemon() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn audit_spec() -> AuditSpec {
    AuditSpec::sia_size_based(vec![
        CandidateDeployment::replicated("S1+S2", ["S1", "S2"]),
        CandidateDeployment::replicated("S1+S3", ["S1", "S3"]),
    ])
}

#[test]
fn ingest_audit_cache_and_invalidation() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");

    // Stream records in; epoch moves 0 -> 1.
    let ack = client.ingest(RECORDS).expect("ingest");
    assert_eq!(ack.changed, 9);
    assert_eq!(ack.epoch, 1);

    // Re-ingesting the same batch is deduplicated and does NOT bump the
    // epoch (periodic collectors re-report constantly).
    let dup = client.ingest(RECORDS).expect("re-ingest");
    assert_eq!(dup.changed, 0);
    assert_eq!(dup.ignored, 9);
    assert_eq!(dup.epoch, 1);

    // First audit: computed fresh.
    let spec = audit_spec();
    let t_first = Instant::now();
    let first = client.audit_sia(&spec, None).expect("first audit");
    let first_wall = t_first.elapsed();
    assert!(!first.cached);
    assert_eq!(first.epoch, 1);
    assert_eq!(first.report.best().unwrap().name, "S1+S3");

    // Second audit, same spec, same epoch: a cache hit, and measurably
    // faster on both the server's own clock and the client wall clock.
    // The hit wall-clock is the min of a few repeats: hits are
    // repeatable, so the min strips scheduler jitter that a single
    // sub-millisecond sample would be at the mercy of.
    let t_second = Instant::now();
    let second = client.audit_sia(&spec, None).expect("second audit");
    let mut second_wall = t_second.elapsed();
    for _ in 0..4 {
        let t = Instant::now();
        client.audit_sia(&spec, None).expect("repeat hit");
        second_wall = second_wall.min(t.elapsed());
    }
    assert!(second.cached, "repeat audit at unchanged epoch must hit");
    assert_eq!(second.epoch, 1);
    assert_eq!(
        second.report.best().unwrap().name,
        first.report.best().unwrap().name
    );
    assert!(
        second.elapsed_us < first.elapsed_us,
        "hit ({}us) must be faster than compute ({}us)",
        second.elapsed_us,
        first.elapsed_us
    );
    assert!(
        second_wall < first_wall,
        "hit ({second_wall:?}) must beat compute ({first_wall:?}) end to end"
    );

    // An *update* — S3 moves behind S1's ToR — bumps the epoch and
    // invalidates the cached result: the same spec recomputes and the
    // ranking flips (S1+S3 now shares tor1 too, and more).
    let ack = client
        .ingest(r#"<src="S3" dst="Internet" route="tor1,core1"/>"#)
        .expect("update ingest");
    assert_eq!(ack.epoch, 2);
    let third = client.audit_sia(&spec, None).expect("post-update audit");
    assert!(!third.cached, "epoch bump must invalidate the cache");
    assert_eq!(third.epoch, 2);

    // Cache works at the new epoch too.
    let fourth = client.audit_sia(&spec, None).expect("post-update repeat");
    assert!(fourth.cached);

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn concurrent_sia_and_pia_clients() {
    let (addr, daemon) = start_daemon();
    let mut seed = Client::connect(addr).expect("connect");
    seed.ingest(RECORDS).expect("ingest");

    let mut handles = Vec::new();
    // Four concurrent SIA clients with distinct specs (distinct cache
    // keys), interleaved with four PIA clients.
    for i in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let spec = AuditSpec {
                algorithm: RgAlgorithm::Sampling {
                    rounds: 2000 + i, // distinct spec → distinct content hash
                    fail_prob: 0.5,
                    seed: i,
                    threads: 1,
                },
                ..audit_spec()
            };
            let answer = c.audit_sia(&spec, Some(20_000)).expect("sia");
            assert_eq!(answer.report.best().unwrap().name, "S1+S3");
        }));
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let providers = vec![
                ("A".to_string(), vec!["x".into(), format!("a{i}")]),
                ("B".to_string(), vec!["x".into(), format!("b{i}")]),
                ("C".to_string(), vec![format!("q{i}"), format!("r{i}")]),
            ];
            let answer = c.audit_pia(providers, 2, None, Some(20_000)).expect("pia");
            assert_eq!(answer.rankings.len(), 3);
            // A&B share "x": the disjoint pairs rank before them.
            assert_eq!(answer.rankings[2].providers, vec!["A", "B"]);
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let mut admin = Client::connect(addr).expect("connect");
    admin.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn pia_cache_hits_on_repeat() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    let providers = vec![
        ("A".to_string(), vec!["x".to_string(), "y".to_string()]),
        ("B".to_string(), vec!["x".to_string(), "z".to_string()]),
    ];
    let first = client
        .audit_pia(providers.clone(), 2, None, None)
        .expect("first pia");
    assert!(!first.cached);
    let second = client
        .audit_pia(providers, 2, None, None)
        .expect("second pia");
    assert!(second.cached);
    assert_eq!(second.rankings[0].jaccard, first.rankings[0].jaccard);
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn malformed_and_failing_requests_keep_connection_alive() {
    let (addr, daemon) = start_daemon();

    // Raw socket: send garbage, then a valid ping on the same connection.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"this is not json\n").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("Error") && line.contains("malformed request"),
        "got: {line}"
    );
    line.clear();
    writer.write_all(b"\"Ping\"\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim(), "\"Pong\"");

    // Unknown variants and structurally wrong payloads error politely.
    line.clear();
    writer.write_all(b"\"Detonate\"\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("Error"), "got: {line}");
    line.clear();
    writer
        .write_all(b"{\"AuditSia\": {\"spec\": 42}}\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("Error"), "got: {line}");

    // Typed client: an audit against an empty DepDB is a remote error
    // (unknown servers), not a hang or disconnect.
    let mut client = Client::connect(addr).expect("connect");
    let err = client.audit_sia(&audit_spec(), None).unwrap_err();
    assert!(err.to_string().contains("audit failed"), "got: {err}");
    client.ping().expect("connection still usable");

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn deadline_zero_cancels_audit() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(RECORDS).expect("ingest");
    // A zero-millisecond deadline expires while the job is queued; the
    // cancellable audit path reports it as an error, not a result.
    let err = client.audit_sia(&audit_spec(), Some(0)).unwrap_err();
    assert!(
        err.to_string().contains("cancel") || err.to_string().contains("deadline"),
        "got: {err}"
    );
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn hostile_specs_are_rejected_or_survived() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(RECORDS).expect("ingest");

    // Request-controlled thread counts must not defeat the pool.
    let flood = AuditSpec {
        algorithm: RgAlgorithm::Sampling {
            rounds: 1000,
            fail_prob: 0.5,
            seed: 1,
            threads: 100_000,
        },
        ..audit_spec()
    };
    let err = client.audit_sia(&flood, None).unwrap_err();
    assert!(err.to_string().contains("invalid spec"), "got: {err}");

    let bad_prob = AuditSpec {
        algorithm: RgAlgorithm::Sampling {
            rounds: 1000,
            fail_prob: 2.0,
            seed: 1,
            threads: 1,
        },
        ..audit_spec()
    };
    let err = client.audit_sia(&bad_prob, None).unwrap_err();
    assert!(err.to_string().contains("fail_prob"), "got: {err}");

    // An uncapped BDD node budget must be rejected up front.
    let huge_bdd = AuditSpec {
        algorithm: RgAlgorithm::Bdd {
            max_nodes: usize::MAX,
        },
        ..audit_spec()
    };
    let err = client.audit_sia(&huge_bdd, None).unwrap_err();
    assert!(err.to_string().contains("max_nodes"), "got: {err}");

    // A BDD budget small enough to trip the engine's internal assert
    // panics the job — the worker must survive and report it.
    let tiny_bdd = AuditSpec {
        algorithm: RgAlgorithm::Bdd { max_nodes: 2 },
        ..audit_spec()
    };
    let err = client.audit_sia(&tiny_bdd, None).unwrap_err();
    assert!(err.to_string().contains("crashed"), "got: {err}");

    // The pool is still alive: a normal audit completes afterwards.
    let ok = client.audit_sia(&audit_spec(), None).expect("pool alive");
    assert_eq!(ok.report.best().unwrap().name, "S1+S3");

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn pia_cache_survives_ingest_epochs() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    let providers = vec![
        ("A".to_string(), vec!["x".to_string(), "y".to_string()]),
        ("B".to_string(), vec!["x".to_string(), "z".to_string()]),
    ];
    let first = client
        .audit_pia(providers.clone(), 2, None, None)
        .expect("first pia");
    assert!(!first.cached);
    // PIA inputs travel in the request; an ingest (epoch bump) must NOT
    // invalidate the PIA cache.
    client.ingest(RECORDS).expect("ingest");
    let second = client.audit_pia(providers, 2, None, None).expect("second");
    assert!(second.cached, "PIA cache must survive DepDB epochs");
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn oversized_request_line_is_rejected() {
    let (addr, daemon) = start_daemon();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    // One newline-free line just past the cap: the daemon must answer
    // with an error and drop the connection instead of buffering it.
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..17 {
        if writer.write_all(&chunk).is_err() {
            break; // server already hung up — also acceptable
        }
    }
    let mut line = String::new();
    let n = reader.read_line(&mut line).unwrap_or(0);
    if n > 0 {
        assert!(
            line.contains("Error") && line.contains("exceeds"),
            "got: {line}"
        );
    }
    // Daemon must still be healthy for other clients.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("daemon alive after oversized line");
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn huge_timeout_is_clamped_not_wedging() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(RECORDS).expect("ingest");
    // u64::MAX ms must not disarm the deadline; the audit is tiny and
    // completes, proving the clamped token still works.
    let answer = client
        .audit_sia(&audit_spec(), Some(u64::MAX))
        .expect("clamped audit completes");
    assert_eq!(answer.report.best().unwrap().name, "S1+S3");
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn status_reports_counters() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(RECORDS).expect("ingest");
    let spec = audit_spec();
    client.audit_sia(&spec, None).expect("miss");
    client.audit_sia(&spec, None).expect("hit");
    let status = client.status().expect("status");
    assert_eq!(status.epoch, 1);
    assert_eq!(status.records, 9);
    assert_eq!(status.hosts, 3);
    assert_eq!(status.cache_entries, 1);
    assert_eq!(status.cache_hits, 1);
    assert_eq!(status.cache_misses, 1);
    assert!((status.hit_ratio - 0.5).abs() < 1e-12, "1 hit / 2 lookups");
    assert_eq!(status.subscriptions, 0);
    assert_eq!(status.pushed_events, 0);
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// The daemon re-measures by itself: a registered collector on the
/// `collect_interval` timer ingests its records and bumps the epoch with
/// no client involved; unchanged re-measurements never bump it again.
#[test]
fn scheduled_collector_bumps_epoch_by_itself() {
    use indaas::deps::{parse_records, SimCollector};

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        collect_interval: Some(std::time::Duration::from_millis(25)),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let truth = parse_records(RECORDS).expect("records parse");
    server.add_collector(Box::new(SimCollector::perfect("nsdminer-sim", truth)));
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let epoch = loop {
        let status = client.status().expect("status");
        if status.epoch > 0 {
            assert_eq!(status.records, 9, "collector must ingest the full truth");
            break status.epoch;
        }
        assert!(
            Instant::now() < deadline,
            "collector never ingested anything"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert_eq!(epoch, 1);

    // Give the timer several more periods: re-measuring an unchanged
    // world is a pure-duplicate batch and must not bump the epoch.
    std::thread::sleep(std::time::Duration::from_millis(150));
    assert_eq!(
        client.status().expect("status").epoch,
        1,
        "duplicate collections must not bump the epoch"
    );
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// The sharded-store invariant at the protocol surface: a cached audit
/// pinned to shard A's hosts survives an ingest that only touches shard
/// B (cache hit, shard A's epoch unchanged in `Status`), and is
/// invalidated by an ingest touching shard A.
#[test]
fn cached_audit_survives_other_shard_ingest() {
    use indaas::deps::shard_index;

    const SHARDS: usize = 8;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: SHARDS,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    // Pick audited hosts a1/a2 and a bystander b in a shard neither
    // audited host routes to — the router is deterministic, so probing
    // generated names finds one immediately.
    let a1 = "H0".to_string();
    let a2 = (1..100)
        .map(|i| format!("H{i}"))
        .find(|h| shard_index(h, SHARDS) != shard_index(&a1, SHARDS))
        .expect("split host");
    let audited: Vec<usize> = vec![shard_index(&a1, SHARDS), shard_index(&a2, SHARDS)];
    let b = (1..10_000)
        .map(|i| format!("B{i}"))
        .find(|h| !audited.contains(&shard_index(h, SHARDS)))
        .expect("bystander host");

    let mut client = Client::connect(addr).expect("connect");
    client
        .ingest(&format!(
            r#"
            <src="{a1}" dst="Internet" route="tor1,core1"/>
            <src="{a2}" dst="Internet" route="tor2,core2"/>
            <hw="{a1}" type="Disk" dep="{a1}-disk"/>
            <hw="{a2}" type="Disk" dep="{a2}-disk"/>
        "#
        ))
        .expect("ingest audited hosts");

    let spec = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
        "pair",
        [a1.clone(), a2.clone()],
    )]);
    let first = client.audit_sia(&spec, None).expect("first audit");
    assert!(!first.cached);

    let epochs_before = client.status().expect("status").shard_epochs;
    assert_eq!(epochs_before.len(), SHARDS);

    // Ingest touching only the bystander's shard: global epoch moves,
    // the audited shards' epochs do not, and the cached report stays hot.
    let ack = client
        .ingest(&format!(r#"<hw="{b}" type="CPU" dep="{b}-cpu"/>"#))
        .expect("bystander ingest");
    assert_eq!(ack.changed, 1);
    let status = client.status().expect("status");
    for &s in &audited {
        assert_eq!(
            status.shard_epochs[s], epochs_before[s],
            "audited shard {s} must not move on a bystander ingest"
        );
    }
    let sb = shard_index(&b, SHARDS);
    assert_eq!(status.shard_epochs[sb], epochs_before[sb] + 1);
    assert_eq!(status.shard_records[sb], 1);
    let second = client.audit_sia(&spec, None).expect("post-bystander audit");
    assert!(
        second.cached,
        "an ingest to an unrelated shard must not evict the cached audit"
    );
    assert_eq!(
        second.report.best().unwrap().name,
        first.report.best().unwrap().name
    );

    // An ingest touching an audited shard invalidates precisely.
    client
        .ingest(&format!(
            r#"<src="{a1}" dst="Internet" route="tor1,core9"/>"#
        ))
        .expect("audited-shard ingest");
    let third = client.audit_sia(&spec, None).expect("post-update audit");
    assert!(
        !third.cached,
        "an ingest to a read shard must invalidate the cached audit"
    );

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// Per-shard write observability at the protocol surface: `Status`
/// reports which shards absorbed write batches, and single-client
/// traffic never produces lock contention.
#[test]
fn status_reports_shard_writes_and_lock_waits() {
    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(RECORDS).expect("ingest");
    client
        .ingest(r#"<hw="S1" type="CPU" dep="S1-cpu"/>"#)
        .expect("second ingest");
    client.ingest(RECORDS).expect("duplicate ingest");
    let status = client.status().expect("status");
    assert_eq!(status.shard_writes.len(), status.shard_epochs.len());
    // Two effective batches: the bulk load (S1+S2+S3's shards)
    // and the single-record top-up (S1's shard only). The
    // duplicate batch counts nowhere.
    let total: u64 = status.shard_writes.iter().sum();
    let distinct_shards: std::collections::BTreeSet<usize> = ["S1", "S2", "S3"]
        .iter()
        .map(|h| indaas::deps::shard_index(h, status.shard_epochs.len()))
        .collect();
    assert_eq!(total, distinct_shards.len() as u64 + 1);
    for (s, &writes) in status.shard_writes.iter().enumerate() {
        assert_eq!(
            writes > 0,
            status.shard_epochs[s] > 0,
            "shard {s}: writes and epochs must agree on whether it was touched"
        );
    }
    assert_eq!(
        status.lock_waits, 0,
        "one client can never contend with itself"
    );
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// Segmented persistence through a full daemon lifecycle: ingest into a
/// `db_dir` daemon, shut it down (dirty shards saved), boot a second
/// daemon on the same directory and see every record — then audit it.
#[test]
fn daemon_restart_reloads_segmented_db_dir() {
    let dir = std::env::temp_dir().join(format!("indaas-e2e-dbdir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = || ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        db_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind(config()).expect("bind first daemon");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let ack = client.ingest(RECORDS).expect("ingest");
    assert_eq!(ack.changed, 9);
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("first serve loop");

    assert!(
        dir.join("MANIFEST.json").exists(),
        "shutdown must leave a manifest behind"
    );

    // Second daemon, same directory: the records are back without any
    // client re-ingesting them, and audits run against them.
    let server = Server::bind(config()).expect("bind second daemon");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("reconnect");
    let status = client.status().expect("status");
    assert_eq!(
        status.records, 9,
        "restart must reload every persisted record"
    );
    assert_eq!(
        status.epoch, 1,
        "a reloaded non-empty store starts at epoch 1"
    );
    let audit = client.audit_sia(&audit_spec(), None).expect("audit");
    assert_eq!(audit.report.best().unwrap().name, "S1+S3");
    // Duplicate of what is already persisted: no epoch bump, and the
    // next save has nothing to write.
    let dup = client.ingest(RECORDS).expect("duplicate ingest");
    assert_eq!(dup.changed, 0);
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("second serve loop");

    std::fs::remove_dir_all(&dir).ok();
}

/// A collector tick persists what it ingested: kill the daemon without
/// a clean shutdown save by checking the segments appear after the tick
/// itself (the timer calls the dirty-segment saver).
#[test]
fn collector_tick_saves_dirty_segments() {
    use indaas::deps::{parse_records, SimCollector};

    let dir = std::env::temp_dir().join(format!("indaas-e2e-ticksave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        collect_interval: Some(std::time::Duration::from_millis(25)),
        db_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let truth = parse_records(RECORDS).expect("records parse");
    server.add_collector(Box::new(SimCollector::perfect("nsdminer-sim", truth)));
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    // Wait for a tick to land *and* persist — no client ingest, no
    // shutdown involved.
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if dir.join("MANIFEST.json").exists() {
            if let Ok(loaded) = indaas::deps::ShardedDepDb::open(&dir, 8) {
                if loaded.len() == 9 {
                    break;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "collector tick never persisted its batch"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
    std::fs::remove_dir_all(&dir).ok();
}

/// The multiplexed v2 session: eight requests in flight at once on one
/// connection, each with a distinct spec, waited on in *reverse* send
/// order — every response must carry the answer to exactly its own
/// request, proving the id correlation (a lock-step or order-based
/// pairing would hand request 1 the answer to request 8).
#[test]
fn pipelined_session_matches_every_response_to_its_id() {
    use indaas::service::Request;

    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(RECORDS).expect("ingest");

    let mut pending = Vec::new();
    for i in 0..8u64 {
        let spec = AuditSpec {
            algorithm: RgAlgorithm::Sampling {
                rounds: 1500 + i, // distinct spec → distinct cache key
                fail_prob: 0.5,
                seed: i,
                threads: 1,
            },
            ..AuditSpec::sia_size_based(vec![
                CandidateDeployment::replicated(format!("want-{i}"), ["S1", "S3"]),
                CandidateDeployment::replicated(format!("other-{i}"), ["S1", "S2"]),
            ])
        };
        let handle = client
            .begin(&Request::AuditSia {
                spec,
                timeout_ms: Some(20_000),
            })
            .expect("begin");
        pending.push((i, handle));
    }
    let ids: std::collections::BTreeSet<u64> = pending.iter().map(|(_, h)| h.id()).collect();
    assert_eq!(ids.len(), 8, "every in-flight request has a distinct id");

    for (i, handle) in pending.into_iter().rev() {
        match handle.wait().expect("response") {
            indaas::service::Response::Sia { report, .. } => {
                assert_eq!(
                    report.best().expect("ranked").name,
                    format!("want-{i}"),
                    "response for request {i} must answer request {i}"
                );
            }
            other => panic!("expected Sia for request {i}, got {other:?}"),
        }
    }

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// The tentpole e2e: a subscriber gets the initial pushed event, then a
/// fresh one after an ingest touching its spec's shards, and *nothing*
/// for ingests that only touch other shards. Unsubscribing stops the
/// events; `Status` exposes the gauges throughout.
#[test]
fn subscription_pushes_on_relevant_ingests_only() {
    use indaas::deps::shard_index;

    const SHARDS: usize = 8;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: SHARDS,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    // Audited hosts a1/a2 plus a bystander b whose shard neither
    // audited host routes to (the router is deterministic).
    let a1 = "H0".to_string();
    let a2 = (1..100)
        .map(|i| format!("H{i}"))
        .find(|h| shard_index(h, SHARDS) != shard_index(&a1, SHARDS))
        .expect("split host");
    let audited: Vec<usize> = vec![shard_index(&a1, SHARDS), shard_index(&a2, SHARDS)];
    let b = (1..10_000)
        .map(|i| format!("B{i}"))
        .find(|h| !audited.contains(&shard_index(h, SHARDS)))
        .expect("bystander host");

    let mut client = Client::connect(addr).expect("connect");
    client
        .ingest(&format!(
            r#"
            <src="{a1}" dst="Internet" route="tor1,core1"/>
            <src="{a2}" dst="Internet" route="tor2,core2"/>
        "#
        ))
        .expect("seed ingest");

    let spec = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
        "pair",
        [a1.clone(), a2.clone()],
    )]);
    let mut subscription = client.subscribe(&spec).expect("subscribe");

    // The initial event arrives without any further ingest.
    let initial = subscription
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("subscription alive")
        .expect("initial event");
    assert_eq!(initial.subscription, subscription.id());
    assert_eq!(initial.report.deployments[0].name, "pair");

    let status = client.status().expect("status");
    assert_eq!(status.subscriptions, 1);
    assert!(status.pushed_events >= 1);

    // A bystander-shard ingest must push nothing.
    client
        .ingest(&format!(r#"<hw="{b}" type="CPU" dep="{b}-cpu"/>"#))
        .expect("bystander ingest");
    assert!(
        subscription
            .recv_timeout(std::time::Duration::from_millis(400))
            .expect("subscription alive")
            .is_none(),
        "other-shard ingests must not wake the subscriber"
    );

    // An ingest touching an audited shard pushes a fresh result.
    client
        .ingest(&format!(
            r#"<src="{a1}" dst="Internet" route="tor1,core9"/>"#
        ))
        .expect("audited-shard ingest");
    let fresh = subscription
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("subscription alive")
        .expect("pushed event after relevant ingest");
    assert_eq!(fresh.subscription, subscription.id());
    assert!(
        fresh.epoch > initial.epoch,
        "the pushed audit ran against the post-ingest epoch"
    );

    // After unsubscribing, even relevant ingests push nothing: the
    // daemon's gauge drops to zero and its pushed-event counter stops
    // moving (the local channel closes too).
    let sub_id = subscription.id();
    client.unsubscribe(sub_id).expect("unsubscribe");
    assert_eq!(client.status().expect("status").subscriptions, 0);
    let pushed_before = client.status().expect("status").pushed_events;
    client
        .ingest(&format!(
            r#"<src="{a2}" dst="Internet" route="tor2,core9"/>"#
        ))
        .expect("post-unsubscribe ingest");
    std::thread::sleep(std::time::Duration::from_millis(400));
    assert_eq!(
        client.status().expect("status").pushed_events,
        pushed_before,
        "no events are produced after unsubscribe"
    );
    assert!(
        subscription
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err(),
        "the local subscription channel is closed by unsubscribe"
    );

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// One connection can hold several subscriptions; each event names the
/// subscription it belongs to and only the affected one fires.
#[test]
fn subscriptions_are_independent_per_spec() {
    use indaas::deps::shard_index;

    const SHARDS: usize = 8;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: SHARDS,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    let a = "H0".to_string();
    let b = (1..10_000)
        .map(|i| format!("B{i}"))
        .find(|h| shard_index(h, SHARDS) != shard_index(&a, SHARDS))
        .expect("split host");

    let mut client = Client::connect(addr).expect("connect");
    client
        .ingest(&format!(
            r#"
            <hw="{a}" type="Disk" dep="{a}-disk"/>
            <hw="{b}" type="Disk" dep="{b}-disk"/>
        "#
        ))
        .expect("seed ingest");

    let spec_a = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
        "watch-a",
        [a.clone(), a.clone()],
    )]);
    let spec_b = AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
        "watch-b",
        [b.clone(), b.clone()],
    )]);
    let mut sub_a = client.subscribe(&spec_a).expect("subscribe a");
    let mut sub_b = client.subscribe(&spec_b).expect("subscribe b");
    assert_ne!(sub_a.id(), sub_b.id());
    for sub in [&mut sub_a, &mut sub_b] {
        sub.recv_timeout(std::time::Duration::from_secs(10))
            .expect("alive")
            .expect("initial event");
    }

    // Touch only a's shard: a fires, b stays silent.
    client
        .ingest(&format!(r#"<hw="{a}" type="CPU" dep="{a}-cpu"/>"#))
        .expect("ingest a");
    let event = sub_a
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("alive")
        .expect("a's event");
    assert_eq!(event.subscription, sub_a.id());
    assert!(
        sub_b
            .recv_timeout(std::time::Duration::from_millis(400))
            .expect("alive")
            .is_none(),
        "b's shard never moved"
    );

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// Protocol compatibility: a v1-only client (plain NDJSON lines, no
/// hello) runs a full session against the v2 daemon — the negotiated
/// downgrade path old tooling rides.
#[test]
fn protocol_compat_v1_client_against_v2_daemon() {
    use indaas::service::V1Client;

    let (addr, daemon) = start_daemon();
    let mut v1 = V1Client::connect(addr).expect("connect");
    v1.ping().expect("ping");
    let ack = v1.ingest(RECORDS).expect("ingest");
    assert_eq!(ack.changed, 9);

    let spec = audit_spec();
    let first = v1.audit_sia(&spec, None).expect("first audit");
    assert!(!first.cached);
    assert_eq!(first.report.best().unwrap().name, "S1+S3");
    let second = v1.audit_sia(&spec, None).expect("second audit");
    assert!(second.cached, "cache works for v1 sessions too");

    match v1.status().expect("status") {
        Response::Status { records, epoch, .. } => {
            assert_eq!(records, 9);
            assert_eq!(epoch, 1);
        }
        other => panic!("expected Status, got {other:?}"),
    }

    // v2-only features degrade with a clear error, not a hang or drop.
    let err = v1
        .request(&indaas::service::Request::Subscribe {
            spec: audit_spec(),
            engine: "sia".into(),
        })
        .expect("answered");
    match err {
        Response::Error { message } => {
            assert!(message.contains("v2"), "got: {message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    // An explicit v1 hello is also honoured: the session stays line-mode.
    let mut explicit = V1Client::connect(addr).expect("connect");
    match explicit
        .request(&indaas::service::Request::Hello { version: 1 })
        .expect("answered")
    {
        Response::Welcome { version } => assert_eq!(version, 1),
        other => panic!("expected Welcome, got {other:?}"),
    }
    explicit.ping().expect("line mode continues after v1 hello");

    v1.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

/// `serve --max-conns`: excess connections get one clear error and are
/// dropped; closing a connection frees its slot.
#[test]
fn connection_limit_rejects_excess_cleanly() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_conns: 2,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    let mut first = Client::connect(addr).expect("first connection");
    first.ping().expect("first works");
    let mut second = Client::connect(addr).expect("second connection");
    second.ping().expect("second works");

    // The third is over the limit: the hello is answered with the
    // limit error and the connection dropped.
    let err = match Client::connect(addr) {
        Err(e) => e,
        Ok(_) => panic!("third connection must be rejected"),
    };
    assert!(err.to_string().contains("connection limit"), "got: {err}");

    // Releasing a slot lets a new connection in (the server notices the
    // disconnect asynchronously, so poll briefly).
    drop(first);
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let mut readmitted = loop {
        match Client::connect(addr) {
            Ok(client) => break client,
            Err(_) => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    };
    readmitted.ping().expect("readmitted connection works");

    drop(second);
    readmitted.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn raw_protocol_shutdown_round_trip() {
    let (addr, daemon) = start_daemon();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let request = indaas::service::proto::encode_line(&Request::Shutdown);
    writer
        .write_all(format!("{request}\n").as_bytes())
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let response: Response = indaas::service::proto::decode_line(line.trim()).expect("decode");
    assert!(matches!(response, Response::ShuttingDown));
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn metrics_over_the_wire_show_miss_hit_transition_and_slow_traces() {
    // --slow-audit-ms 0: every trace's total is >= 0, so the flight
    // recorder must flag them all slow.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        slow_audit_ms: 0,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");

    client.ingest(RECORDS).expect("ingest");
    let spec = audit_spec();
    let first = client.audit_sia(&spec, None).expect("first audit");
    assert!(!first.cached);
    let second = client.audit_sia(&spec, None).expect("second audit");
    assert!(second.cached);

    let metrics = client.metrics(None).expect("metrics");
    assert_eq!(metrics.slow_threshold_us, 0);

    // Counters: exactly one SIA audit *executed* (the hit is not a
    // re-execution), one mutation, and every envelope counted.
    assert_eq!(metrics.counter("audits_sia_total"), Some(1));
    assert_eq!(metrics.counter("audits_pia_total"), Some(0));
    assert_eq!(metrics.counter("mutations_total"), Some(1));
    assert!(metrics.counter("requests_total").unwrap() >= 4);
    assert!(metrics.counter("sched_jobs_total").unwrap() >= 1);

    // Derived gauges refreshed at snapshot time: the miss -> hit
    // transition is visible in the cache stats.
    assert_eq!(metrics.gauge("cache_sia_misses"), Some(1));
    assert!(metrics.gauge("cache_sia_hits").unwrap() >= 1);
    assert!(metrics.gauge("active_conns").unwrap() >= 1);

    // Histograms: the whole-audit and write-path timings, plus every
    // stage the minimal-RG pipeline runs (two candidates per audit).
    assert_eq!(metrics.histo("audit_sia_us").expect("audit histo").count, 1);
    assert_eq!(metrics.histo("ingest_us").expect("ingest histo").count, 1);
    assert!(metrics.histo("sched_wait_us").expect("wait histo").count >= 1);
    for stage in [
        "audit_stage_graph_build_us",
        "audit_stage_rg_minimal_us",
        "audit_stage_ranking_us",
    ] {
        assert_eq!(
            metrics
                .histo(stage)
                .unwrap_or_else(|| panic!("{stage} missing"))
                .count,
            2,
            "{stage} must record once per candidate"
        );
    }
    // A histogram quantile never undershoots: p99 bound >= p50 bound.
    let audit = metrics.histo("audit_sia_us").unwrap();
    assert!(audit.p99_us >= audit.p50_us);
    assert!(audit.max_us >= audit.p99_us);

    // Flight recorder: the computed audit (stages + pins, outcome ok)
    // and the cache hit are both present, newest first, both slow.
    let miss_pos = metrics
        .traces
        .iter()
        .position(|t| t.kind == "sia" && !t.cached)
        .expect("computed-audit trace");
    let hit_pos = metrics
        .traces
        .iter()
        .position(|t| t.kind == "sia" && t.cached)
        .expect("cache-hit trace");
    assert!(hit_pos < miss_pos, "traces must be newest first");
    let miss = &metrics.traces[miss_pos];
    assert!(
        !miss.stages.is_empty(),
        "computed audit carries stage timings"
    );
    assert!(!miss.pins.is_empty(), "SIA trace carries shard pins");
    assert_eq!(miss.outcome, "ok");
    assert!(miss.slow, "threshold 0 flags everything");
    assert!(metrics.traces[hit_pos].slow);
    assert!(metrics.traces[hit_pos].stages.is_empty());

    // The Status satellites: uptime_secs and per-engine audit counts
    // ride the same counters; nothing was shed.
    let status = client.status().expect("status");
    assert_eq!(status.sia_audits, 1);
    assert_eq!(status.pia_audits, 0);
    assert_eq!(status.dropped_events, 0);
    assert!(status.uptime_secs <= status.uptime_ms / 1000 + 1);

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn v1_session_serves_metrics_and_extended_status() {
    // The Metrics request is not v2-only: a plain line-mode session
    // (no Hello) gets the same snapshot, and the appended Status fields
    // arrive without disturbing the original ones.
    let (addr, daemon) = start_daemon();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |request: &Request| -> Response {
        let line = indaas::service::proto::encode_line(request);
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut answer = String::new();
        reader.read_line(&mut answer).expect("read");
        indaas::service::proto::decode_line(answer.trim()).expect("decode")
    };
    let Response::Metrics {
        counters, histos, ..
    } = roundtrip(&Request::Metrics { recent: Some(4) })
    else {
        panic!("expected a Metrics response");
    };
    assert!(counters.iter().any(|(n, _)| n == "requests_total"));
    assert!(histos.iter().any(|h| h.name == "dispatch_us"));
    let Response::Status {
        records,
        uptime_secs: _,
        sia_audits,
        dropped_events,
        ..
    } = roundtrip(&Request::Status)
    else {
        panic!("expected a Status response");
    };
    assert_eq!(records, 0);
    assert_eq!(sia_audits, 0);
    assert_eq!(dropped_events, 0);
    assert!(matches!(
        roundtrip(&Request::Shutdown),
        Response::ShuttingDown
    ));
    daemon.join().unwrap().expect("serve loop");
}

/// A traced request leaves a span tree behind: the request span recorded
/// under the caller's context, with queue wait, audit execution and the
/// engine stages as descendants — and both the explicit `Trace{id}`
/// fetch and the pushed `AuditEvent.trace_id` expose the trace.
#[test]
fn traced_audit_records_spans_and_push_events_carry_trace_ids() {
    use indaas::obs::{format_trace_id, TraceContext};

    let (addr, daemon) = start_daemon();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(RECORDS).expect("ingest");

    let root = TraceContext::root();
    let response = client
        .request_traced(
            &Request::AuditSia {
                spec: audit_spec(),
                timeout_ms: None,
            },
            Some(root),
        )
        .expect("traced audit");
    assert!(matches!(response, Response::Sia { .. }));

    let trace_hex = format_trace_id(root.trace_id);
    let (node, spans) = client.fetch_trace(&trace_hex).expect("Trace answered");
    assert_eq!(node, addr.to_string());
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for name in [
        "request:AuditSia",
        "queue_wait",
        "audit_exec",
        "graph_build",
    ] {
        assert!(names.contains(&name), "missing {name} span in {names:?}");
    }
    // The request span is the caller's own context — span ids are minted
    // once, at the caller, so the tree stitches without translation.
    let request = spans
        .iter()
        .find(|s| s.name == "request:AuditSia")
        .expect("request span");
    assert_eq!(request.span_id, root.span_id);
    // Engine stages hang under the audit execution span.
    let exec = spans.iter().find(|s| s.name == "audit_exec").expect("exec");
    let stage = spans
        .iter()
        .find(|s| s.name == "graph_build")
        .expect("stage span");
    assert_eq!(stage.parent_span_id, exec.span_id);

    // An unknown (but well-formed) trace id answers with zero spans; a
    // malformed one is a clear error, not a wedge.
    let (_n, empty) = client.fetch_trace("deadbeef").expect("unknown id ok");
    assert!(empty.is_empty());
    assert!(client.fetch_trace("not-hex!").is_err());

    // Pushed audit events carry the trace id of the request that caused
    // them (here: the Subscribe's own trace, for the initial event).
    let mut subscription = client.subscribe(&audit_spec()).expect("subscribe");
    let event = subscription.recv().expect("initial pushed event");
    let event_trace = event.trace_id.expect("push events are traced");
    let (_n, push_spans) = client.fetch_trace(&event_trace).expect("push trace");
    assert!(
        push_spans.iter().any(|s| s.name == "push"),
        "push span recorded under the subscriber's trace"
    );

    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("serve loop");
}

#[test]
fn server_handle_spawn_and_shutdown() {
    // `Server::spawn` replaces the hand-rolled thread + protocol-level
    // `Shutdown` request dance: the handle owns the serve thread and
    // `shutdown()` wakes the readiness loop directly.
    let handle = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn serve thread");
    let addr = handle.addr();

    // The daemon is live: a full ingest + audit round-trip works.
    let mut client = Client::connect(addr).expect("connect");
    let ack = client.ingest(RECORDS).expect("ingest");
    assert_eq!(ack.epoch, 1);
    let answer = client.audit_sia(&audit_spec(), None).expect("audit");
    assert!(!answer.cached);

    // An open subscription gets the farewell push when the handle shuts
    // the server down out-of-band (no protocol Shutdown request sent).
    let mut subscription = client.subscribe(&audit_spec()).expect("subscribe");
    let _initial = subscription.recv().expect("initial pushed event");

    handle.shutdown().expect("shutdown joins the serve loop");

    // The listener is gone and the subscriber saw a clean end-of-stream
    // (farewell or orderly close), not a hang.
    assert!(TcpStream::connect(addr).is_err(), "listener closed");
    while subscription.recv().is_ok() {}
}
