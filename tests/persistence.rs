//! Persistence round-trip tests: segmented save → load, legacy
//! monolithic file → segmented migration, and crash-safe file
//! replacement — the daemon's restart story at the library surface.

use std::path::PathBuf;

use indaas::deps::{
    shard_index, DepDb, DepView, DependencyRecord, HardwareDep, NetworkDep, ShardedDepDb,
    SoftwareDep, MANIFEST_FILE,
};
use proptest::prelude::*;

/// Unique scratch directory per test (removed on success; a failed run
/// leaves it behind for inspection).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "indaas-persistence-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Decodes a small integer into one of a few dozen distinct records
/// across all three kinds and a handful of hosts.
fn decode_record(n: u32) -> DependencyRecord {
    let host = format!("srv-{}", (n / 3) % 7);
    let dep = (n / 21) % 5;
    match n % 3 {
        0 => DependencyRecord::Network(NetworkDep {
            src: host,
            dst: "Internet".to_string(),
            route: vec![format!("tor-{dep}"), "core-1".to_string()],
        }),
        1 => DependencyRecord::Hardware(HardwareDep {
            hw: host,
            hw_type: "CPU".to_string(),
            dep: format!("chip-{dep}"),
        }),
        _ => DependencyRecord::Software(SoftwareDep {
            pgm: "Svc".to_string(),
            hw: host,
            deps: vec![format!("lib-{dep}")],
        }),
    }
}

fn record_batch() -> impl Strategy<Value = Vec<DependencyRecord>> {
    proptest::collection::vec(0u32..120, 1..40usize)
        .prop_map(|ns| ns.into_iter().map(decode_record).collect())
}

/// Asserts two stores expose identical data through the snapshot view.
fn assert_same_view(a: &ShardedDepDb, b: &ShardedDepDb) {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(DepView::hosts(&sa), DepView::hosts(&sb));
    assert_eq!(sa.record_count(), sb.record_count());
    for host in DepView::hosts(&sa) {
        assert_eq!(
            sa.component_set_of(&host),
            sb.component_set_of(&host),
            "component set of {host} differs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Segmented save → load is lossless for any batch, preserves
    /// per-shard routing, and re-seeds epochs like a fresh non-empty
    /// store (restarts reset epoch history; caches are in-memory and
    /// die with the process anyway).
    #[test]
    fn segmented_roundtrip_is_lossless(batch in record_batch(), shards in 1usize..10) {
        let dir = scratch("prop-roundtrip");
        let store = ShardedDepDb::new(shards);
        store.ingest(batch);
        store.save_segments(&dir).unwrap();
        let back = ShardedDepDb::load_segments(&dir, shards).unwrap();
        prop_assert_eq!(back.num_shards(), shards);
        prop_assert_eq!(back.len(), store.len());
        for s in 0..shards {
            prop_assert_eq!(back.shard_len(s), store.shard_len(s));
        }
        prop_assert_eq!(back.epoch(), u64::from(!store.is_empty()));
        let (sa, sb) = (store.snapshot(), back.snapshot());
        for host in DepView::hosts(&sa) {
            prop_assert_eq!(sa.network_deps(&host), sb.network_deps(&host));
            prop_assert_eq!(sa.hardware_deps(&host), sb.hardware_deps(&host));
            prop_assert_eq!(sa.software_deps(&host), sb.software_deps(&host));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Loading a db-dir into a different shard count re-routes every
    /// record correctly — the online migration path for `--shards`.
    #[test]
    fn load_with_different_shard_count_reroutes(
        batch in record_batch(),
        saved_shards in 1usize..8,
        loaded_shards in 1usize..8,
    ) {
        let dir = scratch("prop-reshard");
        let store = ShardedDepDb::new(saved_shards);
        store.ingest(batch);
        store.save_segments(&dir).unwrap();
        let back = ShardedDepDb::load_segments(&dir, loaded_shards).unwrap();
        prop_assert_eq!(back.num_shards(), loaded_shards);
        prop_assert_eq!(back.len(), store.len());
        let snap = back.snapshot();
        for host in DepView::hosts(&snap) {
            prop_assert_eq!(snap.shard_of(&host), shard_index(&host, loaded_shards));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The full migration story: a legacy monolithic Table-1 file opens
/// transparently and is migrated in place (the original preserved as a
/// `.legacy.bak`), and the resulting segmented directory round-trips
/// from then on.
#[test]
fn legacy_monolithic_file_migrates_to_segments() {
    let dir = scratch("migration");
    std::fs::create_dir_all(&dir).unwrap();

    // A legacy deployment: one monolithic Table-1 export.
    let records: Vec<DependencyRecord> = (0..90).map(decode_record).collect();
    let mono = DepDb::from_records(records);
    let mono_path = dir.join("depdb.tbl");
    mono.save(&mono_path).unwrap();

    // `open` on the file loads it, routes into shards, and converts the
    // path into a segmented directory so later saves land somewhere.
    let store = ShardedDepDb::open(&mono_path, 6).unwrap();
    assert_eq!(store.len(), mono.len());
    let snap = store.snapshot();
    for host in mono.hosts() {
        assert_eq!(snap.component_set_of(&host), mono.component_set_of(&host));
    }
    assert!(mono_path.is_dir(), "migration replaces the file in place");
    assert!(mono_path.join(MANIFEST_FILE).exists());
    let backup = dir.join("depdb.tbl.legacy.bak");
    assert_eq!(
        DepDb::load(&backup).unwrap().len(),
        mono.len(),
        "the original export survives as a backup"
    );

    // The migrated path reopens as a segmented directory; a copy saved
    // elsewhere round-trips identically.
    let seg_dir = dir.join("db");
    store.save_segments(&seg_dir).unwrap();
    assert!(seg_dir.join(MANIFEST_FILE).exists());
    let reopened = ShardedDepDb::open(&seg_dir, 6).unwrap();
    assert_same_view(&store, &reopened);
    let reopened_in_place = ShardedDepDb::open(&mono_path, 6).unwrap();
    assert_same_view(&store, &reopened_in_place);

    // Mutate + dirty-save + reload: still lossless.
    let report = reopened.ingest([DependencyRecord::Hardware(HardwareDep {
        hw: "srv-0".to_string(),
        hw_type: "GPU".to_string(),
        dep: "fresh-after-migration".to_string(),
    })]);
    assert_eq!(report.changed, 1);
    let written = reopened.save_dirty_segments(&seg_dir).unwrap();
    assert!(written >= 1, "an effective ingest must dirty its shard");
    let reloaded = ShardedDepDb::open(&seg_dir, 6).unwrap();
    assert_same_view(&reopened, &reloaded);

    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-safe saves: overwriting an existing export goes through a temp
/// file + rename, so the destination is never observed torn and no temp
/// debris survives.
#[test]
fn saves_replace_files_atomically() {
    let dir = scratch("atomic");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("export.tbl");

    let small = DepDb::from_records((0..6).map(decode_record));
    let large = DepDb::from_records((0..100).map(decode_record));
    large.save(&path).unwrap();
    small.save(&path).unwrap();
    // The second (smaller) save fully replaced the first: a torn write
    // would have left trailing large-export records behind.
    let back = DepDb::load(&path).unwrap();
    assert_eq!(back.len(), small.len());

    let debris: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("tmp"))
        .collect();
    assert!(debris.is_empty(), "temp files left behind: {debris:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent writers during a dirty save never corrupt the directory:
/// whatever interleaving happens, a subsequent load parses cleanly and
/// the final save captures the final state.
#[test]
fn dirty_saves_race_writers_safely() {
    let dir = scratch("race");
    let store = ShardedDepDb::new(4);
    store.ingest((0..40).map(decode_record));
    store.save_segments(&dir).unwrap();

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for n in 0..200 {
                store.ingest([decode_record(1000 + n)]);
            }
        });
        let saver = scope.spawn(|| {
            for _ in 0..20 {
                store.save_dirty_segments(&dir).unwrap();
                // Every intermediate state on disk must parse.
                let loaded = ShardedDepDb::load_segments(&dir, 4).unwrap();
                assert!(loaded.len() <= store.len());
            }
        });
        writer.join().unwrap();
        saver.join().unwrap();
    });

    // A final save captures everything the writer landed.
    store.save_dirty_segments(&dir).unwrap();
    let final_load = ShardedDepDb::load_segments(&dir, 4).unwrap();
    assert_same_view(&store, &final_load);
    std::fs::remove_dir_all(&dir).ok();
}

// A second `proptest!` block needs its own module (the macro defines
// per-module config items).
mod corruption_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite robustness property: whatever bytes end up inside one
        /// segment file — truncation, bit flips, plain garbage — loading
        /// never panics and never fails the whole startup. Either the bytes
        /// still parse (and every record loads) or the segment is set aside
        /// as `*.quarantine` and every *other* shard's record survives.
        #[test]
        fn corrupted_segment_never_panics_or_loses_other_shards(
            batch in record_batch(),
            victim in 0usize..4,
            garbage in proptest::collection::vec(any::<u8>(), 0..160),
        ) {
            let dir = scratch("prop-quarantine");
            let store = ShardedDepDb::new(4);
            store.ingest(batch);
            store.save_segments(&dir).unwrap();

            let victim_path = dir.join(format!("shard-{victim:04}.tbl"));
            std::fs::write(&victim_path, &garbage).unwrap();

            let (back, report) = ShardedDepDb::load_segments_reporting(&dir, 4).unwrap();
            let survivors: usize = (0..4)
                .filter(|&s| s != victim)
                .map(|s| store.shard_len(s))
                .sum();
            if report.quarantined.is_empty() {
                // The garbage happened to parse (e.g. empty or comments):
                // the victim shard holds whatever it parsed to.
                prop_assert!(back.len() >= survivors);
            } else {
                prop_assert_eq!(report.quarantined.len(), 1);
                prop_assert!(!victim_path.exists(), "bad segment renamed away");
                prop_assert_eq!(back.len(), survivors);
            }
            std::fs::remove_dir_all(&dir).ok();
        }

        /// Same property for the manifest: arbitrary bytes in MANIFEST.json
        /// never panic the loader. Unless the garbage happens to parse as a
        /// *newer-format* manifest (refused on purpose), the load succeeds —
        /// quarantining the manifest and rescanning segments when needed —
        /// and every record survives.
        #[test]
        fn corrupted_manifest_never_panics_or_loses_records(
            batch in record_batch(),
            garbage in proptest::collection::vec(any::<u8>(), 0..120),
        ) {
            let dir = scratch("prop-manifest");
            let store = ShardedDepDb::new(4);
            store.ingest(batch);
            store.save_segments(&dir).unwrap();

            std::fs::write(dir.join(MANIFEST_FILE), &garbage).unwrap();
            match ShardedDepDb::load_segments_reporting(&dir, 4) {
                Ok((back, _)) => assert_same_view(&store, &back),
                // Only a parseable manifest announcing a newer format may
                // still refuse; random bytes essentially never form one.
                Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
