//! `indaas` — command-line independence auditing.
//!
//! ```text
//! indaas sia --records deps.txt --deploy "pair-a=S1,S2" --deploy "pair-b=S1,S3"
//! indaas sia --records deps.txt --deploy "svc=S1,S2" --algorithm sampling --rounds 100000
//! indaas pia --set Cloud1=c1.txt --set Cloud2=c2.txt --set Cloud3=c3.txt --way 2
//! indaas dot --records deps.txt --servers S1,S2 > graph.dot
//! ```
//!
//! `--records` files hold Table-1 records (`<src="S1" .../>`, one per
//! line); `--set` files hold one component per line. `--json` switches any
//! subcommand to machine-readable output.

use std::process::ExitCode;

use indaas::core::{AuditSpec, AuditingAgent, CandidateDeployment, RankingMetric, RgAlgorithm};
use indaas::deps::{parse_records, DepDb, FailureProbModel, ShardedDepDb, SimCollector};
use indaas::faultinj::points;
use indaas::federation::{Federation, FederationCoordinator, PeerRegistry};
use indaas::graph::to_dot;
use indaas::obs::{
    build_span_tree, format_trace_id, log as slog, parse_trace_id, SpanNode, SpanRecord,
};
use indaas::pia::normalize::normalize_set;
use indaas::pia::report::render_ranking;
use indaas::pia::{rank_deployments, PsopConfig};
use indaas::service::{
    names, Client, MetricsAnswer, Request, ServeConfig, Server, SpanEntry, StatusAnswer, TraceEntry,
};
use indaas::sia::{build_fault_graph, BuildSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("sia") => cmd_sia(&args[1..]),
        Some("pia") => cmd_pia(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("federate") => cmd_federate(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("ping") => cmd_ping(&args[1..]),
        Some("help") | Some("--help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            slog::error("indaas", &format!("error: {e}"));
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
indaas — audit the independence of redundant deployments (INDaaS, OSDI'14)

USAGE:
  indaas sia --records FILE --deploy NAME=S1,S2[,...] [--deploy ...]
             [--algorithm minimal|sampling] [--rounds N] [--max-order K]
             [--metric size|probability] [--default-prob P]
             [--only network,hardware,software] [--json]
  indaas pia --set NAME=FILE [--set ...] [--way N] [--minhash M] [--json]
  indaas dot --records FILE --servers S1,S2[,...]
  indaas serve [--listen ADDR] [--workers N] [--queue N] [--cache N]
               [--deadline-ms MS] [--db-dir DIR] [--records FILE]
               [--max-conns N] [--peer ADDR ...] [--collect-interval MS]
               [--collect-truth FILE] [--log-level LVL] [--log-json]
  indaas watch --deploy NAME=S1,S2[,...] [--deploy ...] [--addr ADDR]
               [--count N] [--timeout-ms MS] [--json]
  indaas federate --peer ADDR --peer ADDR [--peer ...] [--seed N]
                  [--round-timeout-ms MS] [--json]
  indaas metrics [--addr ADDR] [--recent N] [--prom] [--json]
  indaas top [--addr ADDR] [--interval-ms MS] [--count N] [--plain]
  indaas trace TRACE_ID [--addr ADDR ...] [--json]
  indaas ping [--addr ADDR]

FILES:
  --records  Table-1 dependency records, one per line
  --set      one component identifier per line (normalized automatically)
";

const SERVE_USAGE: &str = "\
indaas serve — run the continuous auditing daemon

USAGE:
  indaas serve [--listen ADDR] [--workers N] [--queue N] [--cache N]
               [--shards N] [--deadline-ms MS] [--db-dir DIR]
               [--records FILE] [--max-conns N] [--peer ADDR ...]
               [--node NAME] [--round-timeout-ms MS]
               [--collect-interval MS] [--collect-truth FILE]
               [--collect-miss-rate R] [--slow-audit-ms MS]
               [--push-debounce-ms MS] [--log-level LVL] [--log-json]
               [--fault SPEC ...]

OPTIONS:
  --listen ADDR          listen address (default 127.0.0.1:4914; port 0 = ephemeral)
  --workers N            audit worker threads (default: cores - 1, capped at 8)
  --queue N              bounded job-queue capacity (default 256)
  --cache N              audit-result cache entries (default 4096)
  --shards N             dependency-store shards (default 8); an ingest
                         re-clones and invalidates only the shards it
                         touches, so more shards = cheaper ingest and
                         narrower cache invalidation
  --deadline-ms MS       default per-job deadline (default 30000)
  --db-dir DIR           segmented persistence directory: segments load
                         in parallel at boot (a legacy monolithic
                         Table-1 file path migrates in place, keeping a
                         .legacy.bak) and dirty shards are saved
                         crash-safely on collector ticks and at shutdown
  --records FILE         pre-load Table-1 records before serving
                         (layered on top of --db-dir contents, if any)
  --max-conns N          most concurrently served client connections
                         (default 1024); excess connections get one
                         clear error and are dropped
  --peer ADDR            federation peer allow-list entry (repeatable;
                         no --peer = accept any peer)
  --node NAME            node name announced in peer handshakes
                         (default: the bound listen address)
  --round-timeout-ms MS  per-round federation deadline ceiling (default 10000)
  --collect-interval MS  re-run registered collectors this often
  --collect-truth FILE   Table-1 ground truth for a simulated collector
  --collect-miss-rate R  simulated collector miss rate in [0, 1) (default 0)
  --slow-audit-ms MS     flight-recorder slow threshold: traces at or
                         above MS total are flagged slow in `indaas
                         metrics` (default 1000; 0 flags everything)
  --push-debounce-ms MS  coalesce subscription pushes: an ingest burst
                         invalidating the same subscription schedules
                         one pushed audit per MS window instead of one
                         per batch (default 0 = push immediately)
  --log-level LVL        minimum severity the structured logger emits:
                         error|warn|info|debug (default info)
  --log-json             log one JSON object per line instead of text
                         (lines carry trace=/span= stamps either way)
  --fault SPEC           arm a chaos fault point (repeatable), SPEC =
                         <point>=<policy>[:prob][:seed] with policy one
                         of error|delay(MS)|drop|disconnect|crash, e.g.
                         --fault fed.frame.send=error:0.2:7. Points:
{fault_points}
                         Every firing is logged and counted in
                         faults_injected_total; no --fault = zero cost

PROTOCOL v2 (hello line, then multiplexed envelopes in binary frames):
  -> {\"Hello\": {\"version\": 2}}               <- {\"Welcome\": {\"version\": 2}}
  -> frame {\"id\": 1, \"body\": {\"AuditSia\": {...}}}
  -> frame {\"id\": 2, \"body\": {\"Subscribe\": {\"spec\": {...}, \"engine\": \"sia\"}}}
  <- frame {\"id\": 2, \"body\": {\"Subscribed\": {\"subscription\": 9}}}
  <- frame {\"id\": 0, \"body\": {\"AuditEvent\": {...}}}   (server push)
PROTOCOL v1 (no Hello: line-delimited JSON, lock-step; still served):
  -> \"Ping\"                                    <- \"Pong\"
  -> {\"Ingest\": {\"records\": \"<src=...>\"}}  <- {\"Ingested\": {\"changed\": 1, \"ignored\": 0, \"epoch\": 1}}
  -> {\"FederateHello\": {...}}                  <- {\"FederateWelcome\": {...}}  (peer sessions)
  -> \"Status\" | \"Shutdown\"
";

/// Renders `SERVE_USAGE` with the `--fault` point list generated from
/// the registry ([`points::ALL`]), so the advertised points can never
/// drift from the declared ones.
fn serve_usage() -> String {
    let indent = " ".repeat(25);
    let mut lines: Vec<String> = Vec::new();
    for (i, (name, _)) in points::ALL.iter().enumerate() {
        let sep = if i + 1 == points::ALL.len() { "." } else { "," };
        let word = format!("{name}{sep}");
        match lines.last_mut() {
            Some(line) if line.len() + 1 + word.len() <= 72 => {
                line.push(' ');
                line.push_str(&word);
            }
            _ => lines.push(format!("{indent}{word}")),
        }
    }
    SERVE_USAGE.replace("{fault_points}", &lines.join("\n"))
}

const WATCH_USAGE: &str = "\
indaas watch — subscribe to a deployment's audit and print every push

The daemon re-runs the audit whenever an ingest changes a shard one of
the deployment's hosts routes to, and pushes the fresh result here the
moment it is ready — no polling. The first event arrives immediately
(the current state of the world).

The watcher self-heals: a lost connection re-dials with jittered
backoff and re-subscribes (detecting and reporting any epochs missed
while away — the resubscription immediately pulls the fresh state). A
clean daemon shutdown (announced ShuttingDown drain) exits zero;
connection loss that exhausts the re-dial budget exits non-zero.

USAGE:
  indaas watch --deploy NAME=S1,S2[,...] [--deploy ...] [--addr ADDR]
               [--count N] [--timeout-ms MS] [--json] [--no-reconnect]

OPTIONS:
  --deploy NAME=S1,S2    candidate deployment to keep audited (repeatable)
  --addr ADDR            daemon address (default 127.0.0.1:4914)
  --count N              exit after N pushed events (default: run forever)
  --timeout-ms MS        exit with an error if no event arrives within MS
  --json                 one JSON object per event
  --no-reconnect         exit non-zero on the first connection loss
                         instead of re-dialing
";

const FEDERATE_USAGE: &str = "\
indaas federate — run a private overlap audit across running daemons

Each --peer daemon plays one P-SOP ring party using the component set in
its own dependency database; this coordinator plays the auditing agent
and learns only the intersection/union cardinalities plus per-party
traffic — never any provider's components.

USAGE:
  indaas federate --peer ADDR --peer ADDR [--peer ...] [--seed N]
                  [--round-timeout-ms MS] [--json]

OPTIONS:
  --peer ADDR            a provider daemon, in ring order (at least two)
  --seed N               P-SOP seed shared by all parties (default 20560)
  --round-timeout-ms MS  per-round deadline sent to every daemon (default 10000)
  --json                 machine-readable output

DEGRADED OUTCOMES:
  When a strict minority of daemons is unreachable mid-round, the
  coordinator reports a degraded outcome instead of erroring: the failed
  parties are named (with whether each was reachable), no overlap result
  is produced, and the exit status is non-zero. JSON output carries
  \"degraded\": true plus a parties_failed array.
";

const METRICS_USAGE: &str = "\
indaas metrics — dump a running daemon's observability snapshot

Every registered counter, gauge and log₂ latency histogram, plus the
flight recorder's most recent request/audit traces (per-stage timings,
cache disposition, shard pins, slow flag).

USAGE:
  indaas metrics [--addr ADDR] [--recent N] [--prom] [--json]

OPTIONS:
  --addr ADDR    daemon address (default 127.0.0.1:4914)
  --recent N     how many recent traces to fetch (default: server's 32)
  --prom         Prometheus text exposition format (for scraping)
  --json         the raw Metrics response as JSON
";

const TRACE_USAGE: &str = "\
indaas trace — fetch one distributed trace and render its span tree

Every v2 request carries a trace context; the daemons record spans for
dispatch, queue wait, each engine stage, pushed audits and federation
rounds under it. This command asks each --addr daemon for the spans it
holds for TRACE_ID and stitches them into one parent/child tree — for a
federated audit that tree spans every ring daemon.

USAGE:
  indaas trace TRACE_ID [--addr ADDR ...] [--json]

OPTIONS:
  TRACE_ID       hex trace id, from `indaas federate` output, a watch
                 event, or the trace= stamp on any log line
  --addr ADDR    daemon to query (repeatable; default 127.0.0.1:4914)
  --json         machine-readable span list
";

const TOP_USAGE: &str = "\
indaas top — live terminal view of a running daemon

Refreshes a snapshot diff: request/audit rates since the previous tick,
per-stage latency quantiles, cache hit ratio, queue depth, outbox sheds,
and the most recent flight-recorder traces.

USAGE:
  indaas top [--addr ADDR] [--interval-ms MS] [--count N] [--plain]

OPTIONS:
  --addr ADDR       daemon address (default 127.0.0.1:4914)
  --interval-ms MS  refresh interval (default 1000)
  --count N         exit after N refreshes (default: run until ^C)
  --plain           no screen clearing between refreshes (log-friendly)
";

/// Simple flag cursor over argv.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn values(&self, flag: &str) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.args.len() {
            if self.args[i] == flag {
                if let Some(v) = self.args.get(i + 1) {
                    out.push(v.as_str());
                    i += 1;
                }
            }
            i += 1;
        }
        out
    }

    fn value(&self, flag: &str) -> Option<&'a str> {
        self.values(flag).into_iter().next()
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }
}

fn load_db(flags: &Flags) -> Result<DepDb, String> {
    let path = flags.value("--records").ok_or("missing --records FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let records = parse_records(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(DepDb::from_records(records))
}

/// Parses every `--deploy NAME=S1,S2[,...]` flag into candidates.
fn parse_deployments(flags: &Flags) -> Result<Vec<CandidateDeployment>, String> {
    let mut candidates = Vec::new();
    for spec in flags.values("--deploy") {
        let (name, servers) = spec
            .split_once('=')
            .ok_or_else(|| format!("--deploy wants NAME=S1,S2 (got {spec:?})"))?;
        let servers: Vec<String> = servers
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if servers.len() < 2 {
            return Err(format!("deployment {name:?} needs at least two servers"));
        }
        candidates.push(CandidateDeployment::replicated(name, servers));
    }
    if candidates.is_empty() {
        return Err("at least one --deploy required".into());
    }
    Ok(candidates)
}

fn cmd_sia(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let db = load_db(&flags)?;
    let candidates = parse_deployments(&flags)?;

    let algorithm = match flags.value("--algorithm").unwrap_or("minimal") {
        "minimal" => RgAlgorithm::Minimal {
            max_order: flags
                .value("--max-order")
                .map(|v| v.parse().map_err(|e| format!("--max-order: {e}")))
                .transpose()?,
        },
        "sampling" => RgAlgorithm::Sampling {
            rounds: flags
                .value("--rounds")
                .unwrap_or("100000")
                .parse()
                .map_err(|e| format!("--rounds: {e}"))?,
            fail_prob: 0.5,
            seed: 2014,
            threads: 1,
        },
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let metric = match flags.value("--metric").unwrap_or("size") {
        "size" => RankingMetric::Size,
        "probability" | "prob" => RankingMetric::Probability {
            default_prob: flags
                .value("--default-prob")
                .unwrap_or("0.05")
                .parse()
                .map_err(|e| format!("--default-prob: {e}"))?,
        },
        other => return Err(format!("unknown metric {other:?}")),
    };
    let only = flags.value("--only").unwrap_or("network,hardware,software");
    let spec = AuditSpec {
        candidates,
        network: only.contains("network"),
        hardware: only.contains("hardware"),
        software: only.contains("software"),
        algorithm,
        prob_model: matches!(metric, RankingMetric::Probability { .. })
            .then(FailureProbModel::gill_defaults),
        metric,
        top_n: None,
    };

    let agent = AuditingAgent::new(db);
    let report = agent.audit_sia(&spec).map_err(|e| e.to_string())?;
    if flags.has("--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

fn cmd_pia(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let mut providers = Vec::new();
    for spec in flags.values("--set") {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--set wants NAME=FILE (got {spec:?})"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let raw: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        if raw.is_empty() {
            return Err(format!("{path}: empty component set"));
        }
        providers.push((name.to_string(), normalize_set(raw)));
    }
    if providers.len() < 2 {
        return Err("at least two --set providers required".into());
    }
    let way: usize = flags
        .value("--way")
        .unwrap_or("2")
        .parse()
        .map_err(|e| format!("--way: {e}"))?;
    if way < 2 || way > providers.len() {
        return Err("--way must be between 2 and the number of providers".into());
    }
    let minhash = flags
        .value("--minhash")
        .map(|v| v.parse().map_err(|e| format!("--minhash: {e}")))
        .transpose()?;
    let rankings = rank_deployments(&providers, way, minhash, &PsopConfig::default());
    if flags.has("--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rankings).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", render_ranking(way, &rankings));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    if flags.has("--help") || flags.has("-h") {
        eprint!("{}", serve_usage());
        return Ok(());
    }
    let mut config = ServeConfig::default();
    if let Some(addr) = flags.value("--listen") {
        config.addr = addr.to_string();
    }
    if let Some(v) = flags.value("--workers") {
        config.workers = v.parse().map_err(|e| format!("--workers: {e}"))?;
        if config.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
    }
    if let Some(v) = flags.value("--queue") {
        config.queue_capacity = v.parse().map_err(|e| format!("--queue: {e}"))?;
    }
    if let Some(v) = flags.value("--cache") {
        config.cache_capacity = v.parse().map_err(|e| format!("--cache: {e}"))?;
    }
    if let Some(v) = flags.value("--shards") {
        config.shards = v.parse().map_err(|e| format!("--shards: {e}"))?;
        if config.shards == 0 {
            return Err("--shards must be at least 1".into());
        }
    }
    if let Some(v) = flags.value("--max-conns") {
        config.max_conns = v.parse().map_err(|e| format!("--max-conns: {e}"))?;
        if config.max_conns == 0 {
            return Err("--max-conns must be at least 1".into());
        }
    }
    if let Some(v) = flags.value("--deadline-ms") {
        let ms: u64 = v.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
        config.default_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = flags.value("--round-timeout-ms") {
        let ms: u64 = v.parse().map_err(|e| format!("--round-timeout-ms: {e}"))?;
        config.round_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = flags.value("--collect-interval") {
        let ms: u64 = v.parse().map_err(|e| format!("--collect-interval: {e}"))?;
        if ms == 0 {
            return Err("--collect-interval must be at least 1 ms".into());
        }
        config.collect_interval = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(v) = flags.value("--slow-audit-ms") {
        config.slow_audit_ms = v.parse().map_err(|e| format!("--slow-audit-ms: {e}"))?;
    }
    if let Some(v) = flags.value("--push-debounce-ms") {
        config.push_debounce_ms = v.parse().map_err(|e| format!("--push-debounce-ms: {e}"))?;
    }
    if let Some(v) = flags.value("--log-level") {
        config.log_level = v.parse().map_err(|e| format!("--log-level: {e}"))?;
    }
    if flags.has("--log-json") {
        config.log_json = true;
    }
    if let Some(dir) = flags.value("--db-dir") {
        config.db_dir = Some(std::path::PathBuf::from(dir));
    }
    // Fault specs arm *before* the store opens so `db.load` faults
    // cover boot-time recovery too; bind re-arms the same specs, which
    // is harmless.
    config.faults = flags
        .values("--fault")
        .iter()
        .map(|s| s.to_string())
        .collect();
    for spec in &config.faults {
        indaas::faultinj::arm(spec).map_err(|e| format!("--fault: {e}"))?;
    }
    // The store opens from --db-dir (segments in parallel; a legacy
    // monolithic file migrates transparently; a missing path starts
    // empty; corrupt segments are quarantined and counted), then any
    // --records file is layered on top through the normal ingest path.
    let store = match &config.db_dir {
        Some(dir) => {
            let (store, report) = ShardedDepDb::open_reporting(dir, config.shards)
                .map_err(|e| format!("opening {}: {e}", dir.display()))?;
            config.boot_quarantined = report.quarantined.len() as u64;
            store
        }
        None => ShardedDepDb::new(config.shards),
    };
    if let Some(path) = flags.value("--records") {
        let db = DepDb::load(path).map_err(|e| format!("loading {path}: {e}"))?;
        store.ingest(db.all_records());
    }
    let server = Server::bind_with_store(config, store).map_err(|e| format!("bind: {e}"))?;

    // Federation is always on: the engine announces the bound address
    // (or --node) and enforces the --peer allow-list, if any.
    let node = flags
        .value("--node")
        .map(String::from)
        .unwrap_or_else(|| server.local_addr().to_string());
    let registry = PeerRegistry::with_peers(flags.values("--peer").iter().map(|s| s.to_string()));
    server.set_federation(std::sync::Arc::new(Federation::with_registry(
        node, registry,
    )));

    // A --collect-truth file arms a simulated collector; the timer in
    // the daemon re-runs it every --collect-interval.
    if let Some(path) = flags.value("--collect-truth") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let truth = parse_records(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let miss_rate: f64 = flags
            .value("--collect-miss-rate")
            .unwrap_or("0.0")
            .parse()
            .map_err(|e| format!("--collect-miss-rate: {e}"))?;
        if !(0.0..1.0).contains(&miss_rate) {
            return Err("--collect-miss-rate must be in [0, 1)".into());
        }
        server.add_collector(Box::new(SimCollector::new("sim", truth, miss_rate, 2014)));
    }

    // The logger keeps the message (ending in the address) last on the
    // text line, so tooling that scrapes the banner's trailing token
    // still finds the bound address.
    slog::info(
        "serve",
        &format!("indaas daemon listening on {}", server.local_addr()),
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    if flags.has("--help") || flags.has("-h") {
        eprint!("{WATCH_USAGE}");
        return Ok(());
    }
    let candidates = parse_deployments(&flags)?;
    let spec = AuditSpec::sia_size_based(candidates);
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:4914");
    let count: Option<u64> = flags
        .value("--count")
        .map(|v| v.parse().map_err(|e| format!("--count: {e}")))
        .transpose()?;
    let timeout = flags
        .value("--timeout-ms")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--timeout-ms: {e}")))
        .transpose()?
        .map(std::time::Duration::from_millis);
    let json = flags.has("--json");
    let no_reconnect = flags.has("--no-reconnect");

    // Watchers self-heal: a lost connection re-dials with jittered
    // backoff and re-subscribes; an *announced* server shutdown exits
    // zero. Only the very first connect (and repeated reconnect
    // failure) is fatal.
    const MAX_REDIALS: u32 = 5;
    let mut seen = 0u64;
    let mut last_epoch: Option<u64> = None;
    let mut first_connect = true;
    'session: loop {
        let session = (|| -> Result<(Client, indaas::service::Subscription), String> {
            let mut client =
                Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
            let subscription = client
                .subscribe(&spec)
                .map_err(|e| format!("subscribing: {e}"))?;
            Ok((client, subscription))
        })();
        let (mut client, mut subscription) = match session {
            Ok(s) => s,
            Err(e) if first_connect || no_reconnect => return Err(e),
            Err(e) => {
                let mut redials = 1u32;
                loop {
                    if redials >= MAX_REDIALS {
                        return Err(format!("{e} (gave up after {MAX_REDIALS} re-dials)"));
                    }
                    std::thread::sleep(reconnect_backoff(redials));
                    match Client::connect(addr)
                        .map_err(|err| format!("connecting {addr}: {err}"))
                        .and_then(|mut c| {
                            let s = c
                                .subscribe(&spec)
                                .map_err(|err| format!("subscribing: {err}"))?;
                            Ok((c, s))
                        }) {
                        Ok(s) => break s,
                        Err(_) => redials += 1,
                    }
                }
            }
        };
        if !json {
            slog::info(
                "watch",
                &format!(
                    "watching {} deployment(s) on {addr} (subscription {})",
                    spec.candidates.len(),
                    subscription.id()
                ),
            );
        }
        // Epoch-gap detection after a reconnect: if ingest waves landed
        // while we were away, say so — the subscription's immediate
        // first event *is* the fresh pull of the current state.
        if !first_connect {
            if let (Ok(status), Some(last)) = (client.status(), last_epoch) {
                if status.epoch > last {
                    slog::warn(
                        "watch",
                        &format!(
                            "missed epoch(s) {}..{} during reconnect; fresh audit pulled",
                            last + 1,
                            status.epoch
                        ),
                    );
                }
            }
        }
        first_connect = false;
        loop {
            // Checked before blocking so `--count 0` exits without
            // waiting for (or printing) an event.
            if count.is_some_and(|c| seen >= c) {
                return Ok(());
            }
            let received = match timeout {
                Some(t) => subscription.recv_timeout(t).map(|e| {
                    Some(e.ok_or_else(|| format!("no audit event within {}ms", t.as_millis())))
                }),
                None => subscription.recv().map(|e| Some(Ok(e))),
            };
            let event = match received {
                Ok(Some(Ok(event))) => event,
                Ok(Some(Err(timed_out))) => return Err(timed_out),
                Ok(None) => unreachable!("recv never yields Ok(None)"),
                Err(_) => match subscription.end() {
                    Some(indaas::service::SubscriptionEnd::CleanShutdown) => {
                        slog::info("watch", "server shut down cleanly; exiting");
                        return Ok(());
                    }
                    Some(indaas::service::SubscriptionEnd::ConnectionLost(reason)) => {
                        if no_reconnect {
                            return Err(format!("connection lost: {reason}"));
                        }
                        slog::warn("watch", &format!("connection lost ({reason}); re-dialing"));
                        std::thread::sleep(reconnect_backoff(1));
                        continue 'session;
                    }
                    None => return Err("subscription closed".to_string()),
                },
            };
            last_epoch = Some(event.epoch);
            if json {
                #[derive(serde::Serialize)]
                struct EventJson {
                    subscription: u64,
                    epoch: u64,
                    cached: bool,
                    elapsed_us: u64,
                    trace_id: Option<String>,
                    report: indaas::sia::AuditReport,
                }
                println!(
                    "{}",
                    serde_json::to_string(&EventJson {
                        subscription: event.subscription,
                        epoch: event.epoch,
                        cached: event.cached,
                        elapsed_us: event.elapsed_us,
                        trace_id: event.trace_id,
                        report: event.report,
                    })
                    .map_err(|e| e.to_string())?
                );
            } else {
                let best = event
                    .report
                    .best()
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|| "<none>".to_string());
                let trace = event
                    .trace_id
                    .as_deref()
                    .map(|t| format!(" trace={t}"))
                    .unwrap_or_default();
                println!(
                    "[epoch {}] best={best} cached={} elapsed={}us{trace}",
                    event.epoch, event.cached, event.elapsed_us
                );
                for d in &event.report.deployments {
                    println!(
                        "  {}: {} unexpected risk group(s)",
                        d.name, d.unexpected_rgs
                    );
                }
            }
            seen += 1;
        }
    }
}

/// Jittered exponential backoff for watch re-dials: 100ms doubling to a
/// 2s cap, plus up to 100ms of clock-derived jitter so a herd of
/// watchers does not hammer a restarting daemon in lock-step.
fn reconnect_backoff(attempt: u32) -> std::time::Duration {
    let base = std::time::Duration::from_millis(100)
        .saturating_mul(1u32 << attempt.min(5).saturating_sub(1));
    let jitter_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) % 100)
        .unwrap_or(0);
    base.min(std::time::Duration::from_secs(2)) + std::time::Duration::from_millis(jitter_ms)
}

fn cmd_federate(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    if flags.has("--help") || flags.has("-h") {
        eprint!("{FEDERATE_USAGE}");
        return Ok(());
    }
    let peers: Vec<String> = flags
        .values("--peer")
        .iter()
        .map(|s| s.to_string())
        .collect();
    if peers.len() < 2 {
        return Err("at least two --peer daemons required".into());
    }
    let mut config = PsopConfig::default();
    if let Some(v) = flags.value("--seed") {
        config.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    let mut coordinator = FederationCoordinator::new(peers.clone()).with_config(config);
    if let Some(v) = flags.value("--round-timeout-ms") {
        let ms: u64 = v.parse().map_err(|e| format!("--round-timeout-ms: {e}"))?;
        coordinator = coordinator.with_round_timeout(std::time::Duration::from_millis(ms));
    }
    let outcome = coordinator.run().map_err(|e| e.to_string())?;
    let psop = outcome.psop.as_ref();
    let trace_id = format_trace_id(outcome.trace.trace_id);
    if flags.has("--json") {
        #[derive(serde::Serialize)]
        struct PartyJson {
            party: usize,
            addr: String,
            sent_bytes: u64,
            recv_bytes: u64,
        }
        #[derive(serde::Serialize)]
        struct PartyFailureJson {
            party: usize,
            addr: String,
            reachable: bool,
            error: String,
        }
        #[derive(serde::Serialize)]
        struct FederateJson {
            session: u64,
            trace: String,
            degraded: bool,
            intersection: Option<usize>,
            union: Option<usize>,
            jaccard: Option<f64>,
            total_bytes: Option<u64>,
            messages: Option<u64>,
            parties: Vec<PartyJson>,
            parties_failed: Vec<PartyFailureJson>,
        }
        let report = FederateJson {
            session: outcome.session,
            trace: trace_id,
            degraded: outcome.degraded(),
            intersection: psop.map(|p| p.intersection),
            union: psop.map(|p| p.union),
            jaccard: psop.map(|p| p.jaccard),
            total_bytes: psop.map(|p| p.traffic.total_bytes()),
            messages: psop.map(|p| p.traffic.message_count()),
            parties: psop
                .map(|p| {
                    peers
                        .iter()
                        .enumerate()
                        .map(|(i, addr)| PartyJson {
                            party: i,
                            addr: addr.clone(),
                            sent_bytes: p.traffic.sent_bytes(i),
                            recv_bytes: p.traffic.recv_bytes(i),
                        })
                        .collect()
                })
                .unwrap_or_default(),
            parties_failed: outcome
                .parties_failed
                .iter()
                .map(|f| PartyFailureJson {
                    party: f.index,
                    addr: f.peer.clone(),
                    reachable: f.reachable,
                    error: f.error.clone(),
                })
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("federated P-SOP session {:#018x}", outcome.session);
        match psop {
            Some(psop) => {
                println!(
                    "  intersection: {}   union: {}   jaccard: {:.4}",
                    psop.intersection, psop.union, psop.jaccard
                );
                for (i, p) in peers.iter().enumerate() {
                    println!(
                        "  party {i} ({p}): sent {} B, received {} B",
                        psop.traffic.sent_bytes(i),
                        psop.traffic.recv_bytes(i)
                    );
                }
                println!(
                    "  agent: received {} B   total {} B in {} messages",
                    psop.traffic.recv_bytes(peers.len()),
                    psop.traffic.total_bytes(),
                    psop.traffic.message_count()
                );
            }
            None => {
                println!("  DEGRADED: no overlap result this round");
                for f in &outcome.parties_failed {
                    let kind = if f.reachable {
                        "reachable, round failed"
                    } else {
                        "unreachable"
                    };
                    println!("  party {} ({}) {kind}: {}", f.index, f.peer, f.error);
                }
            }
        }
        println!("  trace: {trace_id}   (stitch with `indaas trace {trace_id} --addr PEER ...`)");
    }
    if outcome.degraded() {
        let dead: Vec<String> = outcome
            .parties_failed
            .iter()
            .filter(|f| !f.reachable)
            .map(|f| format!("party {} ({})", f.index, f.peer))
            .collect();
        return Err(format!(
            "federated audit degraded: {} unreachable ({})",
            dead.len(),
            dead.join(", ")
        ));
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    if flags.has("--help") || flags.has("-h") {
        eprint!("{TRACE_USAGE}");
        return Ok(());
    }
    // One positional TRACE_ID among the flags.
    let mut id: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => i += 2,
            "--json" => i += 1,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}\n{TRACE_USAGE}"));
            }
            positional => {
                if id.is_some() {
                    return Err(format!("more than one TRACE_ID given\n{TRACE_USAGE}"));
                }
                id = Some(positional);
                i += 1;
            }
        }
    }
    let id = id.ok_or_else(|| format!("missing TRACE_ID\n{TRACE_USAGE}"))?;
    let trace_id = parse_trace_id(id)
        .ok_or_else(|| format!("bad trace id {id:?} (expected up to 32 hex digits, nonzero)"))?;
    let addrs = {
        let given = flags.values("--addr");
        if given.is_empty() {
            vec!["127.0.0.1:4914"]
        } else {
            given
        }
    };

    // Each daemon returns only the spans it recorded locally; stitching
    // is purely client-side (span ids are minted once, at the caller,
    // so parent links line up across daemons).
    let mut entries: Vec<SpanEntry> = Vec::new();
    for addr in &addrs {
        let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let (_node, spans) = client
            .fetch_trace(id)
            .map_err(|e| format!("fetching trace from {addr}: {e}"))?;
        entries.extend(spans);
    }
    if entries.is_empty() {
        return Err(format!(
            "no spans recorded for trace {} on {} daemon(s) — traces are held in a bounded \
             in-memory ring, so old ones age out",
            format_trace_id(trace_id),
            addrs.len()
        ));
    }
    if flags.has("--json") {
        #[derive(serde::Serialize)]
        struct TraceJson {
            trace: String,
            spans: Vec<SpanEntry>,
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&TraceJson {
                trace: format_trace_id(trace_id),
                spans: entries,
            })
            .map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    let nodes: std::collections::BTreeSet<&str> = entries.iter().map(|e| e.node.as_str()).collect();
    println!(
        "trace {} — {} span(s) across {} node(s)",
        format_trace_id(trace_id),
        entries.len(),
        nodes.len()
    );
    let spans: Vec<SpanRecord> = entries
        .into_iter()
        .filter_map(|e| {
            Some(SpanRecord {
                trace_id: parse_trace_id(&e.trace)?,
                span_id: e.span_id,
                parent_span_id: e.parent_span_id,
                name: e.name,
                detail: e.detail,
                node: e.node,
                start_us: e.start_us,
                elapsed_us: e.elapsed_us,
            })
        })
        .collect();
    let mut out = String::new();
    render_span_nodes(&mut out, &build_span_tree(spans), "");
    print!("{out}");
    Ok(())
}

/// Recursive box-drawing rendering of a stitched span tree.
fn render_span_nodes(out: &mut String, nodes: &[SpanNode], prefix: &str) {
    for (i, node) in nodes.iter().enumerate() {
        let last = i + 1 == nodes.len();
        let span = &node.span;
        let detail = if span.detail.is_empty() {
            String::new()
        } else {
            format!("  [{}]", span.detail)
        };
        out.push_str(&format!(
            "{prefix}{}{} ({}) {}us{detail}\n",
            if last { "└─ " } else { "├─ " },
            span.name,
            span.node,
            span.elapsed_us,
        ));
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        render_span_nodes(out, &node.children, &child_prefix);
    }
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    if flags.has("--help") || flags.has("-h") {
        eprint!("{METRICS_USAGE}");
        return Ok(());
    }
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:4914");
    let recent = flags
        .value("--recent")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--recent: {e}")))
        .transpose()?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    if flags.has("--json") {
        let response = client
            .request(&Request::Metrics { recent })
            .map_err(|e| e.to_string())?;
        println!(
            "{}",
            serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let metrics = client.metrics(recent).map_err(|e| e.to_string())?;
    if flags.has("--prom") {
        let status = client.status().map_err(|e| e.to_string())?;
        print!("{}", render_prometheus(&metrics, &status));
    } else {
        print!("{}", render_metrics(&metrics));
    }
    Ok(())
}

/// Renders the snapshot in Prometheus text exposition format. Histogram
/// names drop their `_us` suffix for `_seconds` families (sums and `le`
/// bounds converted to seconds: log₂ bucket `i` covers up to `2^i - 1`
/// µs); the per-shard write counters come from `Status` as one labeled
/// family.
fn render_prometheus(metrics: &MetricsAnswer, status: &StatusAnswer) -> String {
    let mut out = String::new();
    for (name, value) in &metrics.counters {
        out.push_str(&format!(
            "# TYPE indaas_{name} counter\nindaas_{name} {value}\n"
        ));
    }
    for (name, value) in &metrics.gauges {
        out.push_str(&format!(
            "# TYPE indaas_{name} gauge\nindaas_{name} {value}\n"
        ));
    }
    for histo in &metrics.histos {
        let base = histo.name.strip_suffix("_us").unwrap_or(&histo.name);
        let family = format!("indaas_{base}_seconds");
        out.push_str(&format!("# TYPE {family} histogram\n"));
        let mut cumulative = 0u64;
        for (bucket, count) in &histo.buckets {
            cumulative += count;
            let le = if *bucket == 0 {
                0.0
            } else {
                ((1u128 << bucket) - 1) as f64 / 1e6
            };
            out.push_str(&format!("{family}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", histo.count));
        out.push_str(&format!("{family}_sum {}\n", histo.sum_us as f64 / 1e6));
        out.push_str(&format!("{family}_count {}\n", histo.count));
    }
    out.push_str("# TYPE indaas_shard_writes counter\n");
    for (shard, writes) in status.shard_writes.iter().enumerate() {
        out.push_str(&format!(
            "indaas_shard_writes{{shard=\"{shard}\"}} {writes}\n"
        ));
    }
    out.push_str(&format!(
        "# TYPE indaas_uptime_seconds gauge\nindaas_uptime_seconds {}\n",
        metrics.uptime_secs
    ));
    out
}

/// One flight-recorder trace as a human-readable line.
fn render_trace(trace: &TraceEntry) -> String {
    let mut line = format!(
        "  #{} {} [{}] {}us{}{}",
        trace.seq,
        trace.kind,
        trace.detail,
        trace.total_us,
        if trace.cached { " cached" } else { "" },
        if trace.slow { " SLOW" } else { "" },
    );
    if trace.outcome != "ok" {
        line.push_str(&format!(" outcome={}", trace.outcome));
    }
    if !trace.stages.is_empty() {
        let stages: Vec<String> = trace
            .stages
            .iter()
            .map(|(stage, us)| format!("{stage}={us}us"))
            .collect();
        line.push_str(&format!(" ({})", stages.join(" ")));
    }
    line
}

/// The default human-readable `indaas metrics` rendering.
fn render_metrics(metrics: &MetricsAnswer) -> String {
    let mut out = format!("uptime: {}s\n\ncounters:\n", metrics.uptime_secs);
    for (name, value) in &metrics.counters {
        out.push_str(&format!("  {name}: {value}\n"));
    }
    out.push_str("\ngauges:\n");
    for (name, value) in &metrics.gauges {
        out.push_str(&format!("  {name}: {value}\n"));
    }
    out.push_str("\nlatency (us):\n");
    for histo in &metrics.histos {
        if histo.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "  {}: n={} p50<={} p90<={} p99<={} max<={}\n",
            histo.name, histo.count, histo.p50_us, histo.p90_us, histo.p99_us, histo.max_us
        ));
    }
    out.push_str(&format!(
        "\nrecent traces (slow >= {}us):\n",
        metrics.slow_threshold_us
    ));
    for trace in &metrics.traces {
        out.push_str(&render_trace(trace));
        out.push('\n');
    }
    out
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    if flags.has("--help") || flags.has("-h") {
        eprint!("{TOP_USAGE}");
        return Ok(());
    }
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:4914");
    let interval_ms: u64 = flags
        .value("--interval-ms")
        .unwrap_or("1000")
        .parse()
        .map_err(|e| format!("--interval-ms: {e}"))?;
    let count: Option<u64> = flags
        .value("--count")
        .map(|v| v.parse().map_err(|e| format!("--count: {e}")))
        .transpose()?;
    let plain = flags.has("--plain");
    let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let mut prev: Option<(MetricsAnswer, std::time::Instant)> = None;
    let mut ticks = 0u64;
    loop {
        let now = std::time::Instant::now();
        let metrics = client.metrics(Some(6)).map_err(|e| e.to_string())?;
        let status = client.status().map_err(|e| e.to_string())?;
        if !plain {
            // Clear + home, like a tiny `top`.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(addr, &metrics, &status, prev.as_ref()));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = Some((metrics, now));
        ticks += 1;
        if count.is_some_and(|c| ticks >= c) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// One `indaas top` frame: rates are diffs against the previous tick.
fn render_top(
    addr: &str,
    metrics: &MetricsAnswer,
    status: &StatusAnswer,
    prev: Option<&(MetricsAnswer, std::time::Instant)>,
) -> String {
    // Counter rate since the previous tick, in events/second.
    let rate = |name: &str| -> f64 {
        let current = metrics.counter(name).unwrap_or(0);
        match prev {
            Some((p, at)) => {
                let dt = at.elapsed().as_secs_f64().max(1e-9);
                current.saturating_sub(p.counter(name).unwrap_or(0)) as f64 / dt
            }
            None => 0.0,
        }
    };
    let gauge = |name: &str| metrics.gauge(name).unwrap_or(0);
    let mut out = format!(
        "indaas top — {addr}   uptime {}s   epoch {}   records {}   conns {}\n\n",
        metrics.uptime_secs,
        status.epoch,
        status.records,
        gauge(names::ACTIVE_CONNS),
    );
    out.push_str(&format!(
        "rates:   {:.1} req/s   {:.1} audits/s   {:.1} ingests/s   {:.1} pushes/s\n",
        rate(names::REQUESTS_TOTAL),
        rate(names::AUDITS_SIA_TOTAL) + rate(names::AUDITS_PIA_TOTAL),
        rate(names::MUTATIONS_TOTAL),
        rate(names::PUSH_AUDITS_TOTAL),
    ));
    out.push_str(&format!(
        "cache:   {:.0}% hit   {} entries      queue: {} waiting, {} running\n",
        status.hit_ratio * 100.0,
        status.cache_entries,
        gauge(names::SCHED_QUEUE_DEPTH),
        gauge(names::SCHED_JOBS_RUNNING),
    ));
    out.push_str(&format!(
        "events:  {} pushed   {} shed      subs: {}\n",
        status.pushed_events,
        metrics.counter(names::OUTBOX_SHED_TOTAL).unwrap_or(0),
        status.subscriptions,
    ));
    out.push_str(&format!(
        "loop:    {:.1} wakeups/s   {} conns registered   {} outbound bytes queued\n\n\
         stage latency (us):\n",
        rate(names::LOOP_WAKEUPS_TOTAL),
        gauge(names::CONN_REGISTERED),
        gauge(names::WRITE_QUEUE_DEPTH),
    ));
    for histo in &metrics.histos {
        let interesting = histo.name.starts_with(names::AUDIT_STAGE_PREFIX)
            || matches!(
                histo.name.as_str(),
                names::AUDIT_SIA_US
                    | names::AUDIT_PIA_US
                    | names::PUSH_LATENCY_US
                    | names::INGEST_US
                    | names::DISPATCH_US
                    | names::LOOP_READY_EVENTS
            );
        if !interesting || histo.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "  {:<28} n={:<7} p50<={:<9} p99<={}\n",
            histo.name, histo.count, histo.p50_us, histo.p99_us
        ));
    }
    out.push_str("\nrecent traces:\n");
    for trace in &metrics.traces {
        out.push_str(&render_trace(trace));
        out.push('\n');
    }
    out
}

fn cmd_ping(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:4914");
    let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    client.ping().map_err(|e| e.to_string())?;
    println!("pong from {addr}");
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let db = load_db(&flags)?;
    let servers: Vec<String> = flags
        .value("--servers")
        .ok_or("missing --servers S1,S2")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    let graph = build_fault_graph(&db, &BuildSpec::all("deployment", servers))
        .map_err(|e| e.to_string())?;
    print!("{}", to_dot(&graph, &[]));
    Ok(())
}
