//! INDaaS — Independence-as-a-Service.
//!
//! Umbrella crate re-exporting the whole INDaaS workspace: proactive
//! auditing of correlated-failure risk in redundant cloud deployments, a
//! Rust reproduction of Zhai et al., OSDI 2014.
//!
//! The typical entry points are:
//!
//! * [`core`] — the auditing agent/client orchestration layer,
//! * [`sia`] — structural independence auditing (fault graphs, risk groups),
//! * [`pia`] — private independence auditing (Jaccard, MinHash, P-SOP).

pub use indaas_bigint as bigint;
pub use indaas_core as core;
pub use indaas_crypto as crypto;
pub use indaas_deps as deps;
pub use indaas_faultinj as faultinj;
pub use indaas_federation as federation;
pub use indaas_graph as graph;
pub use indaas_obs as obs;
pub use indaas_pia as pia;
pub use indaas_service as service;
pub use indaas_sia as sia;
pub use indaas_simnet as simnet;
pub use indaas_topology as topology;
