//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the INDaaS benches compile against
//! (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, the
//! `criterion_group!`/`criterion_main!` macros) with a simple
//! median-of-samples timing loop instead of criterion's statistical
//! machinery. Output is one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque benchmark identifier, printed as the benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure under test; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Median wall time of one routine invocation, filled by `iter`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median of `samples` invocations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call, then timed samples.
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.elapsed = times[times.len() / 2];
    }
}

/// Top-level driver handed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!("bench: {label:<60} median {:>12.3?}", b.elapsed);
}

/// Declares a group of bench functions (criterion API compatibility).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("tiny/group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(42u32), &42u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
