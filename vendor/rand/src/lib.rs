//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the surface INDaaS consumes: [`Rng`] with
//! `next_u64`, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//! The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic for a given seed, which is all the reproduction's
//! seeded tests and samplers require.
//!
//! Unlike real rand there is a single trait: `RngCore` is an alias for
//! [`Rng`], so `next_u64` is reachable whichever name call sites
//! import (splitting them makes the method ambiguous on generic
//! `impl Rng` receivers).

/// Uniform bit source plus convenience helpers.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, bound)` (multiply-shift; bias is
    /// negligible for the bounds used here).
    fn gen_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Alias kept for call sites written against real rand's trait split.
pub use Rng as RngCore;

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_below_bound() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.gen_below(17) < 17);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mut_ref_is_also_an_rng() {
        fn take(mut rng: impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(5);
        let via_ref = take(&mut r);
        let direct = StdRng::seed_from_u64(5).next_u64();
        assert_eq!(via_ref, direct);
    }
}
