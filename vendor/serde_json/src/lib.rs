//! Offline stand-in for `serde_json`.
//!
//! Implements JSON text ⇄ [`serde::Value`] conversion plus the typed
//! entry points the workspace calls (`to_string`, `to_string_pretty`,
//! `from_str`, `from_slice`, `to_value`, `from_value`). Object keys are
//! emitted in sorted order (the value model is a `BTreeMap`), so output
//! is deterministic — the audit-result cache content-hashes it.

use std::fmt;

pub use serde::{Map, Number, Value};

/// Parse or serialization failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the value model this shim supports; the `Result`
/// mirrors the real serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real serde_json signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some("  "), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns the underlying deserialization error.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_json(value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Fails on malformed JSON, trailing input, or a type mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    from_value(&value)
}

/// Parses JSON bytes (must be UTF-8) into a typed value.
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or a type mismatch.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                // Keep integral floats readable ("1.0", not "1").
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        // JSON has no NaN/Infinity; real serde_json errors here, the shim
        // degrades to null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::Number(Number::NegInt(v)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-5", "1.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_output_indents() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]\n"));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("<garbage>").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let data: Vec<(String, f64)> = vec![("x".into(), 0.5)];
        let json = to_string(&data).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }
}
