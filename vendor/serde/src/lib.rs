//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! implements the subset of serde that INDaaS relies on: a
//! [`Serialize`]/[`Deserialize`] trait pair over an in-memory JSON
//! [`Value`] model, derive macros re-exported from `serde_derive`, and
//! impls for the std types the workspace serializes (integers, floats,
//! strings, options, vectors, arrays, tuples, maps and sets).
//!
//! Design notes:
//!
//! * Objects are backed by a `BTreeMap`, so serialization is
//!   *deterministic* — the service layer depends on this to content-hash
//!   audit specs for its result cache.
//! * Enum representation matches serde's default externally-tagged form:
//!   unit variants serialize as `"Variant"`, newtype variants as
//!   `{"Variant": value}` and struct variants as `{"Variant": {..}}`.
//! * Missing object keys deserialize as [`Value::Null`], which lets
//!   `Option` fields be omitted on the wire.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation: key-sorted for deterministic output.
pub type Map = BTreeMap<String, Value>;

/// A JSON value tree — the common data model both traits target.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key-sorted).
    Object(Map),
}

/// JSON number with integer fidelity preserved where possible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Exact conversion to `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Exact conversion to `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl Value {
    /// Object field lookup; anything absent or non-object yields `Null`.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from any printable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// `expected X, found Y` convenience constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// Prefixes the message with a field/variant context.
    pub fn context(self, ctx: &str) -> Self {
        Error::custom(format!("{ctx}: {}", self.message))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the JSON data model.
    fn to_json(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `self` back from the JSON data model.
    fn from_json(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), value)),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), value)),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        T::from_json(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_json(&self) -> Value {
        // Sort the rendered elements for deterministic output.
        let mut rendered: Vec<Value> = self.iter().map(Serialize::to_json).collect();
        rendered.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(rendered)
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_json(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected(
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for () {
    fn to_json(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_json(), Value::Null);
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_json(&5u32.to_json()).unwrap(),
            Some(5u32)
        );
    }

    #[test]
    fn tuple_and_map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), (1u64, 2u64));
        let v = m.to_json();
        let back: BTreeMap<String, (u64, u64)> = Deserialize::from_json(&v).unwrap();
        assert_eq!(back["a"], (1, 2));
    }

    #[test]
    fn array_roundtrip() {
        let a = [1u8, 2, 3];
        let back: [u8; 3] = Deserialize::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        assert!(<[u8; 2]>::from_json(&a.to_json()).is_err());
    }

    #[test]
    fn signed_numbers() {
        assert_eq!(i64::from_json(&(-3i64).to_json()).unwrap(), -3);
        assert!(u64::from_json(&(-3i64).to_json()).is_err());
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = bool::from_json(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
        assert!(err.to_string().contains("string"));
    }
}
