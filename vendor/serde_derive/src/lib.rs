//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in the build environment, so this crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` with
//! no dependency on `syn`/`quote`: the type definition is parsed
//! directly from the [`proc_macro::TokenStream`] and the impl is emitted
//! as source text.
//!
//! Supported shapes (everything the INDaaS workspace derives on):
//!
//! * structs with named fields, tuple/newtype structs, unit structs;
//! * enums with unit, newtype, tuple and struct variants
//!   (serde's default externally-tagged representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally out of
//! scope and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S(T, ...)` with the arity.
    TupleStruct(usize),
    /// `struct S { fields }`
    NamedStruct(Vec<String>),
    /// `enum E { variants }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility modifiers at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses the comma-separated named fields of a brace group, returning
/// the field names in declaration order.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma. Parens/brackets
        // are single Group tokens; only `<`/`>` need depth tracking.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the comma-separated elements of a paren group (tuple fields).
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim: generic type {name} is not supported by the vendored derive"
            ));
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for {other}")),
    };
    Ok(Parsed { name, shape })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

/// Derives `serde::Serialize` (vendored shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from("{ let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(String::from({f:?}), ::serde::Serialize::to_json(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m) }");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(String::from({vn:?})),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ let mut m = ::serde::Map::new(); \
                             m.insert(String::from({vn:?}), {payload}); \
                             ::serde::Value::Object(m) }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert(String::from({f:?}), ::serde::Serialize::to_json({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {inner} \
                             let mut m = ::serde::Map::new(); \
                             m.insert(String::from({vn:?}), ::serde::Value::Object(inner)); \
                             ::serde::Value::Object(m) }}\n",
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Derives `serde::Deserialize` (vendored shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::UnitStruct => format!(
            "match value {{ ::serde::Value::Null => Ok({name}), \
             other => Err(::serde::Error::expected(\"null ({name})\", other)) }}"
        ),
        Shape::TupleStruct(1) => format!(
            "Ok({name}(::serde::Deserialize::from_json(value)\
             .map_err(|e| e.context({name:?}))?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                .collect();
            format!(
                "match value {{ ::serde::Value::Array(items) if items.len() == {n} => \
                 Ok({name}({items})), \
                 other => Err(::serde::Error::expected(\"array of length {n} ({name})\", other)) }}",
                items = items.join(", "),
            )
        }
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json(value.get({f:?}))\
                     .map_err(|e| e.context(\"{name}.{f}\"))?,\n"
                ));
            }
            format!(
                "match value {{ ::serde::Value::Object(_) => Ok({name} {{ {inits} }}), \
                 other => Err(::serde::Error::expected(\"object ({name})\", other)) }}"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                        // Tolerate {"Variant": null} for unit variants too.
                        tagged_arms
                            .push_str(&format!("{vn:?} if inner.is_null() => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_json(inner)\
                             .map_err(|e| e.context(\"{name}::{vn}\"))?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => match inner {{ \
                             ::serde::Value::Array(items) if items.len() == {n} => \
                             Ok({name}::{vn}({items})), \
                             other => Err(::serde::Error::expected(\
                             \"array of length {n} ({name}::{vn})\", other)) }},\n",
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_json(inner.get({f:?}))\
                                 .map_err(|e| e.context(\"{name}::{vn}.{f}\"))?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => match inner {{ \
                             ::serde::Value::Object(_) => Ok({name}::{vn} {{ {inits} }}), \
                             other => Err(::serde::Error::expected(\
                             \"object ({name}::{vn})\", other)) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(\
                 format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().unwrap();\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(::serde::Error::custom(\
                 format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::Error::expected(\"enum {name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
