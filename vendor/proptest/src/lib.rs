//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable in the build environment, so this shim
//! implements the generation half of proptest that the INDaaS test
//! suites use: [`Strategy`] with `prop_map`/`prop_filter`, integer-range
//! and collection strategies, [`any`], and the [`proptest!`] /
//! `prop_assert*` macros. Failing cases are reported with their
//! generated seed; there is **no shrinking** — failures print the
//! assertion message and the case number instead.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many accepted cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Value generator. Unlike real proptest there is no value tree: a
/// strategy directly produces one value per call.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; panics (naming `reason`)
    /// if no candidate passes after many attempts.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?}: no candidate accepted", self.reason);
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.gen_below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.gen_below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for `T` (`any::<u64>()` style).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy producing any value of an unsigned integer type.
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

/// Strategy for `bool` (fair coin).
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::BTreeSet;
    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use super::Strategy;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len =
                self.size.start + rng.gen_below((self.size.end - self.size.start) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with size drawn from `size`
    /// (best effort when the element universe is small).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let want =
                self.size.start + rng.gen_below((self.size.end - self.size.start) as u64) as usize;
            let mut set = BTreeSet::new();
            // Bounded attempts: a small universe may not contain `want`
            // distinct values.
            for _ in 0..want.saturating_mul(20).max(32) {
                if set.len() >= want {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod test_runner {
    //! The driver the [`crate::proptest!`] macro expands to.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::{ProptestConfig, TestCaseError};

    /// Runs `case` until `config.cases` accepted executions.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case or when `prop_assume!` rejects
    /// too often.
    pub fn run(
        test_name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        // Deterministic per-test seed: hash of the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < config.cases {
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.cases.saturating_mul(64).max(1024) {
                        panic!(
                            "{test_name}: prop_assume! rejected {rejected} cases \
                             (accepted only {accepted}/{})",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {} failed: {msg}", accepted + 1);
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: `fn name(pattern in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($config:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        // One helper per invocation (use `proptest!` at most once per
        // module): the config directive cannot be expanded inside the
        // per-test repetition.
        #[allow(unused_mut, unused_assignments, dead_code)]
        fn __proptest_config() -> $crate::ProptestConfig {
            let mut config = $crate::ProptestConfig::default();
            $(config = $config;)?
            config
        }
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    stringify!($name),
                    &__proptest_config(),
                    |__proptest_rng| {
                        $(
                            let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);
                        )+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts `cond`, failing the case (not panicking in place) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("[{}:{}] {}", file!(), line!(), format!($($fmt)*)),
            ));
        }
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
}

/// Asserts two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u8..10, 2..6usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_filter_compose(x in (0u32..50).prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0)) {
            prop_assert!(x % 2 == 0 && x != 0);
            prop_assert_ne!(x, 1);
        }
    }

    mod failing {
        // No `#[test]` on the inner fn: it is invoked manually below.
        proptest! {
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }

        #[test]
        #[should_panic(expected = "case")]
        fn failing_property_panics() {
            always_fails();
        }
    }
}
