//! Common network dependency case study (§6.2.1, Figure 6a).
//!
//! Alice wants to replicate a service across two racks of her data center.
//! INDaaS audits every two-way rack deployment with the failure sampling
//! algorithm and size-based ranking, counts how many deployments avoid
//! unexpected risk groups, and — assuming every network device fails with
//! probability 0.1 — confirms the chosen deployment also minimizes the
//! outage probability.
//!
//! Run with: `cargo run --release --example datacenter_audit`

use indaas::core::{AuditSpec, AuditingAgent, CandidateDeployment, RankingMetric, RgAlgorithm};
use indaas::deps::{DepDb, FailureProbModel};
use indaas::topology::BensonDatacenter;

fn main() {
    let dc = BensonDatacenter::new();
    let agent = AuditingAgent::new(DepDb::from_records(dc.network_records()));

    // All C(20, 2) = 190 two-way deployments over the audited racks.
    let racks = dc.audited_racks();
    let mut candidates = Vec::new();
    for (i, &a) in racks.iter().enumerate() {
        for &b in &racks[i + 1..] {
            candidates.push(CandidateDeployment::replicated(
                format!("Rack {a} + Rack {b}"),
                [dc.server_name(a), dc.server_name(b)],
            ));
        }
    }
    println!(
        "auditing {} two-way redundancy deployments...",
        candidates.len()
    );

    // Failure sampling (the paper ran 10^6 rounds; 10^4 suffices at this
    // scale) with size-based ranking.
    let spec = AuditSpec {
        algorithm: RgAlgorithm::Sampling {
            rounds: 10_000,
            fail_prob: 0.5,
            seed: 2014,
            threads: 1,
        },
        ..AuditSpec::sia_size_based(candidates.clone())
    };
    let report = agent.audit_sia(&spec).expect("audit succeeds");

    let clean = report
        .deployments
        .iter()
        .filter(|d| d.unexpected_rgs == 0)
        .count();
    println!(
        "{} of {} deployments have no unexpected risk groups ({:.0}% chance for a \
         random pick to avoid correlated failures)",
        clean,
        report.deployments.len(),
        100.0 * clean as f64 / report.deployments.len() as f64
    );
    let best = report.best().expect("candidates were audited");
    println!("suggested deployment: {}", best.name);
    assert_eq!(best.unexpected_rgs, 0);

    // Cross-check with failure probabilities: all devices at 0.1, as in the
    // paper's closing analysis of this case study.
    let prob_spec = AuditSpec {
        algorithm: RgAlgorithm::Minimal { max_order: Some(4) },
        metric: RankingMetric::Probability { default_prob: 0.1 },
        prob_model: Some(FailureProbModel::new(0.1)),
        ..AuditSpec::sia_size_based(candidates)
    };
    let prob_report = agent.audit_sia(&prob_spec).expect("audit succeeds");
    let prob_best = prob_report.best().expect("candidates were audited");
    println!(
        "lowest-failure-probability deployment: {} (Pr(outage) = {:.4})",
        prob_best.name,
        prob_best.failure_probability.expect("probability metric")
    );
    assert_eq!(
        prob_best.unexpected_rgs, 0,
        "the probability winner must also be free of unexpected RGs"
    );
}
