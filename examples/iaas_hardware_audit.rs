//! Common hardware dependency case study (§6.2.2, Figure 6b).
//!
//! A small OpenStack-style IaaS cloud runs a Riak storage service
//! "redundantly" on two VMs — which the placement policy put on the same
//! physical server. The SIA audit (minimal RG algorithm + size-based
//! ranking) surfaces the shared server as a size-1 risk group; following
//! the report's suggestion and re-deploying on separate servers removes
//! every unexpected risk group.
//!
//! Run with: `cargo run --example iaas_hardware_audit`

use indaas::core::{AuditSpec, AuditingAgent, CandidateDeployment};
use indaas::deps::DepDb;
use indaas::topology::IaasLab;

fn main() {
    // The lab cloud places 8 VMs with the "random among least loaded"
    // policy; the big server soaks up everything, including both Riak VMs.
    let lab = IaasLab::new(2014);
    let (vm7, vm8) = (lab.vm_name(7), lab.vm_name(8));
    println!(
        "placement: {} on {}, {} on {}",
        vm7,
        lab.host_of_vm(7),
        vm8,
        lab.host_of_vm(8)
    );

    let agent = AuditingAgent::new(DepDb::from_records(lab.records()));

    // Audit the deployed Riak configuration: network + hardware categories,
    // as in the paper's case study.
    let spec = AuditSpec {
        software: false,
        ..AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
            "Riak on VM7 + VM8",
            [vm7.clone(), vm8.clone()],
        )])
    };
    let report = agent.audit_sia(&spec).expect("audit succeeds");
    let audit = &report.deployments[0];
    println!("\ntop risk groups of the deployed configuration:");
    for (i, rg) in audit.ranked_rgs.iter().take(4).enumerate() {
        println!("  RG{}: {{{}}}", i + 1, rg.events.join(" & "));
    }
    assert!(
        audit.ranked_rgs[0].size == 1,
        "the shared host must rank first"
    );
    println!(
        "\n{} unexpected risk group(s) — the redundant VMs share {}",
        audit.unexpected_rgs, audit.ranked_rgs[0].events[0]
    );

    // Follow the report: re-deploy the second Riak VM on another server.
    let mut placement = vec![1usize; 8];
    placement[6] = 1; // VM7 stays on Server2.
    placement[7] = 2; // VM8 moves to Server3 — the report's suggestion.
    let fixed = IaasLab::with_placement(placement);
    let agent = AuditingAgent::new(DepDb::from_records(fixed.records()));
    let spec = AuditSpec {
        software: false,
        ..AuditSpec::sia_size_based(vec![CandidateDeployment::replicated(
            "Riak on Server2 + Server3",
            [fixed.vm_name(7), fixed.vm_name(8)],
        )])
    };
    let report = agent.audit_sia(&spec).expect("audit succeeds");
    let audit = &report.deployments[0];
    println!("\nafter re-deployment:");
    for (i, rg) in audit.ranked_rgs.iter().take(4).enumerate() {
        println!("  RG{}: {{{}}}", i + 1, rg.events.join(" & "));
    }
    assert_eq!(
        audit.unexpected_rgs, 0,
        "separate hosts leave no single point of failure"
    );
    println!("no unexpected risk groups remain — redundancy is now effective");
}
