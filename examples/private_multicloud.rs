//! Common software dependency case study — private multi-cloud auditing
//! (§6.2.3, Figure 6c, Table 2).
//!
//! Alice wants a reliable storage deployment spanning multiple cloud
//! providers. Four clouds offer key-value stores (Riak, MongoDB, Redis,
//! CouchDB); none will reveal its software stack. PIA runs the P-SOP
//! private set-intersection-cardinality protocol over each candidate
//! combination and ranks the deployments by Jaccard similarity — Alice
//! learns only the ranking, the providers reveal nothing in plaintext.
//!
//! Run with: `cargo run --release --example private_multicloud`

use indaas::pia::report::render_ranking;
use indaas::pia::{normalize::normalize_set, rank_deployments, PsopConfig};
use indaas::topology::clouds::cloud_stacks;

fn main() {
    // Each provider normalizes its own component set locally (§4.2.3) —
    // shared packages must hash identically everywhere.
    let providers: Vec<(String, Vec<String>)> = cloud_stacks()
        .into_iter()
        .map(|stack| {
            let normalized = normalize_set(stack.packages.iter().map(String::as_str));
            println!(
                "{} ({}) holds {} normalized components",
                stack.name,
                stack.store,
                normalized.len()
            );
            (format!("{} [{}]", stack.name, stack.store), normalized)
        })
        .collect();

    let config = PsopConfig::default();

    // Table 2, upper half: all two-way redundancy deployments.
    let two_way = rank_deployments(&providers, 2, None, &config);
    println!("\n{}", render_ranking(2, &two_way));

    // Table 2, lower half: all three-way redundancy deployments.
    let three_way = rank_deployments(&providers, 3, None, &config);
    println!("{}", render_ranking(3, &three_way));

    // The two Erlang-based stores share their runtime: that pair must rank
    // least independent.
    let worst = two_way.last().expect("six pairs were ranked");
    assert!(
        worst.providers.iter().any(|p| p.contains("Riak"))
            && worst.providers.iter().any(|p| p.contains("CouchDB")),
        "Riak and CouchDB share the Erlang runtime and must rank last, got {:?}",
        worst.providers
    );
    println!(
        "recommended 2-way deployment: {} (Jaccard {:.4})",
        two_way[0].providers.join(" & "),
        two_way[0].jaccard
    );
    println!(
        "recommended 3-way deployment: {} (Jaccard {:.4})",
        three_way[0].providers.join(" & "),
        three_way[0].jaccard
    );
}
