//! What-if analysis: the Heartbleed scenario (§3 of the paper cites
//! Heartbleed as the canonical software common-mode failure).
//!
//! A CVE drops for `libssl1.0.0-1.0.1f`. Which of our redundant
//! deployments would a coordinated exploitation (or an emergency fleet-
//! wide patch reboot) take down? INDaaS answers from the dependency data
//! it already holds — no new collection required.
//!
//! Run with: `cargo run --example heartbleed_whatif`

use indaas::core::{AuditSpec, AuditingAgent, CandidateDeployment};
use indaas::deps::{parse_records, DepDb};

fn main() {
    // Three stores: two link the vulnerable OpenSSL, one (Redis) does not.
    let records = parse_records(
        r#"
        <pgm="Riak1" hw="S1" dep="erlang-base,libc6,libssl1.0.0-1.0.1f"/>
        <pgm="Riak2" hw="S2" dep="erlang-base,libc6,libssl1.0.0-1.0.1f"/>
        <pgm="CouchDB1" hw="S3" dep="erlang-base,libc6,libssl1.0.0-1.0.1f"/>
        <pgm="Redis1" hw="S4" dep="libc6,libjemalloc1"/>
        <pgm="Redis2" hw="S5" dep="libc6,libjemalloc1"/>
        <hw="S1" type="Disk" dep="S1-disk"/>
        <hw="S2" type="Disk" dep="S2-disk"/>
        <hw="S3" type="Disk" dep="S3-disk"/>
        <hw="S4" type="Disk" dep="S4-disk"/>
        <hw="S5" type="Disk" dep="S5-disk"/>
    "#,
    )
    .expect("records parse");
    let agent = AuditingAgent::new(DepDb::from_records(records));

    let spec = AuditSpec::sia_size_based(vec![
        CandidateDeployment::replicated("riak-pair (S1+S2)", ["S1", "S2"]),
        CandidateDeployment::replicated("riak+couch (S1+S3)", ["S1", "S3"]),
        CandidateDeployment::replicated("riak+redis (S1+S4)", ["S1", "S4"]),
        CandidateDeployment::replicated("redis-pair (S4+S5)", ["S4", "S5"]),
    ]);

    println!("CVE-2014-0160 disclosed: libssl1.0.0-1.0.1f considered failed\n");
    let outcomes = agent
        .what_if(&spec, &["libssl1.0.0-1.0.1f"])
        .expect("deployments audit");
    for o in &outcomes {
        println!(
            "{:<22} -> {}",
            o.deployment,
            if o.outage { "OUTAGE" } else { "survives" }
        );
    }

    // Every all-OpenSSL deployment dies; mixing in an OpenSSL-free replica
    // survives. The ordinary audit would have flagged this beforehand:
    // {libssl1.0.0-1.0.1f} is a size-1 risk group of the doomed pairs.
    let by_name = |n: &str| {
        outcomes
            .iter()
            .find(|o| o.deployment.starts_with(n))
            .unwrap()
    };
    assert!(by_name("riak-pair").outage);
    assert!(by_name("riak+couch").outage);
    assert!(!by_name("riak+redis").outage);
    assert!(!by_name("redis-pair").outage);

    let report = agent.audit_sia(&spec).expect("audit succeeds");
    let doomed = report
        .deployments
        .iter()
        .find(|d| d.name.starts_with("riak-pair"))
        .unwrap();
    assert!(doomed
        .ranked_rgs
        .iter()
        .any(|rg| rg.events == vec!["libssl1.0.0-1.0.1f".to_string()]));
    println!(
        "\nthe proactive audit already ranks {{libssl1.0.0-1.0.1f}} as an unexpected\n\
         risk group of the all-OpenSSL pairs — INDaaS heads the outage off."
    );
}
