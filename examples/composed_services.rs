//! Aggregate dependency graphs across services (§4.1.1, TR-1479) — the
//! Amazon EBS scenario from the paper's introduction.
//!
//! An application runs "redundantly" on two EC2 instances; each instance
//! depends on the EBS storage service and the ELB load-balancing service.
//! Unbeknownst to the application's operator, both availability zones'
//! EBS deployments route control traffic through one EBS control-plane
//! server — the single common dependency that took down US-East in the
//! documented 2012 event [4]. Composing the per-service fault graphs makes
//! the hidden dependency visible *before* the outage.
//!
//! Run with: `cargo run --example composed_services`

use indaas::graph::detail::{component_sets_to_graph, ComponentSet};
use indaas::graph::{compose, to_dot, Gate};
use indaas::sia::{minimal_risk_groups, DeploymentAudit, MinimalConfig};

fn main() {
    // Per-service dependency graphs, as each provider team would model
    // them. EBS in both zones shares the control-plane server.
    let ebs_zone_a = component_sets_to_graph(&[ComponentSet::new(
        "EBS-zone-a",
        ["ebs-vol-server-a1", "ebs-control-plane", "zone-a-power"],
    )])
    .expect("service graph builds");
    let ebs_zone_b = component_sets_to_graph(&[ComponentSet::new(
        "EBS-zone-b",
        ["ebs-vol-server-b1", "ebs-control-plane", "zone-b-power"],
    )])
    .expect("service graph builds");
    let elb_zone_a = component_sets_to_graph(&[ComponentSet::new(
        "ELB-zone-a",
        ["elb-node-a", "zone-a-power"],
    )])
    .expect("service graph builds");
    let elb_zone_b = component_sets_to_graph(&[ComponentSet::new(
        "ELB-zone-b",
        ["elb-node-b", "zone-b-power"],
    )])
    .expect("service graph builds");

    // Each EC2 instance needs BOTH its zone's EBS and ELB (OR composition:
    // either service failing fails the instance).
    let instance_a = compose("EC2-instance-a", Gate::Or, &[&ebs_zone_a, &elb_zone_a])
        .expect("composition succeeds");
    let instance_b = compose("EC2-instance-b", Gate::Or, &[&ebs_zone_b, &elb_zone_b])
        .expect("composition succeeds");

    // The application replicates across the two instances (AND: both must
    // fail for an outage).
    let app = compose("application", Gate::And, &[&instance_a, &instance_b])
        .expect("composition succeeds");

    let rgs = minimal_risk_groups(&app, &MinimalConfig::default());
    let audit = DeploymentAudit::size_based("application", &rgs, &app, 2, None);
    println!("minimal risk groups of the composed application:");
    for rg in &audit.ranked_rgs {
        println!("  {{{}}}", rg.events.join(" & "));
    }
    println!("{} unexpected risk group(s)", audit.unexpected_rgs);

    // The audit must surface the shared EBS control plane as a size-1 RG.
    assert_eq!(
        audit.ranked_rgs[0].events,
        vec!["ebs-control-plane".to_string()]
    );
    assert_eq!(audit.unexpected_rgs, 1);
    println!("\nthe hidden cross-zone dependency is 'ebs-control-plane' — exactly");
    println!("the kind of common dependency behind the 2012 US-East EBS event");

    // Export the composed graph for inspection.
    let shared = app
        .basic_by_name("ebs-control-plane")
        .expect("component exists");
    let dot = to_dot(&app, &[shared]);
    println!("\nGraphviz DOT of the composed fault graph (shared RG highlighted):\n");
    println!("{dot}");
}
