//! Quickstart: audit a small redundant storage deployment end to end.
//!
//! Reproduces the running example of §3 (Figures 2 and 3): two servers
//! behind a shared top-of-rack switch, redundant core routers, per-server
//! hardware, and software stacks sharing `libc6`. The audit surfaces the
//! shared switch and the shared C library as *unexpected risk groups*.
//!
//! Run with: `cargo run --example quickstart`

use indaas::core::{AuditSpec, AuditingAgent, CandidateDeployment};
use indaas::deps::{parse_records, DepDb};

fn main() {
    // Step 3 of the workflow: dependency data, as collected by the
    // acquisition modules into the Table-1 format (Figure 3 verbatim).
    let collected = r#"
        # Network dependencies of S1 and S2:
        <src="S1" dst="Internet" route="ToR1,Core1"/>
        <src="S1" dst="Internet" route="ToR1,Core2"/>
        <src="S2" dst="Internet" route="ToR1,Core1"/>
        <src="S2" dst="Internet" route="ToR1,Core2"/>
        # A third server in another rack, for comparison:
        <src="S3" dst="Internet" route="ToR2,Core1"/>
        <src="S3" dst="Internet" route="ToR2,Core2"/>
        # Hardware dependencies:
        <hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>
        <hw="S1" type="Disk" dep="S1-SED900"/>
        <hw="S2" type="CPU" dep="S2-Intel(R)X5550@2.6GHz"/>
        <hw="S2" type="Disk" dep="S2-SED900"/>
        <hw="S3" type="CPU" dep="S3-Intel(R)X5550@2.6GHz"/>
        <hw="S3" type="Disk" dep="S3-SED900"/>
        # Software dependencies:
        <pgm="QueryEngine1" hw="S1" dep="libc6,libgcc1"/>
        <pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>
        <pgm="QueryEngine2" hw="S2" dep="libc6,libgcc1"/>
        <pgm="Riak2" hw="S2" dep="libc6,libsvn1"/>
        <pgm="QueryEngine3" hw="S3" dep="libc6,libgcc1"/>
        <pgm="Riak3" hw="S3" dep="libc6,libsvn1"/>
    "#;
    let records = parse_records(collected).expect("well-formed dependency records");
    println!("collected {} dependency records", records.len());

    // The auditing agent ingests the records into DepDB.
    let agent = AuditingAgent::new(DepDb::from_records(records));

    // Step 1: the client asks which two-way deployment is most independent.
    let spec = AuditSpec::sia_size_based(vec![
        CandidateDeployment::replicated("S1 + S2 (same rack)", ["S1", "S2"]),
        CandidateDeployment::replicated("S1 + S3 (cross rack)", ["S1", "S3"]),
    ]);

    // Steps 2-6: the agent builds fault graphs, enumerates minimal risk
    // groups, ranks them by size and returns the report.
    let report = agent.audit_sia(&spec).expect("audit succeeds");
    println!("\n{}", report.render());

    let best = report.best().expect("two candidates were audited");
    println!("most independent deployment: {}", best.name);
    assert_eq!(best.name, "S1 + S3 (cross rack)");

    // The same-rack pair has unexpected (smaller-than-replication) RGs:
    // the shared ToR and — for both pairs! — the shared libc6.
    for d in &report.deployments {
        println!(
            "{}: {} risk groups, {} unexpected",
            d.name,
            d.ranked_rgs.len(),
            d.unexpected_rgs
        );
    }
}
