//! An in-process multi-party message network with byte accounting, and the
//! [`Transport`] abstraction federated deployments implement over TCP.
//!
//! The PIA protocols (P-SOP and the Kissner–Song baseline) are multi-party:
//! proxies operated by different cloud providers exchange encrypted
//! datasets over the network. This substrate runs those protocols entirely
//! in-process while faithfully accounting for the *traffic* each party
//! sends — which is exactly what Figure 8(a) of the paper measures — and
//! optionally converting bytes to an estimated wall-clock transfer time via
//! a simple link model.
//!
//! The protocol engines in `indaas-pia` are written against the
//! [`Transport`] trait, so the same round structure runs either fully
//! in-process (every party driven by one loop over a [`SimNetwork`]) or
//! genuinely distributed (each `indaas serve` daemon holding a one-party
//! transport view wired over its peer sessions — see `indaas-federation`).
//!
//! # Examples
//!
//! ```
//! use indaas_simnet::SimNetwork;
//!
//! let mut net = SimNetwork::new(3);
//! net.send(0, 1, vec![0u8; 100]);
//! assert_eq!(net.recv(1).unwrap().payload.len(), 100);
//! assert_eq!(net.stats().sent_bytes(0), 100);
//! assert_eq!(net.stats().recv_bytes(1), 100);
//! ```

use std::collections::VecDeque;

/// Index of a party on the network.
pub type PartyId = usize;

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending party.
    pub from: PartyId,
    /// Receiving party.
    pub to: PartyId,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Per-party traffic counters.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    sent: Vec<u64>,
    received: Vec<u64>,
    messages: u64,
}

impl TrafficStats {
    /// An all-zero counter set for `parties` endpoints — public so
    /// out-of-process transports (which observe only their own party's
    /// traffic) can account with the same arithmetic the simulator uses.
    pub fn new(parties: usize) -> Self {
        TrafficStats {
            sent: vec![0; parties],
            received: vec![0; parties],
            messages: 0,
        }
    }

    /// Reassembles stats from per-party counters gathered out of process
    /// (a federation coordinator merging each daemon's own accounting).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length.
    pub fn from_parts(sent: Vec<u64>, received: Vec<u64>, messages: u64) -> Self {
        assert_eq!(sent.len(), received.len(), "per-party counters must align");
        TrafficStats {
            sent,
            received,
            messages,
        }
    }

    /// Records one `bytes`-byte message from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either party id is out of range.
    pub fn record(&mut self, from: PartyId, to: PartyId, bytes: u64) {
        self.sent[from] += bytes;
        self.received[to] += bytes;
        self.messages += 1;
    }

    /// Bytes sent by `party`.
    pub fn sent_bytes(&self, party: PartyId) -> u64 {
        self.sent[party]
    }

    /// Bytes received by `party`.
    pub fn recv_bytes(&self, party: PartyId) -> u64 {
        self.received[party]
    }

    /// Total bytes sent across all parties.
    pub fn total_bytes(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Maximum bytes sent by any single party — the per-provider bandwidth
    /// overhead Figure 8(a) plots.
    pub fn max_sent_bytes(&self) -> u64 {
        self.sent.iter().copied().max().unwrap_or(0)
    }

    /// Number of messages delivered.
    pub fn message_count(&self) -> u64 {
        self.messages
    }
}

/// A simple link model for converting bytes into estimated transfer time.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Fixed per-message latency in microseconds.
    pub latency_us: f64,
    /// Link throughput in bytes per microsecond (e.g. 125.0 = 1 Gbit/s).
    pub bytes_per_us: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        // 0.5 ms latency, 1 Gbit/s: a conservative intra-datacenter WAN.
        LinkModel {
            latency_us: 500.0,
            bytes_per_us: 125.0,
        }
    }
}

impl LinkModel {
    /// Estimated microseconds to transfer one message of `bytes` bytes.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        self.latency_us + bytes as f64 / self.bytes_per_us
    }
}

/// The in-process network: per-party FIFO inboxes plus traffic accounting.
#[derive(Clone, Debug)]
pub struct SimNetwork {
    inboxes: Vec<VecDeque<Message>>,
    stats: TrafficStats,
}

impl SimNetwork {
    /// Creates a network with `parties` endpoints (ids `0..parties`).
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "network needs at least one party");
        SimNetwork {
            inboxes: (0..parties).map(|_| VecDeque::new()).collect(),
            stats: TrafficStats::new(parties),
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.inboxes.len()
    }

    /// Sends `payload` from `from` to `to` (queued until received).
    ///
    /// # Panics
    ///
    /// Panics if either party id is out of range.
    pub fn send(&mut self, from: PartyId, to: PartyId, payload: Vec<u8>) {
        assert!(
            from < self.parties() && to < self.parties(),
            "party out of range"
        );
        self.stats.record(from, to, payload.len() as u64);
        self.inboxes[to].push_back(Message { from, to, payload });
    }

    /// Receives the oldest pending message for `to`, if any.
    pub fn recv(&mut self, to: PartyId) -> Option<Message> {
        self.inboxes[to].pop_front()
    }

    /// Receives, panicking if the protocol got its message order wrong.
    ///
    /// # Panics
    ///
    /// Panics when no message is pending — a protocol bug.
    pub fn recv_expect(&mut self, to: PartyId) -> Message {
        self.recv(to)
            .unwrap_or_else(|| panic!("party {to} expected a message but inbox is empty"))
    }

    /// Pending message count for a party.
    pub fn pending(&self, to: PartyId) -> usize {
        self.inboxes[to].len()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Estimated total transfer time under `model`, treating messages as
    /// sequential (an upper bound; ring protocols are in fact sequential).
    pub fn estimated_transfer_us(&self, model: &LinkModel) -> f64 {
        model.latency_us * self.stats.messages as f64
            + self.stats.total_bytes() as f64 / model.bytes_per_us
    }
}

/// Why a transport operation failed.
///
/// The in-process [`SimNetwork`] only ever reports [`TransportError::Protocol`]
/// (a driver bug: receiving where nothing is pending, or addressing a party
/// that does not exist). Real transports additionally surface peers that
/// disappear and per-round deadlines that expire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer hung up or the underlying stream failed.
    Closed(String),
    /// The per-round deadline expired before the message arrived.
    Timeout(String),
    /// The protocol itself was violated (bad addressing, framing, order).
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed(m) => write!(f, "transport closed: {m}"),
            TransportError::Timeout(m) => write!(f, "round deadline exceeded: {m}"),
            TransportError::Protocol(m) => write!(f, "transport protocol error: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A multi-party message substrate the PIA protocol engines run over.
///
/// Parties are dense indices `0..parties()`. An implementation either
/// hosts *every* party (the [`SimNetwork`]: one driver loop plays the
/// whole ring) or exactly *one* party (a federated daemon: `send` is only
/// valid with `from` equal to the local party, `recv` only for it), in
/// which case out-of-scope addressing is a [`TransportError::Protocol`].
///
/// Implementations must account every delivered payload in [`stats`] so
/// the paper's Figure 8 bandwidth cross-checks hold identically on any
/// substrate.
///
/// [`stats`]: Transport::stats
pub trait Transport {
    /// Number of parties addressable on this transport.
    fn parties(&self) -> usize;

    /// Sends `payload` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Protocol`] for out-of-range or (on a one-party
    /// view) non-local `from`; [`TransportError::Closed`] if the peer link
    /// is gone.
    fn send(&mut self, from: PartyId, to: PartyId, payload: Vec<u8>) -> Result<(), TransportError>;

    /// Receives the next message addressed to `to`, blocking (on real
    /// transports) until it arrives or the round deadline expires.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] on deadline expiry,
    /// [`TransportError::Closed`] on peer loss, and
    /// [`TransportError::Protocol`] when the driver's round structure is
    /// wrong (simulated inbox empty, non-local `to`).
    fn recv(&mut self, to: PartyId) -> Result<Message, TransportError>;

    /// Traffic counters accumulated so far.
    fn stats(&self) -> &TrafficStats;
}

impl Transport for SimNetwork {
    fn parties(&self) -> usize {
        SimNetwork::parties(self)
    }

    fn send(&mut self, from: PartyId, to: PartyId, payload: Vec<u8>) -> Result<(), TransportError> {
        if from >= SimNetwork::parties(self) || to >= SimNetwork::parties(self) {
            return Err(TransportError::Protocol(format!(
                "party out of range: {from} -> {to} on a {}-party network",
                SimNetwork::parties(self)
            )));
        }
        SimNetwork::send(self, from, to, payload);
        Ok(())
    }

    fn recv(&mut self, to: PartyId) -> Result<Message, TransportError> {
        if to >= SimNetwork::parties(self) {
            return Err(TransportError::Protocol(format!(
                "party {to} out of range on a {}-party network",
                SimNetwork::parties(self)
            )));
        }
        SimNetwork::recv(self, to).ok_or_else(|| {
            TransportError::Protocol(format!("party {to} expected a message but inbox is empty"))
        })
    }

    fn stats(&self) -> &TrafficStats {
        SimNetwork::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery_per_party() {
        let mut net = SimNetwork::new(2);
        net.send(0, 1, vec![1]);
        net.send(0, 1, vec![2]);
        assert_eq!(net.recv(1).unwrap().payload, vec![1]);
        assert_eq!(net.recv(1).unwrap().payload, vec![2]);
        assert!(net.recv(1).is_none());
    }

    #[test]
    fn traffic_accounting() {
        let mut net = SimNetwork::new(3);
        net.send(0, 1, vec![0; 10]);
        net.send(1, 2, vec![0; 20]);
        net.send(2, 0, vec![0; 30]);
        let s = net.stats();
        assert_eq!(s.sent_bytes(0), 10);
        assert_eq!(s.sent_bytes(1), 20);
        assert_eq!(s.sent_bytes(2), 30);
        assert_eq!(s.recv_bytes(0), 30);
        assert_eq!(s.total_bytes(), 60);
        assert_eq!(s.max_sent_bytes(), 30);
        assert_eq!(s.message_count(), 3);
    }

    #[test]
    fn self_send_allowed() {
        let mut net = SimNetwork::new(1);
        net.send(0, 0, vec![9; 5]);
        assert_eq!(net.recv_expect(0).payload, vec![9; 5]);
    }

    #[test]
    fn pending_counts() {
        let mut net = SimNetwork::new(2);
        assert_eq!(net.pending(1), 0);
        net.send(0, 1, vec![1]);
        net.send(0, 1, vec![2]);
        assert_eq!(net.pending(1), 2);
        net.recv(1);
        assert_eq!(net.pending(1), 1);
    }

    #[test]
    #[should_panic(expected = "party out of range")]
    fn out_of_range_send_panics() {
        let mut net = SimNetwork::new(2);
        net.send(0, 5, vec![]);
    }

    #[test]
    #[should_panic(expected = "inbox is empty")]
    fn recv_expect_panics_when_empty() {
        let mut net = SimNetwork::new(1);
        let _ = net.recv_expect(0);
    }

    #[test]
    fn transport_trait_mirrors_inherent_api() {
        let mut net = SimNetwork::new(2);
        Transport::send(&mut net, 0, 1, vec![7; 4]).unwrap();
        let msg = Transport::recv(&mut net, 1).unwrap();
        assert_eq!(msg.payload, vec![7; 4]);
        assert_eq!(Transport::stats(&net).sent_bytes(0), 4);
        // Errors instead of panics through the trait.
        assert!(matches!(
            Transport::send(&mut net, 0, 9, vec![]),
            Err(TransportError::Protocol(_))
        ));
        assert!(matches!(
            Transport::recv(&mut net, 1),
            Err(TransportError::Protocol(_))
        ));
        assert!(matches!(
            Transport::recv(&mut net, 5),
            Err(TransportError::Protocol(_))
        ));
    }

    #[test]
    fn stats_from_parts_round_trips() {
        let s = TrafficStats::from_parts(vec![10, 20], vec![20, 10], 2);
        assert_eq!(s.sent_bytes(0), 10);
        assert_eq!(s.recv_bytes(1), 10);
        assert_eq!(s.total_bytes(), 30);
        assert_eq!(s.message_count(), 2);
        let mut c = TrafficStats::new(3);
        c.record(0, 2, 5);
        c.record(2, 0, 7);
        assert_eq!(c.sent_bytes(2), 7);
        assert_eq!(c.recv_bytes(2), 5);
        assert_eq!(c.message_count(), 2);
    }

    #[test]
    fn link_model_estimates() {
        let m = LinkModel {
            latency_us: 100.0,
            bytes_per_us: 10.0,
        };
        assert_eq!(m.transfer_us(1000), 200.0);
        let mut net = SimNetwork::new(2);
        net.send(0, 1, vec![0; 1000]);
        assert_eq!(net.estimated_transfer_us(&m), 200.0);
    }
}
