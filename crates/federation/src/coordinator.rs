//! The auditing agent of a federated P-SOP run.
//!
//! The coordinator plays party `k`: it instructs each provider daemon to
//! run its ring rounds (`FederateStart`), collects the fully-encrypted
//! lists (`FederateDone`), counts equal ciphertexts, and reassembles the
//! per-party traffic accounting — the same numbers a single-process
//! [`indaas_simnet::SimNetwork`] run of the identical topology reports,
//! which is exactly how the e2e suite cross-checks Figure 8.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use indaas_obs::TraceContext;
use indaas_pia::{
    count_final_lists, outcome_from_counts, PsopConfig, PsopOutcome, CIPHERTEXT_BYTES,
};
use indaas_service::proto::{decode_payload, Request, Response};
use indaas_service::{Client, ClientError};
use indaas_simnet::TrafficStats;

use crate::error::FederationError;

/// What one daemon reported back for its party.
#[derive(Clone, Debug)]
struct PartyReport {
    payload: Vec<u8>,
    sent_bytes: u64,
    recv_bytes: u64,
    sent_msgs: u64,
    wire_sent_bytes: u64,
}

/// One party that did not complete its rounds, as reported in a
/// degraded [`FederatedOutcome`].
#[derive(Clone, Debug)]
pub struct PartyFailure {
    /// Ring index of the failed party.
    pub index: usize,
    /// The daemon's address, as configured.
    pub peer: String,
    /// What went wrong, human-readable.
    pub error: String,
    /// `true` when the daemon was alive and *answered* with a failure
    /// (a refusal, an empty database, a round deadline); `false` when
    /// it was unreachable — connect failure, dropped connection, or no
    /// answer at all (the "daemon died mid-round" class).
    pub reachable: bool,
}

/// Outcome of a federated private overlap audit.
///
/// A run where every party completed carries the full [`PsopOutcome`];
/// when a strict *minority* of daemons died mid-round the coordinator
/// returns a **degraded** outcome instead of an all-or-nothing error —
/// `psop` is `None` (the counting step needs every final list),
/// `parties_failed` names each party that did not complete and whether
/// it was reachable, and the surviving ring state is preserved for the
/// caller to report. [`FederatedOutcome::degraded`] distinguishes the
/// two shapes.
#[derive(Clone, Debug)]
pub struct FederatedOutcome {
    /// Session id the parties ran under.
    pub session: u64,
    /// The P-SOP result with reassembled per-party traffic (parties
    /// `0..k` are the daemons in peer order, party `k` the coordinator).
    /// `None` in a degraded outcome: a partial ring cannot produce the
    /// intersection/union counts.
    pub psop: Option<PsopOutcome>,
    /// Parties that failed, in ring order. Empty on a clean run.
    pub parties_failed: Vec<PartyFailure>,
    /// Bytes each provider daemon actually wrote to its ring successor,
    /// framing included, in peer order. Unlike `psop.traffic` (protocol
    /// payload, identical whatever the framing), this is the number the
    /// binary frame encoding halves versus v1 hex lines.
    pub party_wire_bytes: Vec<u64>,
    /// The trace every party's spans were recorded under: each
    /// `FederateStart` carried a child of this root, so
    /// `indaas trace <trace_id>` against the ring daemons stitches the
    /// whole audit into one tree.
    pub trace: TraceContext,
}

impl FederatedOutcome {
    /// Whether this is a degraded (partial-failure) outcome: at least
    /// one party failed and no combined P-SOP result exists.
    pub fn degraded(&self) -> bool {
        !self.parties_failed.is_empty()
    }
}

/// Drives the round structure of a multi-daemon P-SOP exchange.
pub struct FederationCoordinator {
    peers: Vec<String>,
    config: PsopConfig,
    round_timeout: Duration,
}

impl FederationCoordinator {
    /// A coordinator over `peers` (ring order; at least two), with the
    /// default P-SOP configuration and a 10-second round deadline.
    pub fn new(peers: impl IntoIterator<Item = String>) -> Self {
        FederationCoordinator {
            peers: peers.into_iter().collect(),
            config: PsopConfig::default(),
            round_timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the P-SOP configuration (seed, multiset handling).
    #[must_use]
    pub fn with_config(mut self, config: PsopConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the per-round deadline sent to every daemon.
    #[must_use]
    pub fn with_round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// The configured ring, in order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Runs the audit: one `FederateStart` per daemon (concurrently —
    /// the ring cannot make progress unless every party is live), then
    /// the agent counting step over the returned lists.
    ///
    /// When parties fail *and* the pattern is "a strict minority of
    /// daemons unreachable" (died mid-round, connection dropped, never
    /// answered), the coordinator does not abort: it returns `Ok` with
    /// a degraded [`FederatedOutcome`] naming every failed party — the
    /// caller decides what a partial ring is worth. Failures with **no**
    /// unreachable daemon (refusals, empty databases, deadline answers
    /// from live daemons) and majority-unreachable rings still error:
    /// those are configuration or total-outage conditions a retry or a
    /// human must fix.
    ///
    /// # Errors
    ///
    /// Configuration errors (fewer than two peers, duplicate addresses)
    /// and non-degradable failure patterns as above — the first error
    /// in ring order wins.
    pub fn run(&self) -> Result<FederatedOutcome, FederationError> {
        let k = self.peers.len();
        if k < 2 {
            return Err(FederationError::Config(
                "federated P-SOP needs at least two provider daemons".to_string(),
            ));
        }
        for (i, p) in self.peers.iter().enumerate() {
            if self.peers[..i].contains(p) {
                return Err(FederationError::Config(format!(
                    "peer {p} appears twice in the ring; a daemon cannot play two parties"
                )));
            }
        }
        let session = self.session_id();
        // The whole audit shares one trace: the root is virtual (the
        // coordinator records no span store of its own) and every
        // party's `FederateStart` carries a distinct child of it, so
        // the daemons' span trees merge under one id.
        let root = TraceContext::root();

        // Every daemon must be driving its rounds at once: party 0's
        // round-1 input only exists after party k-1 sent its round-0
        // list. One thread per daemon keeps the blocking client simple.
        let reports: Vec<Result<PartyReport, FederationError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|i| {
                    let peer = self.peers[i].clone(); // lint:allow(panic_path) -- i ranges over 0..k and peers.len() == k
                    let successor = self.peers[(i + 1) % k].clone(); // lint:allow(panic_path) -- (i + 1) % k is always below peers.len() == k
                    let party_trace = root.child();
                    scope.spawn(move || self.run_party(session, i, &peer, &successor, party_trace))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("party thread panicked")) // lint:allow(panic_path) -- a panicked party thread is a coordinator bug, not a peer fault; propagate it
                .collect()
        });
        if reports.iter().any(|r| r.is_err()) {
            return self.degrade_or_fail(session, root, reports);
        }
        let parties: Vec<PartyReport> = reports.into_iter().map(|r| r.unwrap()).collect(); // lint:allow(panic_path) -- the any(is_err) guard above already returned via degrade_or_fail

        let (intersection, union) =
            count_final_lists(parties.iter().map(|p| p.payload.as_slice()), k);
        // Reassemble the (k+1)-party traffic matrix from each daemon's
        // own accounting; the coordinator (party k) sends nothing and
        // receives every final list.
        let mut sent: Vec<u64> = parties.iter().map(|p| p.sent_bytes).collect();
        let mut received: Vec<u64> = parties.iter().map(|p| p.recv_bytes).collect();
        sent.push(0);
        received.push(parties.iter().map(|p| p.payload.len() as u64).sum());
        let messages = parties.iter().map(|p| p.sent_msgs).sum();
        let traffic = TrafficStats::from_parts(sent, received, messages);
        let party_wire_bytes = parties.iter().map(|p| p.wire_sent_bytes).collect();
        Ok(FederatedOutcome {
            session,
            psop: Some(outcome_from_counts(intersection, union, traffic)),
            parties_failed: Vec::new(),
            party_wire_bytes,
            trace: root,
        })
    }

    /// Decides what a run with failed parties becomes: a degraded
    /// outcome when a strict minority of daemons was unreachable (the
    /// partial-failure class the ring should survive *observably*), the
    /// first error in ring order otherwise.
    fn degrade_or_fail(
        &self,
        session: u64,
        root: TraceContext,
        reports: Vec<Result<PartyReport, FederationError>>,
    ) -> Result<FederatedOutcome, FederationError> {
        let k = self.peers.len();
        let unreachable = reports
            .iter()
            .filter(|r| matches!(r, Err(e) if !matches!(e, FederationError::Remote(_))))
            .count();
        if unreachable == 0 || unreachable * 2 >= k {
            // No daemon actually died (refusals / deadlines from live
            // daemons = configuration trouble), or so many died no
            // "partial" reading is honest — fail loudly.
            for report in reports {
                report?;
            }
            unreachable!("degrade_or_fail called without a failed report"); // lint:allow(panic_path) -- only entered with at least one Err report, so the loop above always returns
        }
        let mut parties_failed = Vec::new();
        let mut party_wire_bytes = Vec::with_capacity(k);
        for (index, report) in reports.into_iter().enumerate() {
            match report {
                Ok(p) => party_wire_bytes.push(p.wire_sent_bytes),
                Err(e) => {
                    party_wire_bytes.push(0);
                    parties_failed.push(PartyFailure {
                        index,
                        peer: self.peers[index].clone(), // lint:allow(panic_path) -- index enumerates k reports and peers.len() == k
                        reachable: matches!(e, FederationError::Remote(_)),
                        error: e.to_string(),
                    });
                }
            }
        }
        Ok(FederatedOutcome {
            session,
            psop: None,
            parties_failed,
            party_wire_bytes,
            trace: root,
        })
    }

    fn run_party(
        &self,
        session: u64,
        index: usize,
        peer: &str,
        successor: &str,
        trace: TraceContext,
    ) -> Result<PartyReport, FederationError> {
        let mut client = Client::connect(peer)?;
        // A generous socket deadline so a wedged daemon fails the audit
        // instead of hanging the coordinator forever; the per-round
        // deadlines inside the daemons are the precise control. Budget:
        // k ring rounds + the agent hop + retry/backoff slack — computed
        // with checked math so a huge `--round-timeout` cannot wrap into
        // a tiny (or zero) socket deadline.
        let hops = u32::try_from(self.peers.len())
            .unwrap_or(u32::MAX)
            .saturating_add(4);
        let socket_deadline = self
            .round_timeout
            .checked_mul(hops)
            .unwrap_or(Duration::MAX);
        client.set_read_timeout(Some(socket_deadline))?;
        // The error class must survive to `run`: a `Remote` answer
        // means the daemon is alive (it *said* no), anything else means
        // it is unreachable — the distinction the degraded-outcome
        // decision is built on.
        let response = client
            .request_traced(
                &Request::FederateStart {
                    session,
                    index: index as u32,
                    parties: self.peers.len() as u32,
                    successor: successor.to_string(),
                    seed: self.config.seed,
                    multiset: self.config.multiset,
                    round_timeout_ms: Some(self.round_timeout.as_millis() as u64),
                },
                Some(trace),
            )
            .map_err(|e| match e {
                ClientError::Remote(m) => {
                    FederationError::Remote(format!("party {index} ({peer}): {m}"))
                }
                ClientError::Io(err) => FederationError::Io(std::io::Error::new(
                    err.kind(),
                    format!("party {index} ({peer}): {err}"),
                )),
                ClientError::Protocol(m) => {
                    FederationError::Protocol(format!("party {index} ({peer}): {m}"))
                }
            })?;
        match response {
            Response::FederateDone {
                session: echoed,
                payload,
                sent_bytes,
                recv_bytes,
                sent_msgs,
                recv_msgs: _,
                wire_sent_bytes,
            } => {
                if echoed != session {
                    return Err(FederationError::Protocol(format!(
                        "party {index} answered for session {echoed}, expected {session}"
                    )));
                }
                let payload = decode_payload(&payload)
                    .map_err(|e| FederationError::Protocol(format!("party {index}: {e}")))?;
                // A truncated list would make `count_final_lists` treat
                // the tail as a distinct ciphertext and silently inflate
                // the union — reject anything that is not whole elements.
                if !payload.len().is_multiple_of(CIPHERTEXT_BYTES) {
                    return Err(FederationError::Protocol(format!(
                        "party {index} returned {} bytes, not a multiple of the \
                         {CIPHERTEXT_BYTES}-byte ciphertext width",
                        payload.len()
                    )));
                }
                Ok(PartyReport {
                    payload,
                    sent_bytes,
                    recv_bytes,
                    sent_msgs,
                    wire_sent_bytes,
                })
            }
            Response::Error { message } => Err(FederationError::Remote(format!(
                "party {index} ({peer}): {message}"
            ))),
            other => Err(FederationError::Protocol(format!(
                "party {index} ({peer}) answered {other:?}"
            ))),
        }
    }

    /// Derives a session id from the ring, the configuration and the
    /// current time — unique enough that retries and concurrent audits
    /// on the same daemons do not collide.
    fn session_id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.peers.hash(&mut h);
        self.config.seed.hash(&mut h);
        if let Ok(elapsed) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            elapsed.as_nanos().hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_few_peers_rejected() {
        let c = FederationCoordinator::new(["127.0.0.1:1".to_string()]);
        assert!(matches!(c.run(), Err(FederationError::Config(_))));
    }

    #[test]
    fn duplicate_peers_rejected() {
        let c = FederationCoordinator::new(["127.0.0.1:1".to_string(), "127.0.0.1:1".to_string()]);
        let err = c.run().unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn session_ids_differ_across_runs() {
        let c = FederationCoordinator::new(["a:1".to_string(), "b:2".to_string()]);
        assert_ne!(c.session_id(), c.session_id());
    }
}
