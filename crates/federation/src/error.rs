//! Federation failure taxonomy.

use indaas_simnet::TransportError;

/// Why a federated operation failed.
#[derive(Debug)]
pub enum FederationError {
    /// Socket trouble dialing or talking to a daemon.
    Io(std::io::Error),
    /// The wire carried something out of protocol (bad handshake answer,
    /// unparseable line, frame for the wrong session).
    Protocol(String),
    /// A daemon answered with an `Error { message }`.
    Remote(String),
    /// A protocol round failed in transit (peer loss, round deadline).
    Transport(TransportError),
    /// The request itself is invalid (too few peers, self-peering).
    Config(String),
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::Io(e) => write!(f, "connection error: {e}"),
            FederationError::Protocol(m) => write!(f, "protocol error: {m}"),
            FederationError::Remote(m) => write!(f, "remote error: {m}"),
            FederationError::Transport(e) => write!(f, "{e}"),
            FederationError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl From<std::io::Error> for FederationError {
    fn from(e: std::io::Error) -> Self {
        FederationError::Io(e)
    }
}

impl From<TransportError> for FederationError {
    fn from(e: TransportError) -> Self {
        FederationError::Transport(e)
    }
}
