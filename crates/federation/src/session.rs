//! Federation session plumbing: per-session frame mailboxes and the
//! registry that routes incoming peer frames to the party waiting on
//! them.
//!
//! A daemon's single listener accepts both client connections and peer
//! sessions; the peer-session read loop (in `indaas-service`) hands every
//! validated `FederateData` frame to [`SessionRegistry::deliver`]-style
//! routing here. Frames may arrive *before* the coordinator's
//! `FederateStart` reaches this daemon (the ring has no global barrier),
//! so mailboxes are created on first touch and buffer until the party
//! thread starts popping.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use indaas_graph::CancelToken;
use indaas_simnet::TransportError;

/// One routed federation round frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The sender's ring-send ordinal within the session.
    pub round: u32,
    /// Ring index of the sending party.
    pub from: u32,
    /// Decoded ciphertext-list payload.
    pub payload: Vec<u8>,
}

/// Most frames one mailbox will buffer before the peer is told to back
/// off — a P-SOP party only ever has one frame in flight per round, so
/// anything near this bound is a misbehaving peer, not a slow audit.
pub const MAX_BUFFERED_FRAMES: usize = 256;

/// A blocking frame queue for one session on one daemon.
#[derive(Debug, Default)]
pub struct SessionMailbox {
    queue: Mutex<VecDeque<Frame>>,
    available: Condvar,
}

impl SessionMailbox {
    /// Enqueues a frame, waking any party blocked in [`SessionMailbox::pop`].
    ///
    /// # Errors
    ///
    /// Rejects the frame when the buffer is at [`MAX_BUFFERED_FRAMES`].
    pub fn push(&self, frame: Frame) -> Result<(), String> {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= MAX_BUFFERED_FRAMES {
            return Err(format!(
                "session mailbox full ({MAX_BUFFERED_FRAMES} frames buffered)"
            ));
        }
        queue.push_back(frame);
        self.available.notify_all();
        Ok(())
    }

    /// Blocks until a frame arrives, the per-round `timeout` elapses, or
    /// `token` trips (the session-wide deadline).
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] in both expiry cases, naming which
    /// deadline fired.
    pub fn pop(&self, token: &CancelToken, timeout: Duration) -> Result<Frame, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(frame) = queue.pop_front() {
                return Ok(frame);
            }
            if token.is_cancelled() {
                return Err(TransportError::Timeout(
                    "federation session deadline exceeded".to_string(),
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout(format!(
                    "no frame within the {}ms round deadline",
                    timeout.as_millis()
                )));
            }
            // Short slices so the session-wide token is observed promptly.
            let wait = (deadline - now).min(Duration::from_millis(50));
            let (q, _) = self
                .available
                .wait_timeout(queue, wait)
                .unwrap_or_else(PoisonError::into_inner);
            queue = q;
        }
    }

    /// Frames currently buffered.
    pub fn pending(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// Most concurrently tracked sessions; beyond it the stalest *idle*
/// session is dropped (frames for it start bouncing), bounding memory
/// against session-id churn from misbehaving peers.
pub const MAX_SESSIONS: usize = 64;

/// Routes session ids to mailboxes, creating them on first touch.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    inner: Mutex<SessionTable>,
}

#[derive(Debug, Default)]
struct SessionTable {
    mailboxes: HashMap<u64, Arc<SessionMailbox>>,
    /// Creation order for stale eviction at [`MAX_SESSIONS`].
    order: VecDeque<u64>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mailbox for `session`, created (and capacity-evicting) if
    /// absent. An existing session is always returned, however full the
    /// registry — a party mid-audit must never lose its mailbox.
    ///
    /// Eviction only considers *idle* sessions (nobody outside the
    /// registry holds the mailbox): a flood of throwaway session ids
    /// cannot starve an in-flight audit of its frames.
    ///
    /// # Errors
    ///
    /// Rejects a new session when the registry is full of active ones.
    pub fn mailbox(&self, session: u64) -> Result<Arc<SessionMailbox>, String> {
        let mut table = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(mb) = table.mailboxes.get(&session) {
            return Ok(Arc::clone(mb));
        }
        while table.mailboxes.len() >= MAX_SESSIONS {
            // Oldest idle session first; an Arc held outside the table
            // (a party blocked in `pop`) marks the session active.
            let Some(pos) = table.order.iter().position(|s| {
                table
                    .mailboxes
                    .get(s)
                    .is_some_and(|mb| Arc::strong_count(mb) == 1)
            }) else {
                return Err(format!(
                    "session registry full ({MAX_SESSIONS} active sessions)"
                ));
            };
            let stale = table.order.remove(pos).expect("position is in range"); // lint:allow(panic_path) -- pos was just produced by position() over this deque
            table.mailboxes.remove(&stale);
        }
        let mb = Arc::new(SessionMailbox::default());
        table.mailboxes.insert(session, Arc::clone(&mb));
        table.order.push_back(session);
        Ok(mb)
    }

    /// Drops a finished session's mailbox (late frames recreate an empty
    /// one that ages out via the capacity bound).
    pub fn remove(&self, session: u64) {
        let mut table = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        table.mailboxes.remove(&session);
        table.order.retain(|s| *s != session);
    }

    /// Sessions currently tracked.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .mailboxes
            .len()
    }

    /// True when no sessions are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(round: u32) -> Frame {
        Frame {
            round,
            from: 0,
            payload: vec![round as u8],
        }
    }

    #[test]
    fn push_pop_fifo() {
        let mb = SessionMailbox::default();
        mb.push(frame(0)).unwrap();
        mb.push(frame(1)).unwrap();
        let token = CancelToken::new();
        assert_eq!(mb.pop(&token, Duration::from_secs(1)).unwrap().round, 0);
        assert_eq!(mb.pop(&token, Duration::from_secs(1)).unwrap().round, 1);
    }

    #[test]
    fn pop_times_out_without_frames() {
        let mb = SessionMailbox::default();
        let token = CancelToken::new();
        let err = mb.pop(&token, Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout(_)));
    }

    #[test]
    fn pop_observes_cancelled_token() {
        let mb = SessionMailbox::default();
        let token = CancelToken::new();
        token.cancel();
        let err = mb.pop(&token, Duration::from_secs(30)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout(_)));
    }

    #[test]
    fn pop_unblocks_on_cross_thread_push() {
        let mb = Arc::new(SessionMailbox::default());
        let pusher = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            pusher.push(frame(7)).unwrap();
        });
        let token = CancelToken::new();
        assert_eq!(mb.pop(&token, Duration::from_secs(5)).unwrap().round, 7);
        handle.join().unwrap();
    }

    #[test]
    fn mailbox_buffer_is_bounded() {
        let mb = SessionMailbox::default();
        for i in 0..MAX_BUFFERED_FRAMES {
            mb.push(frame(i as u32)).unwrap();
        }
        assert!(mb.push(frame(0)).unwrap_err().contains("full"));
    }

    #[test]
    fn registry_creates_on_demand_and_evicts_only_idle_sessions() {
        let reg = SessionRegistry::new();
        // Holding the Arc marks session 1 active — it must survive any
        // amount of session-id churn.
        let active = reg.mailbox(1).unwrap();
        assert!(
            Arc::ptr_eq(&active, &reg.mailbox(1).unwrap()),
            "same session, same box"
        );
        for s in 2..=(MAX_SESSIONS as u64 + 10) {
            let _ = reg.mailbox(s).unwrap();
        }
        assert_eq!(reg.len(), MAX_SESSIONS);
        assert!(
            Arc::ptr_eq(&active, &reg.mailbox(1).unwrap()),
            "an active session must never be evicted by churn"
        );
        reg.remove(1);
        assert_eq!(reg.len(), MAX_SESSIONS - 1);
    }

    #[test]
    fn registry_full_of_active_sessions_rejects_new_ones() {
        let reg = SessionRegistry::new();
        let held: Vec<_> = (0..MAX_SESSIONS as u64)
            .map(|s| reg.mailbox(s).unwrap())
            .collect();
        let err = reg.mailbox(10_000).unwrap_err();
        assert!(err.contains("full"), "got: {err}");
        // Existing sessions still resolve.
        assert!(Arc::ptr_eq(&held[0], &reg.mailbox(0).unwrap()));
        // Releasing one frees a slot.
        drop(held);
        assert!(reg.mailbox(10_000).is_ok());
    }
}
