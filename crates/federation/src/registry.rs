//! The peer registry: which fellow daemons this node will exchange
//! protocol rounds with.
//!
//! An empty registry is *open* (any successor named by a coordinator is
//! dialed — the convenient single-operator default); a non-empty registry
//! is an allow-list (`serve --peer` flags), so a compromised coordinator
//! cannot point a daemon's encrypted lists at an address the operator
//! never sanctioned.

use std::net::ToSocketAddrs;

/// Known federation peers.
#[derive(Clone, Debug, Default)]
pub struct PeerRegistry {
    peers: Vec<String>,
}

impl PeerRegistry {
    /// An open registry (no allow-list).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated from `serve --peer` style flags.
    pub fn with_peers(peers: impl IntoIterator<Item = String>) -> Self {
        let mut r = Self::new();
        for p in peers {
            r.add(p);
        }
        r
    }

    /// Registers a peer address (duplicates are absorbed).
    pub fn add(&mut self, addr: impl Into<String>) {
        let addr = addr.into();
        if !self.peers.contains(&addr) {
            self.peers.push(addr);
        }
    }

    /// Registered addresses, in registration order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// True when no allow-list is configured (any peer accepted).
    pub fn is_open(&self) -> bool {
        self.peers.is_empty()
    }

    /// Whether `addr` may be dialed: either the registry is open, or the
    /// address matches a registered peer textually or by resolved
    /// socket address (so `localhost:4914` and `127.0.0.1:4914` agree).
    pub fn allows(&self, addr: &str) -> bool {
        if self.is_open() || self.peers.iter().any(|p| p == addr) {
            return true;
        }
        let Ok(candidates) = addr.to_socket_addrs() else {
            return false;
        };
        let candidates: Vec<_> = candidates.collect();
        self.peers.iter().any(|p| {
            p.to_socket_addrs()
                .map(|mut resolved| resolved.any(|r| candidates.contains(&r)))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_registry_allows_anyone() {
        let r = PeerRegistry::new();
        assert!(r.is_open());
        assert!(r.allows("10.0.0.1:9999"));
    }

    #[test]
    fn allow_list_restricts() {
        let r = PeerRegistry::with_peers(["127.0.0.1:4914".to_string()]);
        assert!(!r.is_open());
        assert!(r.allows("127.0.0.1:4914"));
        assert!(!r.allows("127.0.0.1:4915"));
    }

    #[test]
    fn textual_and_resolved_matches_agree() {
        let r = PeerRegistry::with_peers(["localhost:4914".to_string()]);
        assert!(r.allows("localhost:4914"), "textual match");
        assert!(r.allows("127.0.0.1:4914"), "resolved match");
    }

    #[test]
    fn duplicates_absorbed() {
        let mut r = PeerRegistry::new();
        r.add("a:1");
        r.add("a:1");
        assert_eq!(r.peers().len(), 1);
    }
}
