//! Outbound peer sessions and the one-party TCP transport view.
//!
//! [`PeerConn`] dials a fellow daemon's listener, performs the
//! `FederateHello`/`FederateWelcome` version negotiation, and then writes
//! `FederateData` frames. [`TcpRoundTransport`] wraps one such connection
//! plus the local session mailbox into a [`Transport`] hosting exactly
//! one party — the view `indaas_pia::run_psop_party` executes against.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use indaas_faultinj::{points, FaultAction};
use indaas_graph::CancelToken;
use indaas_obs::TraceContext;
use indaas_service::proto::{
    decode_line, encode_line, encode_payload, encode_traced_round_frame, read_bounded_line,
    write_frame, LineRead, Request, Response, FEDERATION_PROTOCOL_VERSION,
    MAX_FEDERATE_PAYLOAD_BYTES, MIN_FEDERATION_PROTOCOL_VERSION,
};
use indaas_simnet::{Message, PartyId, TrafficStats, Transport, TransportError};

use crate::error::FederationError;
use crate::session::SessionMailbox;

/// Largest accepted handshake answer line — a `FederateWelcome` is tiny,
/// so peers get a much tighter bound than audit clients.
const MAX_WELCOME_LINE: u64 = 4 * 1024;

/// An established (handshaken) outbound peer session.
pub struct PeerConn {
    writer: TcpStream,
    /// Negotiated protocol version: ≥ 2 ships raw binary round frames,
    /// 1 falls back to hex-in-JSON lines.
    pub version: u32,
    /// The peer's self-reported node name.
    pub peer_node: String,
    /// Whether the handshake negotiated the trace-context frame
    /// extension (offered at version ≥ 2, on only when the welcome
    /// echoed it back). A v1 peer always negotiates it away.
    pub trace_enabled: bool,
    /// Every byte this connection has put on the wire — handshake and
    /// framing included — for the wire-efficiency accounting binary
    /// framing is measured by.
    wire_sent: u64,
}

impl PeerConn {
    /// Dials `addr`, announces `own_node`, and negotiates the protocol
    /// version, offering the newest this build speaks.
    ///
    /// # Errors
    ///
    /// I/O failures, a handshake rejection (the peer's `Error` answer —
    /// e.g. a detected self-connection), an unsupported version, or a
    /// peer that answers out of protocol.
    pub fn dial(addr: &str, own_node: &str, timeout: Duration) -> Result<Self, FederationError> {
        Self::dial_with_version(addr, own_node, timeout, FEDERATION_PROTOCOL_VERSION)
    }

    /// [`PeerConn::dial`] offering an explicit protocol version — how a
    /// dialer deliberately downgrades to v1 hex framing (the
    /// wire-efficiency e2e suite measures both encodings this way).
    ///
    /// # Errors
    ///
    /// See [`PeerConn::dial`]; additionally rejects a peer negotiating
    /// *above* the offered version (a broken negotiation).
    pub fn dial_with_version(
        addr: &str,
        own_node: &str,
        timeout: Duration,
        offer: u32,
    ) -> Result<Self, FederationError> {
        // Chaos hook: an armed `fed.dial` point fails the dial before a
        // single byte leaves this daemon (any non-pass action refuses).
        if indaas_faultinj::point(points::FED_DIAL) != FaultAction::Pass {
            return Err(FederationError::Io(std::io::Error::other(
                "injected fault at fed.dial",
            )));
        }
        // `TcpStream::connect` has no deadline of its own — a blackholed
        // successor would wedge the party thread for the OS connect
        // timeout (minutes), far past every protocol deadline.
        let stream = connect_with_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        // The same deadline bounds writes: a peer that stops draining
        // its socket mid-round fails this party instead of wedging it.
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut conn = PeerConn {
            writer,
            version: offer,
            peer_node: String::new(),
            trace_enabled: false,
            wire_sent: 0,
        };
        conn.write_line(&encode_line(&Request::FederateHello {
            version: offer,
            node: own_node.to_string(),
            // Offer the trace extension whenever the binary frame
            // encoding is on the table; a v1 offer never carries it.
            trace: (offer >= 2).then_some(true),
        }))?;
        let mut line = String::new();
        match read_bounded_line(&mut reader, &mut line, MAX_WELCOME_LINE)? {
            LineRead::Line => {}
            LineRead::Eof => {
                return Err(FederationError::Protocol(format!(
                    "peer {addr} closed the connection during the handshake"
                )));
            }
            LineRead::Oversized => {
                return Err(FederationError::Protocol(format!(
                    "peer {addr} handshake answer exceeds {MAX_WELCOME_LINE} bytes"
                )));
            }
        }
        match decode_line::<Response>(line.trim()) {
            Ok(Response::FederateWelcome {
                version,
                node,
                trace,
            }) => {
                if !(MIN_FEDERATION_PROTOCOL_VERSION..=offer.min(FEDERATION_PROTOCOL_VERSION))
                    .contains(&version)
                {
                    return Err(FederationError::Protocol(format!(
                        "peer {addr} negotiated unsupported protocol version {version}"
                    )));
                }
                if node == own_node {
                    return Err(FederationError::Config(format!(
                        "peer {addr} is this daemon itself (node {node:?}); refusing self-peering"
                    )));
                }
                conn.version = version;
                conn.peer_node = node;
                // Both the offer and the echo must agree, and the
                // extension only exists in the binary framing.
                conn.trace_enabled = version >= 2 && trace == Some(true);
                Ok(conn)
            }
            Ok(Response::Error { message }) => Err(FederationError::Remote(message)),
            Ok(other) => Err(FederationError::Protocol(format!(
                "peer {addr} answered the handshake with {other:?}"
            ))),
            Err(e) => Err(FederationError::Protocol(format!(
                "peer {addr} handshake unparseable: {e}"
            ))),
        }
    }

    /// Ships one round frame: raw binary at the negotiated version ≥ 2
    /// (header + ciphertext bytes verbatim — about half the wire bytes),
    /// hex-in-JSON lines for v1 peers. When `trace` is set *and* the
    /// handshake negotiated the extension, the binary frame carries the
    /// context so the receiving daemon records the hop under the same
    /// trace; otherwise the frame is byte-identical to the untraced
    /// encoding (v1 lines never carry a context).
    ///
    /// # Errors
    ///
    /// Propagates socket failures; rejects payloads beyond the protocol
    /// bound before they touch the wire.
    pub fn send_frame(
        &mut self,
        session: u64,
        round: u32,
        from: u32,
        payload: &[u8],
        trace: Option<&TraceContext>,
    ) -> Result<(), FederationError> {
        if payload.len() > MAX_FEDERATE_PAYLOAD_BYTES {
            return Err(FederationError::Protocol(format!(
                "frame payload {} exceeds {MAX_FEDERATE_PAYLOAD_BYTES} bytes",
                payload.len()
            )));
        }
        // Chaos hook: `fed.frame.send` can fail, drop, or sever one
        // ring hop — the fault classes the transport's retry/backoff
        // and ring re-dial exist to absorb.
        match indaas_faultinj::point(points::FED_FRAME_SEND) {
            FaultAction::Pass => {}
            FaultAction::Error => {
                return Err(FederationError::Io(std::io::Error::other(
                    "injected fault at fed.frame.send",
                )));
            }
            // The frame is lost on the floor but reported sent; the
            // successor's round deadline is what notices.
            FaultAction::Drop => return Ok(()),
            FaultAction::Disconnect => {
                let _ = self.writer.shutdown(std::net::Shutdown::Both);
                return Err(FederationError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected disconnect at fed.frame.send",
                )));
            }
        }
        if self.version >= 2 {
            let trace = if self.trace_enabled { trace } else { None };
            let frame = encode_traced_round_frame(session, round, from, payload, trace);
            write_frame(&mut self.writer, &frame).map_err(FederationError::Io)?;
            self.writer.flush()?;
            self.wire_sent += 4 + frame.len() as u64;
            return Ok(());
        }
        self.write_line(&encode_line(&Request::FederateData {
            session,
            round,
            from,
            payload: encode_payload(payload),
        }))
    }

    /// Bytes this connection has written, framing included.
    pub fn wire_sent_bytes(&self) -> u64 {
        self.wire_sent
    }

    fn write_line(&mut self, line: &str) -> Result<(), FederationError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.wire_sent += line.len() as u64 + 1;
        Ok(())
    }
}

/// Resolves `addr` and tries each candidate with `timeout`, returning
/// the first stream that connects.
fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<TcpStream, FederationError> {
    use std::net::ToSocketAddrs;
    let mut last_err: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .map(FederationError::Io)
        .unwrap_or_else(|| FederationError::Config(format!("{addr} resolves to no address"))))
}

/// Send attempts per frame on one connection before the transport
/// considers the connection lost: the initial try plus two retries.
const MAX_SEND_ATTEMPTS: u32 = 3;

/// First retry backoff; doubles per retry (20ms, 40ms), always capped
/// by the round deadline so retrying can never outlast the round.
const INITIAL_SEND_BACKOFF: Duration = Duration::from_millis(20);

/// How the transport re-dials its ring successor after send retries on
/// the original connection are exhausted.
#[derive(Clone)]
struct RedialInfo {
    addr: String,
    node: String,
    offer: u32,
}

/// One party's [`Transport`] view of a federated session: sends to the
/// ring successor travel the outbound [`PeerConn`]; sends to the agent
/// (party `k`) are stashed for the coordinator's `FederateDone` answer;
/// receives pop the daemon's session mailbox under per-round deadlines.
pub struct TcpRoundTransport {
    local: PartyId,
    /// Provider count `k`; the transport addresses `k + 1` parties.
    providers: usize,
    session: u64,
    successor: PeerConn,
    mailbox: Arc<SessionMailbox>,
    token: CancelToken,
    round_timeout: Duration,
    /// This party's `fed_party` span context; every outgoing ring frame
    /// is stamped with a fresh child of it, which the successor daemon
    /// records verbatim — the cross-daemon parent link.
    trace: Option<TraceContext>,
    stats: TrafficStats,
    /// Ring-send ordinal stamped on outgoing frames.
    send_round: u32,
    /// Next expected incoming frame round.
    recv_round: u32,
    /// Messages this party sent / received (protocol hops, agent included).
    counters: HopCounters,
    final_payload: Option<Vec<u8>>,
    /// Successor coordinates for the one re-dial attempt; `None`
    /// disables re-dialing (tests driving a raw transport).
    redial: Option<RedialInfo>,
    /// Whether the single re-dial attempt has been spent.
    redialed: bool,
    /// Frame sends retried after a transient failure.
    frame_retries: u64,
    /// Successor re-dials performed (0 or 1).
    redials: u64,
    /// Wire bytes written by connections replaced via re-dial, so
    /// [`TcpRoundTransport::into_completion`] keeps counting every byte
    /// this party put on the wire.
    wire_sent_base: u64,
}

/// Message-count counters mirroring what `FederateDone` reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct HopCounters {
    /// Protocol messages sent (ring frames + the agent hop).
    pub sent_msgs: u64,
    /// Protocol messages received.
    pub recv_msgs: u64,
}

impl TcpRoundTransport {
    /// Builds the one-party view for ring position `local` of
    /// `providers` parties.
    ///
    /// # Panics
    ///
    /// Panics if `local` is not a provider index.
    pub fn new(
        local: PartyId,
        providers: usize,
        session: u64,
        successor: PeerConn,
        mailbox: Arc<SessionMailbox>,
        token: CancelToken,
        round_timeout: Duration,
    ) -> Self {
        assert!(local < providers, "local party must be a provider");
        TcpRoundTransport {
            local,
            providers,
            session,
            successor,
            mailbox,
            token,
            round_timeout,
            trace: None,
            stats: TrafficStats::new(providers + 1),
            send_round: 0,
            recv_round: 0,
            counters: HopCounters::default(),
            final_payload: None,
            redial: None,
            redialed: false,
            frame_retries: 0,
            redials: 0,
            wire_sent_base: 0,
        }
    }

    /// Arms the one-shot ring re-dial: after send retries on the
    /// current successor connection are exhausted, the transport dials
    /// `addr` once more (announcing `node`, offering protocol version
    /// `offer`) and retries the frame on the fresh connection before
    /// giving up.
    #[must_use]
    pub fn with_redial(
        mut self,
        addr: impl Into<String>,
        node: impl Into<String>,
        offer: u32,
    ) -> Self {
        self.redial = Some(RedialInfo {
            addr: addr.into(),
            node: node.into(),
            offer,
        });
        self
    }

    /// Sets the `fed_party` span context outgoing frames are stamped
    /// under; only sessions whose handshake negotiated tracing on
    /// should pass `Some`.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<TraceContext>) -> Self {
        self.trace = trace;
        self
    }

    /// Ring predecessor — the only party frames may legitimately carry
    /// as `from`.
    fn predecessor(&self) -> PartyId {
        (self.local + self.providers - 1) % self.providers
    }

    /// The agent party id (`k`).
    fn agent(&self) -> PartyId {
        self.providers
    }

    /// The stashed agent payload, once the final hop ran, along with
    /// the traffic stats, hop counters, and the successor connection's
    /// wire-byte total.
    pub fn into_completion(self) -> Option<(Vec<u8>, TrafficStats, HopCounters, u64)> {
        let wire = self.wire_sent_base + self.successor.wire_sent_bytes();
        self.final_payload
            .map(|p| (p, self.stats, self.counters, wire))
    }

    /// `(frame retries, re-dials)` this transport performed — the
    /// daemon reports them as `fed_frame_retries_total` /
    /// `fed_redials_total`.
    pub fn retry_counts(&self) -> (u64, u64) {
        (self.frame_retries, self.redials)
    }

    /// Ships one ring frame with bounded retry: up to
    /// [`MAX_SEND_ATTEMPTS`] tries on the current connection under
    /// exponential backoff, then (once per party run) a re-dial of the
    /// ring successor and a fresh attempt budget on the new connection.
    fn send_frame_with_retry(
        &mut self,
        round: u32,
        from: u32,
        payload: &[u8],
        trace: Option<&TraceContext>,
    ) -> Result<(), FederationError> {
        let mut backoff = INITIAL_SEND_BACKOFF;
        let mut attempts = 0u32;
        loop {
            let err = match self
                .successor
                .send_frame(self.session, round, from, payload, trace)
            {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            attempts += 1;
            if attempts < MAX_SEND_ATTEMPTS {
                self.frame_retries += 1;
                std::thread::sleep(backoff.min(self.round_timeout));
                backoff = backoff.saturating_mul(2);
                continue;
            }
            // Retries on this connection are spent. One ring re-dial
            // per party run: a successor that crashed and came back (or
            // whose connection a middlebox severed) gets a second
            // chance before the party fails the audit.
            let info = match (&self.redial, self.redialed) {
                (Some(info), false) => info.clone(),
                _ => return Err(err),
            };
            self.redialed = true;
            match PeerConn::dial_with_version(
                &info.addr,
                &info.node,
                self.round_timeout,
                info.offer,
            ) {
                Ok(conn) => {
                    self.redials += 1;
                    self.wire_sent_base += self.successor.wire_sent_bytes();
                    self.successor = conn;
                    attempts = 0;
                    backoff = INITIAL_SEND_BACKOFF;
                }
                Err(dial_err) => {
                    return Err(FederationError::Io(std::io::Error::other(format!(
                        "sending to ring successor failed ({err}) and the re-dial \
                         failed too ({dial_err})"
                    ))));
                }
            }
        }
    }
}

impl Transport for TcpRoundTransport {
    fn parties(&self) -> usize {
        self.providers + 1
    }

    fn send(&mut self, from: PartyId, to: PartyId, payload: Vec<u8>) -> Result<(), TransportError> {
        if from != self.local {
            return Err(TransportError::Protocol(format!(
                "one-party transport cannot send as party {from} (local is {})",
                self.local
            )));
        }
        let bytes = payload.len() as u64;
        if to == self.agent() {
            self.stats.record(from, to, bytes);
            self.counters.sent_msgs += 1;
            self.final_payload = Some(payload);
            return Ok(());
        }
        if to != (self.local + 1) % self.providers {
            return Err(TransportError::Protocol(format!(
                "party {from} may only send to its ring successor or the agent, not {to}"
            )));
        }
        // A fresh child per frame: each ring hop is its own span on the
        // receiving daemon, all parented on this party's span.
        let frame_ctx = self.trace.map(|c| c.child());
        self.send_frame_with_retry(self.send_round, from as u32, &payload, frame_ctx.as_ref())
            .map_err(|e| TransportError::Closed(e.to_string()))?;
        self.send_round += 1;
        self.stats.record(from, to, bytes);
        self.counters.sent_msgs += 1;
        Ok(())
    }

    fn recv(&mut self, to: PartyId) -> Result<Message, TransportError> {
        if to != self.local {
            return Err(TransportError::Protocol(format!(
                "one-party transport cannot receive for party {to} (local is {})",
                self.local
            )));
        }
        let frame = self.mailbox.pop(&self.token, self.round_timeout)?;
        if frame.from as usize != self.predecessor() {
            return Err(TransportError::Protocol(format!(
                "frame from party {} but only the ring predecessor {} may send here",
                frame.from,
                self.predecessor()
            )));
        }
        if frame.round != self.recv_round {
            return Err(TransportError::Protocol(format!(
                "frame round {} arrived where round {} was expected",
                frame.round, self.recv_round
            )));
        }
        self.recv_round += 1;
        self.stats
            .record(frame.from as usize, to, frame.payload.len() as u64);
        self.counters.recv_msgs += 1;
        Ok(Message {
            from: frame.from as usize,
            to,
            payload: frame.payload,
        })
    }

    fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}
