//! The daemon-side federation engine: handshake policy, frame routing,
//! and the blocking per-party protocol run a `FederateStart` triggers.

use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

use indaas_deps::DepView;
use indaas_graph::CancelToken;
use indaas_pia::normalize::normalize_set;
use indaas_pia::{run_psop_party, PsopConfig};
use indaas_service::proto::{
    FEDERATION_PROTOCOL_VERSION, MAX_FEDERATE_PAYLOAD_BYTES, MIN_FEDERATION_PROTOCOL_VERSION,
};
use indaas_service::server::{FederationCtx, FederationEngine, PartyCompletion, PartyInstruction};

use crate::peer::{PeerConn, TcpRoundTransport};
use crate::registry::PeerRegistry;
use crate::session::{Frame, SessionRegistry};

/// Most provider parties one federated audit may span — bounds the
/// session-wide deadline multiplier and the `from` index a frame may
/// carry.
pub const MAX_PARTIES: u32 = 64;

/// The production [`FederationEngine`]: one per daemon, installed with
/// [`indaas_service::Server::set_federation`].
pub struct Federation {
    node: String,
    peers: PeerRegistry,
    sessions: SessionRegistry,
    /// Protocol version offered when dialing ring successors. Defaults
    /// to the newest this build speaks; pinning it to 1 forces the
    /// legacy hex framing (how the wire-efficiency e2e measures both).
    offer_version: u32,
}

impl Federation {
    /// An engine identifying itself as `node` (by convention the
    /// daemon's listen address) with an open peer registry.
    pub fn new(node: impl Into<String>) -> Self {
        Self::with_registry(node, PeerRegistry::new())
    }

    /// An engine with an explicit peer allow-list.
    pub fn with_registry(node: impl Into<String>, peers: PeerRegistry) -> Self {
        Federation {
            node: node.into(),
            peers,
            sessions: SessionRegistry::new(),
            offer_version: FEDERATION_PROTOCOL_VERSION,
        }
    }

    /// Pins the protocol version this engine offers when dialing peers
    /// (clamped into the supported range). Listener-side negotiation is
    /// unaffected: incoming peers still get `min(offered, supported)`.
    #[must_use]
    pub fn with_protocol_version(mut self, version: u32) -> Self {
        self.offer_version =
            version.clamp(MIN_FEDERATION_PROTOCOL_VERSION, FEDERATION_PROTOCOL_VERSION);
        self
    }

    /// The node name announced in handshakes.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The configured peer registry.
    pub fn registry(&self) -> &PeerRegistry {
        &self.peers
    }

    /// Derives this provider's private component set from its dependency
    /// database: every network device, hardware component and software
    /// package it depends on, normalized exactly like `indaas pia`
    /// normalizes `--set` files so identical third-party components hash
    /// identically at every provider (§4.2.3).
    pub fn component_set<D: DepView + ?Sized>(db: &D) -> Vec<String> {
        provider_component_set(db)
    }
}

/// Free-function form of [`Federation::component_set`], shared with the
/// coordinator-side cross-checks in tests. Reads any [`DepView`] — a
/// monolithic `DepDb` or the daemon's sharded snapshot.
pub fn provider_component_set<D: DepView + ?Sized>(db: &D) -> Vec<String> {
    let mut raw: Vec<String> = Vec::new();
    for host in db.hosts() {
        for n in db.network_deps(&host) {
            raw.extend(n.route.iter().cloned());
        }
        for h in db.hardware_deps(&host) {
            raw.push(h.dep.clone());
        }
        for s in db.software_deps(&host) {
            raw.extend(s.deps.iter().cloned());
        }
    }
    normalize_set(raw.iter().map(String::as_str))
}

impl FederationEngine for Federation {
    fn handshake(
        &self,
        offered: u32,
        peer_node: &str,
        trace: bool,
    ) -> Result<(u32, String, bool), String> {
        if offered < MIN_FEDERATION_PROTOCOL_VERSION {
            return Err(format!(
                "protocol version {offered} below supported minimum {MIN_FEDERATION_PROTOCOL_VERSION}"
            ));
        }
        if peer_node == self.node {
            return Err(format!(
                "node {peer_node:?} is this daemon itself; refusing self-peering"
            ));
        }
        if !self.peers.allows(peer_node) {
            return Err(format!(
                "node {peer_node:?} is not in this daemon's peer allow-list"
            ));
        }
        let negotiated = offered.min(FEDERATION_PROTOCOL_VERSION);
        // The trace-context frame extension exists only in the binary
        // framing, so a session negotiated down to v1 drops it even if
        // the peer offered it.
        let traced = trace && negotiated >= 2;
        Ok((negotiated, self.node.clone(), traced))
    }

    fn deliver(&self, session: u64, round: u32, from: u32, payload: Vec<u8>) -> Result<(), String> {
        if from >= MAX_PARTIES {
            return Err(format!("party index {from} exceeds the {MAX_PARTIES} cap"));
        }
        if round >= MAX_PARTIES {
            return Err(format!("round {round} exceeds the {MAX_PARTIES} cap"));
        }
        if payload.len() > MAX_FEDERATE_PAYLOAD_BYTES {
            return Err(format!(
                "payload {} exceeds {MAX_FEDERATE_PAYLOAD_BYTES} bytes",
                payload.len()
            ));
        }
        self.sessions.mailbox(session)?.push(Frame {
            round,
            from,
            payload,
        })
    }

    fn run_party(
        &self,
        instruction: PartyInstruction,
        ctx: FederationCtx,
    ) -> Result<PartyCompletion, String> {
        let PartyInstruction {
            session,
            index,
            parties,
            successor,
            seed,
            multiset,
            round_timeout_ms,
            trace,
        } = instruction;
        if !(2..=MAX_PARTIES).contains(&parties) {
            return Err(format!(
                "parties must be in 2..={MAX_PARTIES} (got {parties})"
            ));
        }
        if index >= parties {
            return Err(format!(
                "ring index {index} out of range for {parties} parties"
            ));
        }
        // Reject self-connections before any byte leaves this daemon: a
        // successor resolving to our own listen address would hand this
        // party's encrypted list straight back to itself.
        if let Ok(resolved) = successor.to_socket_addrs() {
            for addr in resolved {
                if addr == ctx.local_addr {
                    return Err(format!(
                        "successor {successor} is this daemon's own listen address; refusing self-peering"
                    ));
                }
            }
        }
        if !self.peers.allows(&successor) {
            return Err(format!(
                "successor {successor} is not in this daemon's peer allow-list"
            ));
        }
        let dataset = provider_component_set(&ctx.snapshot);
        if dataset.is_empty() {
            return Err(
                "dependency database holds no components; ingest records before federating"
                    .to_string(),
            );
        }

        // Per-round deadline: the coordinator may only shorten the
        // server's ceiling. The session-wide budget is
        // `round_timeout × (parties + 2)`: a k-party ring takes k
        // rounds, plus one for the agent hop and one round of slack —
        // checked multiplication so an absurd `--round-timeout-ms`
        // saturates to "no deadline" instead of panicking the party
        // thread (`parties` is already capped at MAX_PARTIES, so the
        // u32 add cannot wrap).
        let round_timeout = round_timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(ctx.round_timeout)
            .min(ctx.round_timeout);
        let budget = round_timeout
            .checked_mul(parties + 2)
            .unwrap_or(Duration::MAX);
        let token = CancelToken::with_deadline(budget);

        let conn =
            PeerConn::dial_with_version(&successor, &self.node, round_timeout, self.offer_version)
                .map_err(|e| format!("dialing successor {successor}: {e}"))?;
        let mailbox = self.sessions.mailbox(session)?;
        let mut transport = TcpRoundTransport::new(
            index as usize,
            parties as usize,
            session,
            conn,
            mailbox,
            token,
            round_timeout,
        )
        .with_trace(trace)
        .with_redial(&successor, &self.node, self.offer_version);
        let config = PsopConfig { seed, multiset };
        let run = run_psop_party(
            &dataset,
            &config,
            index as usize,
            parties as usize,
            &mut transport,
        );
        self.sessions.remove(session);
        let (frame_retries, redials) = transport.retry_counts();
        run.map_err(|e| e.to_string())?;
        let (payload, stats, hops, wire_sent_bytes) = transport
            .into_completion()
            .ok_or_else(|| "party finished without an agent payload".to_string())?;
        Ok(PartyCompletion {
            sent_bytes: stats.sent_bytes(index as usize),
            recv_bytes: stats.recv_bytes(index as usize),
            sent_msgs: hops.sent_msgs,
            recv_msgs: hops.recv_msgs,
            wire_sent_bytes,
            frame_retries,
            redials,
            payload,
        })
    }
}

/// Convenience: boxes the engine for [`indaas_service::Server::set_federation`].
pub fn engine(node: impl Into<String>, peers: PeerRegistry) -> Arc<dyn FederationEngine> {
    Arc::new(Federation::with_registry(node, peers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_deps::{parse_records, DepDb};

    #[test]
    fn handshake_negotiates_and_rejects() {
        let f = Federation::new("127.0.0.1:1000");
        let (v, node, traced) = f
            .handshake(FEDERATION_PROTOCOL_VERSION, "127.0.0.1:2000", true)
            .unwrap();
        assert_eq!(v, FEDERATION_PROTOCOL_VERSION);
        assert_eq!(node, "127.0.0.1:1000");
        assert!(traced, "v2 peers offering tracing get it");
        // A newer peer negotiates down to ours.
        let (v, _, _) = f
            .handshake(FEDERATION_PROTOCOL_VERSION + 5, "127.0.0.1:2000", false)
            .unwrap();
        assert_eq!(v, FEDERATION_PROTOCOL_VERSION);
        // Too-old versions and self-connections are refused.
        assert!(f
            .handshake(0, "127.0.0.1:2000", false)
            .unwrap_err()
            .contains("version"));
        assert!(f
            .handshake(FEDERATION_PROTOCOL_VERSION, "127.0.0.1:1000", false)
            .unwrap_err()
            .contains("self"));
    }

    #[test]
    fn handshake_negotiates_tracing_off_at_v1() {
        let f = Federation::new("127.0.0.1:1000");
        // Tracing needs the binary framing: a v1 offer drops it even if
        // the peer (nonsensically) asked for it.
        let (v, _, traced) = f.handshake(1, "127.0.0.1:2000", true).unwrap();
        assert_eq!(v, 1);
        assert!(!traced);
        // And a v2 peer not offering it does not get it.
        let (_, _, traced) = f
            .handshake(FEDERATION_PROTOCOL_VERSION, "127.0.0.1:2000", false)
            .unwrap();
        assert!(!traced);
    }

    #[test]
    fn handshake_honours_allow_list() {
        let f = Federation::with_registry(
            "127.0.0.1:1000",
            PeerRegistry::with_peers(["127.0.0.1:2000".to_string()]),
        );
        assert!(f.handshake(1, "127.0.0.1:2000", false).is_ok());
        assert!(f
            .handshake(1, "127.0.0.1:3000", false)
            .unwrap_err()
            .contains("allow-list"));
    }

    #[test]
    fn deliver_validates_bounds() {
        let f = Federation::new("n");
        assert!(f
            .deliver(1, 0, MAX_PARTIES, vec![])
            .unwrap_err()
            .contains("cap"));
        assert!(f
            .deliver(1, MAX_PARTIES, 0, vec![])
            .unwrap_err()
            .contains("cap"));
        f.deliver(1, 0, 0, vec![1, 2, 3]).unwrap();
    }

    #[test]
    fn component_set_is_normalized_and_sorted() {
        let db = DepDb::from_records(
            parse_records(
                r#"
                <src="S1" dst="Internet" route="ToR1,Core1"/>
                <hw="S1" type="CPU" dep="Intel X5550"/>
                <pgm="Riak" hw="S1" dep="libc6,OpenSSL 1.0.1f"/>
            "#,
            )
            .unwrap(),
        );
        let set = provider_component_set(&db);
        assert_eq!(
            set,
            vec!["core1", "intel-x5550", "libc6", "openssl-1.0.1f", "tor1"]
        );
    }
}
