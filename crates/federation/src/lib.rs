//! Federated private independence auditing: the real multi-party P-SOP
//! exchange between independent `indaas serve` daemons over TCP.
//!
//! The paper's PIA (§4.2) is inherently multi-party — each cloud
//! provider runs its own auditing agent and joins the P-SOP ring without
//! revealing its dependency set. The reproduction's protocol engines run
//! over the [`indaas_simnet::Transport`] trait; this crate supplies the
//! distributed implementation:
//!
//! * [`session`] — per-session frame mailboxes and the registry routing
//!   incoming peer frames to the party blocked on them;
//! * [`peer`] — outbound peer sessions (`FederateHello` handshake with
//!   protocol-version negotiation) and [`peer::TcpRoundTransport`], the
//!   one-party transport view `run_psop_party` executes against;
//! * [`registry`] — the peer allow-list behind `serve --peer`;
//! * [`engine`] — the daemon-side [`indaas_service::server::FederationEngine`]:
//!   handshake policy, frame routing, self-connection rejection, and the
//!   blocking party run triggered by a coordinator's `FederateStart`;
//! * [`coordinator`] — the auditing agent: fans `FederateStart` out to
//!   every daemon, counts the returned k-layer ciphertext lists, and
//!   reassembles per-party traffic so Figure 8 cross-checks hold.
//!
//! Every daemon keeps a *single* TCP listener: audit clients and
//! federation peers are told apart by the first line of the connection
//! (a `FederateHello` re-tags it as a peer session). Because each
//! party's RNG stream is derived independently (see
//! [`indaas_pia::PsopParty`]), a federated audit and an in-process
//! [`indaas_simnet::SimNetwork`] run of the same topology produce
//! identical results and identical per-party byte counts.

pub mod coordinator;
pub mod engine;
pub mod error;
pub mod peer;
pub mod registry;
pub mod session;

pub use coordinator::{FederatedOutcome, FederationCoordinator};
pub use engine::{engine, provider_component_set, Federation, MAX_PARTIES};
pub use error::FederationError;
pub use peer::{PeerConn, TcpRoundTransport};
pub use registry::PeerRegistry;
pub use session::{Frame, SessionMailbox, SessionRegistry};
