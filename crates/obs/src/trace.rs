//! Distributed-trace primitives: a propagated [`TraceContext`], the
//! per-daemon [`SpanStore`] of finished spans, and the pure
//! [`build_span_tree`] assembly the CLI uses to stitch spans fetched
//! from several daemons into one tree.
//!
//! # Model
//!
//! A *trace* is one logical operation — a client request, a federated
//! audit — identified by a 128-bit id. Every unit of work done on its
//! behalf is a *span*: `(trace_id, span_id, parent_span_id)` plus a
//! name, a detail string, and timings. The context that crosses process
//! boundaries names the span the *receiver* should record: the caller
//! mints the span id for the callee's work ([`TraceContext::child`]),
//! so parent links line up across daemons without any coordination
//! beyond carrying 32 bytes (or one hex header) on the wire.
//!
//! Ids come from the process-seeded SipHash [`RandomState`] mixed with
//! a monotonic counter and the clock — no external RNG dependency, and
//! collisions across daemons are as unlikely as hash collisions.
//!
//! Span storage is a bounded ring like the flight recorder: a busy
//! daemon forgets the oldest spans first and never grows without bound.
//! Assembly is deliberately *insertion-order independent*: spans are
//! sorted and de-duplicated by id before linking, so the same set of
//! spans — fetched from any number of daemons, in any order — always
//! yields the same tree. Spans whose parent is not in the set (the
//! parent lives on a daemon that was not queried, or was evicted)
//! surface as roots instead of disappearing.

use std::collections::hash_map::RandomState;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Size of the fixed binary encoding of a [`TraceContext`]:
/// big-endian `trace_id(16) ‖ span_id(8) ‖ parent_span_id(8)`.
pub const TRACE_CONTEXT_BYTES: usize = 32;

/// The context that crosses process boundaries. Identifies the span
/// the receiver should record for the work it is being asked to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit trace id; never zero (zero is the "absent" encoding).
    pub trace_id: u128,
    /// The span the receiver records; never zero.
    pub span_id: u64,
    /// The span this one nests under; zero for a trace root.
    pub parent_span_id: u64,
}

/// A fresh 64-bit id: the process-random SipHash over a monotonic
/// counter and the clock. Never zero.
fn fresh_id() -> u64 {
    static SEED: OnceLock<RandomState> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = SEED.get_or_init(RandomState::new).build_hasher();
    h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    let clock = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() ^ u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    h.write_u64(clock);
    h.finish().max(1)
}

/// Microseconds since the UNIX epoch (0 if the clock is before it).
pub fn unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl TraceContext {
    /// Mints a brand-new trace: fresh trace id, fresh root span.
    pub fn root() -> Self {
        let trace_id = ((fresh_id() as u128) << 64 | fresh_id() as u128).max(1);
        TraceContext {
            trace_id,
            span_id: fresh_id(),
            parent_span_id: 0,
        }
    }

    /// A child context: same trace, fresh span id, parented on `self`.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_id(),
            parent_span_id: self.span_id,
        }
    }

    /// The hex header carried on protocol-v2 envelopes:
    /// `<32 hex>-<16 hex>-<16 hex>`.
    pub fn encode_header(&self) -> String {
        format!(
            "{:032x}-{:016x}-{:016x}",
            self.trace_id, self.span_id, self.parent_span_id
        )
    }

    /// Parses [`TraceContext::encode_header`] output. Strict: exact
    /// field widths, hex digits only, non-zero trace and span ids.
    /// Anything else — including garbage — is `None`, never a panic.
    pub fn parse_header(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let (t, sp, pa) = (parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() || t.len() != 32 || sp.len() != 16 || pa.len() != 16 {
            return None;
        }
        for field in [t, sp, pa] {
            if !field.bytes().all(|b| b.is_ascii_hexdigit()) {
                return None;
            }
        }
        let ctx = TraceContext {
            trace_id: u128::from_str_radix(t, 16).ok()?,
            span_id: u64::from_str_radix(sp, 16).ok()?,
            parent_span_id: u64::from_str_radix(pa, 16).ok()?,
        };
        (ctx.trace_id != 0 && ctx.span_id != 0).then_some(ctx)
    }

    /// The fixed binary encoding carried on federation round frames.
    pub fn to_bytes(&self) -> [u8; TRACE_CONTEXT_BYTES] {
        let mut out = [0u8; TRACE_CONTEXT_BYTES];
        out[..16].copy_from_slice(&self.trace_id.to_be_bytes());
        out[16..24].copy_from_slice(&self.span_id.to_be_bytes());
        out[24..].copy_from_slice(&self.parent_span_id.to_be_bytes());
        out
    }

    /// Parses [`TraceContext::to_bytes`]. `None` on wrong length or a
    /// zero trace/span id (the all-zero extension means "no context").
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != TRACE_CONTEXT_BYTES {
            return None;
        }
        let ctx = TraceContext {
            trace_id: u128::from_be_bytes(bytes[..16].try_into().ok()?),
            span_id: u64::from_be_bytes(bytes[16..24].try_into().ok()?),
            parent_span_id: u64::from_be_bytes(bytes[24..].try_into().ok()?),
        };
        (ctx.trace_id != 0 && ctx.span_id != 0).then_some(ctx)
    }
}

/// Renders a trace id the way every surface shows it: 32 hex digits.
pub fn format_trace_id(trace_id: u128) -> String {
    format!("{trace_id:032x}")
}

/// Parses a trace id: 1–32 hex digits, non-zero. Forgiving about
/// leading zeros being dropped (`indaas trace ab12` works).
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    match u128::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// One finished span. `node` is empty at record time; the daemon stamps
/// its own address when answering a `Trace` request, so stitched trees
/// show where each span ran.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace_id: u128,
    pub span_id: u64,
    pub parent_span_id: u64,
    /// What kind of work: `request:AuditSia`, `queue_wait`, `rg_bdd`, …
    pub name: String,
    /// Free-form qualifier (spec digest, session id, …); may be empty.
    pub detail: String,
    /// Which daemon recorded it; empty until stamped for the wire.
    pub node: String,
    /// Wall-clock start, µs since the UNIX epoch (best effort — used
    /// only to order siblings deterministically).
    pub start_us: u64,
    pub elapsed_us: u64,
}

impl SpanRecord {
    /// A span that just finished, `elapsed_us` ago.
    pub fn finished(
        ctx: TraceContext,
        name: impl Into<String>,
        detail: impl Into<String>,
        elapsed_us: u64,
    ) -> Self {
        SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            name: name.into(),
            detail: detail.into(),
            node: String::new(),
            start_us: unix_us().saturating_sub(elapsed_us),
            elapsed_us,
        }
    }
}

/// Bounded ring of finished spans, addressable by trace id. Like the
/// flight recorder: the oldest spans fall off first, the lock is held
/// only for a push or a filtered copy, and a poisoned lock (a panicking
/// audit thread) never takes observability down with it.
pub struct SpanStore {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

impl SpanStore {
    /// A store holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        SpanStore {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records a finished span, evicting the oldest at capacity.
    pub fn push(&self, span: SpanRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// [`SpanStore::push`] of a span that finished `elapsed_us` ago.
    pub fn record(&self, ctx: TraceContext, name: &str, detail: String, elapsed_us: u64) {
        self.push(SpanRecord::finished(ctx, name, detail, elapsed_us));
    }

    /// Every stored span of `trace_id`, oldest first.
    pub fn spans_for(&self, trace_id: u128) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Stored spans, all traces.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One node of an assembled span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    pub span: SpanRecord,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Nodes in this subtree, the node itself included.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }
}

/// Assembles spans — gathered from any number of daemons, in any order
/// — into a forest of parent-linked trees.
///
/// Deterministic and insertion-order independent: spans are first
/// sorted by `(start_us, span_id, name)` and de-duplicated by span id
/// (a span fetched twice appears once), then linked. A span whose
/// parent is absent from the set becomes a root; a parent cycle (only
/// possible with corrupted input) is broken deterministically instead
/// of hanging or dropping spans.
pub fn build_span_tree(mut spans: Vec<SpanRecord>) -> Vec<SpanNode> {
    spans.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then(a.span_id.cmp(&b.span_id))
            .then_with(|| a.name.cmp(&b.name))
    });
    let mut seen = HashSet::new();
    spans.retain(|s| seen.insert(s.span_id));

    let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut roots = Vec::new();
    let mut by_parent: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    for span in spans {
        if span.parent_span_id == 0 || !ids.contains(&span.parent_span_id) {
            roots.push(span);
        } else {
            by_parent.entry(span.parent_span_id).or_default().push(span);
        }
    }

    fn attach(span: SpanRecord, by_parent: &mut HashMap<u64, Vec<SpanRecord>>) -> SpanNode {
        let children = by_parent
            .remove(&span.span_id)
            .unwrap_or_default()
            .into_iter()
            .map(|c| attach(c, by_parent))
            .collect();
        SpanNode { span, children }
    }

    let mut forest: Vec<SpanNode> = roots
        .into_iter()
        .map(|r| attach(r, &mut by_parent))
        .collect();
    // Parent cycles never hang off a root; surface them rather than
    // silently losing spans.
    while let Some(&key) = by_parent.keys().min() {
        for orphan in by_parent.remove(&key).unwrap_or_default() {
            forest.push(attach(orphan, &mut by_parent));
        }
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips_and_rejects_garbage() {
        let ctx = TraceContext::root().child();
        let header = ctx.encode_header();
        assert_eq!(TraceContext::parse_header(&header), Some(ctx));
        for garbage in [
            "",
            "nonsense",
            "00000000000000000000000000000000-0000000000000000-0000000000000000",
            "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001-0000000000000000",
            "+1230000000000000000000000000000-0000000000000001-0000000000000000",
            "0123-4567-89ab",
        ] {
            assert_eq!(TraceContext::parse_header(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn bytes_roundtrip_and_zero_means_absent() {
        let ctx = TraceContext::root();
        assert_eq!(TraceContext::from_bytes(&ctx.to_bytes()), Some(ctx));
        assert_eq!(TraceContext::from_bytes(&[0u8; TRACE_CONTEXT_BYTES]), None);
        assert_eq!(TraceContext::from_bytes(&[1u8; 7]), None);
    }

    #[test]
    fn children_stay_in_the_trace_with_fresh_ids() {
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        assert_ne!(TraceContext::root().trace_id, root.trace_id);
    }

    #[test]
    fn trace_id_parsing_accepts_short_forms() {
        assert_eq!(parse_trace_id("ab12"), Some(0xab12));
        assert_eq!(parse_trace_id(&format_trace_id(0xab12)), Some(0xab12));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("0"), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id(&"f".repeat(33)), None);
    }

    #[test]
    fn store_is_bounded_and_filters_by_trace() {
        let store = SpanStore::new(3);
        let a = TraceContext::root();
        let b = TraceContext::root();
        store.record(a, "one", String::new(), 10);
        store.record(b, "two", String::new(), 10);
        store.record(a.child(), "three", String::new(), 10);
        store.record(a.child(), "four", String::new(), 10);
        assert_eq!(store.len(), 3, "oldest evicted at capacity");
        assert!(store.spans_for(a.trace_id).len() == 2);
        assert_eq!(store.spans_for(b.trace_id).len(), 1);
    }

    #[test]
    fn tree_assembly_is_order_independent_and_orphan_safe() {
        let root = TraceContext::root();
        let child = root.child();
        let grandchild = child.child();
        let spans = vec![
            SpanRecord::finished(root, "root", String::new(), 100),
            SpanRecord::finished(child, "child", String::new(), 50),
            SpanRecord::finished(grandchild, "grandchild", String::new(), 10),
        ];
        let mut reversed = spans.clone();
        reversed.reverse();
        let forward = build_span_tree(spans.clone());
        assert_eq!(forward, build_span_tree(reversed));
        assert_eq!(forward.len(), 1);
        assert_eq!(forward[0].size(), 3);
        assert_eq!(forward[0].children[0].children[0].span.name, "grandchild");

        // Drop the middle span: the grandchild surfaces as a root
        // instead of vanishing.
        let partial = build_span_tree(vec![spans[0].clone(), spans[2].clone()]);
        assert_eq!(partial.len(), 2);

        // Duplicates (the same span fetched from two daemons) collapse.
        let mut doubled = spans.clone();
        doubled.extend(spans);
        let deduped = build_span_tree(doubled);
        assert_eq!(deduped.len(), 1);
        assert_eq!(deduped[0].size(), 3);
    }

    #[test]
    fn parent_cycles_are_broken_not_lost() {
        let a = SpanRecord {
            trace_id: 1,
            span_id: 10,
            parent_span_id: 11,
            name: "a".into(),
            detail: String::new(),
            node: String::new(),
            start_us: 0,
            elapsed_us: 0,
        };
        let mut b = a.clone();
        b.span_id = 11;
        b.parent_span_id = 10;
        b.name = "b".into();
        let forest = build_span_tree(vec![a, b]);
        assert_eq!(forest.iter().map(SpanNode::size).sum::<usize>(), 2);
    }
}
