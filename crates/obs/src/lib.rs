//! Lock-cheap observability core for the INDaaS daemon.
//!
//! Everything in this crate is built from `std` atomics and one short
//! mutex (metric *registration* and flight-recorder appends); the hot
//! paths — bumping a [`Counter`], recording into a [`Histo`], dropping a
//! [`Span`] — are a handful of relaxed atomic operations and never
//! block. The crate has zero dependencies on purpose: it is pulled into
//! the scheduler, the server, and the benchmarks alike, and none of
//! them should pay for serde to count things. Wire encoding of
//! snapshots belongs to the service protocol layer.
//!
//! The pieces:
//!
//! * [`Counter`] / [`Gauge`] — named atomics, monotonic vs settable.
//! * [`Histo`] — a fixed-bucket log₂ latency histogram: bucket `i ≥ 1`
//!   holds values in `[2^(i-1), 2^i)`, bucket 0 holds exact zeros.
//!   Recording is one relaxed `fetch_add` per of bucket/count/sum;
//!   snapshots are plain `u64`s that merge by addition, and quantiles
//!   come back as *bucket upper bounds* — for any recorded value `v`,
//!   `v <= quantile_bound < 2v + 1`.
//! * [`Span`] — times a scoped stage, records elapsed microseconds into
//!   its histogram on drop.
//! * [`Registry`] — get-or-create by name; snapshotting walks the
//!   `BTreeMap`s so output is deterministically name-sorted.
//! * [`FlightRecorder`] — a bounded ring of recent [`Trace`]s (request
//!   and audit executions with per-stage timings, cache disposition,
//!   shard pins, outcome), flagging entries slower than a configured
//!   threshold so "what was slow lately" survives the moment.
//! * [`trace`] — distributed tracing: the propagated [`TraceContext`],
//!   the bounded [`SpanStore`] of finished spans addressable by trace
//!   id, and the order-independent [`build_span_tree`] assembly.
//! * [`log`] — the leveled structured logger (text or JSON lines to
//!   stderr), stamping every line with the thread's active trace
//!   context.

pub mod log;
pub mod trace;

pub use crate::log::{LogLevel, TraceScope};
pub use crate::trace::{
    build_span_tree, format_trace_id, parse_trace_id, SpanNode, SpanRecord, SpanStore,
    TraceContext, TRACE_CONTEXT_BYTES,
};

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Bucket count of every [`Histo`]: bucket 0 for exact zeros plus one
/// bucket per power of two up to the full `u64` range.
pub const HISTO_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, otherwise `⌊log₂ v⌋ + 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` — what quantile estimates report.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, buffered frames): settable, and
/// adjustable up/down without going negative.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement — a racy extra `sub` clamps at zero rather
    /// than wrapping to `u64::MAX` and reading as "4 billion queued".
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log₂ latency histogram. All operations are relaxed
/// atomics; a concurrent snapshot may tear by a record or two, which is
/// fine for monitoring (counts are never lost, only momentarily split
/// across `count`/`sum`/bucket).
#[derive(Debug)]
pub struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histo {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistoSnapshot {
        HistoSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histo`]: plain numbers, mergeable by
/// addition, with quantile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoSnapshot {
    pub buckets: [u64; HISTO_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistoSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another snapshot in; equivalent to having recorded both
    /// snapshots' values into one histogram. Saturating, like the
    /// atomics underneath — a metrics sum must never panic.
    pub fn merge(&mut self, other: &HistoSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the bucket holding the `q`-quantile value
    /// (`0.0 < q <= 1.0`). Guaranteed `v <= quantile(q) < 2v + 1` for
    /// the true `q`-th smallest recorded value `v`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTO_BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper bound of the highest occupied bucket; 0 when empty.
    pub fn max_bound(&self) -> u64 {
        self.quantile(1.0)
    }

    /// The occupied buckets, as `(bucket index, count)` — the sparse
    /// form the wire snapshot and the Prometheus exposition both want.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }
}

/// Times a scoped stage; records elapsed **microseconds** into its
/// histogram when dropped.
#[derive(Debug)]
pub struct Span {
    histo: Arc<Histo>,
    started: Instant,
}

impl Span {
    pub fn start(histo: Arc<Histo>) -> Self {
        Self {
            histo,
            started: Instant::now(),
        }
    }

    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histo.record(self.elapsed_us());
    }
}

#[derive(Default)]
struct Families {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histos: BTreeMap<String, Arc<Histo>>,
}

/// Named metric registry. Lookup is get-or-create and hands back an
/// `Arc` handle — hot paths resolve their metrics once and bump the
/// handle, never touching the registry lock again.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Families>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn families(&self) -> std::sync::MutexGuard<'_, Families> {
        // A poisoned registry would take all monitoring down with the
        // panicking thread; the maps are always internally consistent,
        // so keep serving.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.families()
                .counters
                .entry(name.to_string())
                .or_default(),
        )
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.families().gauges.entry(name.to_string()).or_default())
    }

    pub fn histo(&self, name: &str) -> Arc<Histo> {
        Arc::clone(self.families().histos.entry(name.to_string()).or_default())
    }

    /// Drop a counter from the registry (per-connection metrics are
    /// removed at teardown so a long-lived daemon's registry stays
    /// bounded). Existing handles keep working; the name just stops
    /// appearing in snapshots.
    pub fn remove_counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.families().counters.remove(name)
    }

    pub fn snapshot(&self) -> RegistrySnapshot {
        let fams = self.families();
        RegistrySnapshot {
            counters: fams
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: fams
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histos: fams
                .histos
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every registered metric, name-sorted.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histos: Vec<(String, HistoSnapshot)>,
}

impl RegistrySnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    pub fn histo(&self, name: &str) -> Option<&HistoSnapshot> {
        self.histos.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// One recorded request/audit execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Monotonic sequence number, assigned by the recorder.
    pub seq: u64,
    /// What ran: `"sia"`, `"pia"`, `"push"`, …
    pub kind: String,
    /// Free-form context (candidate names, subscription id, …).
    pub detail: String,
    /// Served from the audit cache (stages will be empty).
    pub cached: bool,
    /// `"ok"`, `"cancelled"`, or an error rendering.
    pub outcome: String,
    /// End-to-end microseconds.
    pub total_us: u64,
    /// Set by the recorder when `total_us` meets the slow threshold.
    pub slow: bool,
    /// Per-stage `(name, µs)` timings in execution order.
    pub stages: Vec<(String, u64)>,
    /// `(shard, epoch)` pins the execution read against.
    pub pins: Vec<(u32, u64)>,
}

impl Trace {
    pub fn new(kind: impl Into<String>, detail: impl Into<String>) -> Self {
        Self {
            seq: 0,
            kind: kind.into(),
            detail: detail.into(),
            cached: false,
            outcome: "ok".to_string(),
            total_us: 0,
            slow: false,
            stages: Vec::new(),
            pins: Vec::new(),
        }
    }
}

/// Bounded ring buffer of recent [`Trace`]s. Appends evict the oldest
/// entry once the ring is full; entries at or above the slow threshold
/// are flagged on the way in.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<Trace>>,
    capacity: usize,
    seq: AtomicU64,
    slow_us: AtomicU64,
}

impl FlightRecorder {
    pub fn new(capacity: usize, slow_threshold_us: u64) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            seq: AtomicU64::new(0),
            slow_us: AtomicU64::new(slow_threshold_us),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Trace>> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a trace; assigns its sequence number and slow flag, and
    /// returns the sequence number.
    pub fn record(&self, mut trace: Trace) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        trace.seq = seq;
        trace.slow = trace.total_us >= self.slow_us.load(Ordering::Relaxed);
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
        seq
    }

    /// The most recent `n` traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Trace> {
        self.lock().iter().rev().take(n).cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_us.load(Ordering::Relaxed)
    }

    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_us.store(us, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value sits at or below its bucket's upper bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn histo_quantiles_bound_the_data() {
        let h = Histo::new();
        for v in [3u64, 3, 3, 100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 109);
        // p50 covers the 3s (bucket [2,4) → bound 3); max covers 100.
        assert_eq!(snap.p50(), 3);
        assert!(snap.max_bound() >= 100 && snap.max_bound() < 201);
    }

    #[test]
    fn merge_adds_counts() {
        let (a, b) = (Histo::new(), Histo::new());
        a.record(5);
        b.record(5);
        b.record(9000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 9010);
        let both = Histo::new();
        for v in [5u64, 5, 9000] {
            both.record(v);
        }
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histo::new());
        {
            let _span = Span::start(Arc::clone(&h));
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = Registry::new();
        reg.counter("req").inc();
        reg.counter("req").inc();
        assert_eq!(reg.snapshot().counter("req"), Some(2));
        reg.gauge("depth").set(7);
        assert_eq!(reg.snapshot().gauge("depth"), Some(7));
        let kept = reg.counter("conn_1_shed");
        reg.remove_counter("conn_1_shed");
        kept.inc(); // handle survives removal
        assert_eq!(reg.snapshot().counter("conn_1_shed"), None);
    }

    #[test]
    fn recorder_evicts_oldest_and_flags_slow() {
        let rec = FlightRecorder::new(3, 50);
        for us in [10u64, 60, 20, 70] {
            let mut t = Trace::new("sia", "d");
            t.total_us = us;
            rec.record(t);
        }
        let recent = rec.recent(10);
        assert_eq!(recent.len(), 3); // capacity 3, oldest evicted
        assert_eq!(
            recent.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![4, 3, 2]
        );
        assert_eq!(
            recent.iter().map(|t| t.slow).collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }

    #[test]
    fn zero_threshold_flags_everything() {
        let rec = FlightRecorder::new(4, 0);
        rec.record(Trace::new("sia", ""));
        assert!(rec.recent(1)[0].slow);
    }
}
