//! A small leveled structured logger — the daemon's and CLI's one
//! stderr surface.
//!
//! Zero dependencies like the rest of the crate: configuration is two
//! process-global atomics (minimum [`LogLevel`], text vs JSON), output
//! is one `writeln!` to a locked stderr handle per line, and the JSON
//! form is hand-rolled (escaping only what RFC 8259 requires).
//!
//! Every line is stamped with the *active trace context* when one is
//! set: [`TraceScope`] is an RAII guard that installs a
//! [`TraceContext`] in a thread-local for the duration of a dispatch,
//! so any log line emitted while handling a traced request — however
//! deep in the stack — carries `trace=<id> span=<id>` and can be joined
//! against the span tree `indaas trace` renders.
//!
//! A disabled line costs one relaxed atomic load and a branch.

use std::cell::Cell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

use crate::trace::{format_trace_id, unix_us, TraceContext};

/// Severity, most severe first. The configured level is the *maximum*
/// verbosity: `Info` emits `Error`/`Warn`/`Info` and drops `Debug`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl LogLevel {
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN",
            LogLevel::Info => "INFO",
            LogLevel::Debug => "DEBUG",
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Error,
            1 => LogLevel::Warn,
            2 => LogLevel::Info,
            _ => LogLevel::Debug,
        }
    }
}

impl std::fmt::Display for LogLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);
static JSON: AtomicBool = AtomicBool::new(false);

thread_local! {
    static ACTIVE: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Sets the process-wide maximum verbosity.
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum verbosity.
pub fn level() -> LogLevel {
    LogLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Switches between human text lines and one-JSON-object-per-line.
pub fn set_json(json: bool) {
    JSON.store(json, Ordering::Relaxed);
}

/// Whether lines are emitted as JSON.
pub fn json() -> bool {
    JSON.load(Ordering::Relaxed)
}

/// Whether a line at `level` would be emitted.
pub fn enabled(level: LogLevel) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// The trace context active on this thread, if any.
pub fn current_trace() -> Option<TraceContext> {
    ACTIVE.with(Cell::get)
}

/// RAII guard installing `ctx` as this thread's active trace context;
/// the previous context (usually none) is restored on drop, so nested
/// scopes compose.
pub struct TraceScope {
    prev: Option<TraceContext>,
}

impl TraceScope {
    pub fn enter(ctx: TraceContext) -> TraceScope {
        TraceScope {
            prev: ACTIVE.with(|c| c.replace(Some(ctx))),
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let prev = self.prev;
        ACTIVE.with(|c| c.set(prev));
    }
}

/// Emits one line to stderr if `level` is enabled.
pub fn log(level: LogLevel, target: &str, message: &str) {
    if !enabled(level) {
        return;
    }
    let line = render_line(
        json(),
        unix_us() / 1_000,
        level,
        target,
        message,
        current_trace(),
    );
    let stderr = std::io::stderr();
    let _ = writeln!(stderr.lock(), "{line}");
}

pub fn error(target: &str, message: &str) {
    log(LogLevel::Error, target, message);
}

pub fn warn(target: &str, message: &str) {
    log(LogLevel::Warn, target, message);
}

pub fn info(target: &str, message: &str) {
    log(LogLevel::Info, target, message);
}

pub fn debug(target: &str, message: &str) {
    log(LogLevel::Debug, target, message);
}

/// Renders one log line. Text keeps the message verbatim at the end of
/// the line (tooling that scrapes a trailing token — the CLI tests read
/// the bound address off the serve banner — keeps working); the trace
/// stamp is appended only when a context is active.
pub fn render_line(
    json: bool,
    ts_ms: u64,
    level: LogLevel,
    target: &str,
    message: &str,
    ctx: Option<TraceContext>,
) -> String {
    if json {
        let mut out = format!(
            "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            level.as_str().to_ascii_lowercase(),
            escape_json(target),
            escape_json(message)
        );
        if let Some(c) = ctx {
            out.push_str(&format!(
                ",\"trace\":\"{}\",\"span\":\"{:016x}\"",
                format_trace_id(c.trace_id),
                c.span_id
            ));
        }
        out.push('}');
        out
    } else {
        match ctx {
            Some(c) => format!(
                "ts={ts_ms} {} {target} trace={} span={:016x}: {message}",
                level.as_str(),
                format_trace_id(c.trace_id),
                c.span_id
            ),
            None => format!("ts={ts_ms} {} {target}: {message}", level.as_str()),
        }
    }
}

/// RFC 8259 string escaping: quote, backslash, and control characters.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert!("warn".parse::<LogLevel>().unwrap() < LogLevel::Info);
        assert_eq!("DEBUG".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("loud".parse::<LogLevel>().is_err());
        assert!(LogLevel::Error < LogLevel::Debug);
    }

    #[test]
    fn text_line_keeps_message_last_and_stamps_trace() {
        let bare = render_line(
            false,
            7,
            LogLevel::Info,
            "server",
            "listening on 1.2.3.4:9",
            None,
        );
        assert_eq!(bare, "ts=7 INFO server: listening on 1.2.3.4:9");
        assert_eq!(bare.rsplit(' ').next(), Some("1.2.3.4:9"));

        let ctx = TraceContext {
            trace_id: 0xabc,
            span_id: 0x17,
            parent_span_id: 0,
        };
        let stamped = render_line(false, 7, LogLevel::Warn, "server", "slow audit", Some(ctx));
        assert!(stamped.contains(&format!("trace={}", format_trace_id(0xabc))));
        assert!(stamped.contains("span=0000000000000017"));
        assert!(stamped.ends_with("slow audit"));
    }

    #[test]
    fn json_line_is_escaped_and_carries_trace() {
        let ctx = TraceContext {
            trace_id: 1,
            span_id: 2,
            parent_span_id: 0,
        };
        let line = render_line(true, 9, LogLevel::Error, "cli", "say \"hi\"\n", Some(ctx));
        assert_eq!(
            line,
            "{\"ts_ms\":9,\"level\":\"error\",\"target\":\"cli\",\"msg\":\"say \\\"hi\\\"\\n\",\
             \"trace\":\"00000000000000000000000000000001\",\"span\":\"0000000000000002\"}"
        );
    }

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_trace(), None);
        let outer = TraceContext::root();
        {
            let _outer = TraceScope::enter(outer);
            assert_eq!(current_trace(), Some(outer));
            let inner = outer.child();
            {
                let _inner = TraceScope::enter(inner);
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer));
        }
        assert_eq!(current_trace(), None);
    }
}
