//! INDaaS orchestration: the auditing agent, client specifications and
//! end-to-end workflows (§2, Figure 1 of the paper).
//!
//! The three roles of the architecture:
//!
//! * the **auditing client** specifies what to audit — candidate redundancy
//!   deployments, dependency categories, the independence metric
//!   ([`spec::AuditSpec`]);
//! * **dependency data sources** run acquisition modules and feed a
//!   [`indaas_deps::DepDb`];
//! * the **auditing agent** ([`agent::AuditingAgent`]) mediates: it builds
//!   fault graphs, runs the risk-group algorithms, ranks deployments and
//!   returns an auditing report — or, in the private (PIA) case, supervises
//!   the P-SOP protocol across providers without seeing their data.
//!
//! # Examples
//!
//! ```
//! use indaas_core::{AuditSpec, AuditingAgent, CandidateDeployment, RgAlgorithm};
//! use indaas_deps::{parse_records, DepDb};
//!
//! let db = DepDb::from_records(parse_records(r#"
//!     <src="S1" dst="Internet" route="ToR1,Core1"/>
//!     <src="S2" dst="Internet" route="ToR1,Core2"/>
//!     <src="S3" dst="Internet" route="ToR9,Core9"/>
//! "#).unwrap());
//! let agent = AuditingAgent::new(db);
//! let spec = AuditSpec::sia_size_based(vec![
//!     CandidateDeployment::replicated("S1+S2", ["S1", "S2"]),
//!     CandidateDeployment::replicated("S1+S3", ["S1", "S3"]),
//! ]);
//! let report = agent.audit_sia(&spec).unwrap();
//! // S1+S2 share ToR1; S1+S3 share nothing — the audit prefers S1+S3.
//! assert_eq!(report.best().unwrap().name, "S1+S3");
//! ```

pub mod agent;
pub mod spec;

pub use agent::{AuditError, AuditingAgent, StageObserver, WhatIfOutcome};
pub use indaas_graph::{CancelToken, Cancelled};
pub use spec::{AuditSpec, CandidateDeployment, RankingMetric, RgAlgorithm};
