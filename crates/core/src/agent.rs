//! The auditing agent: executes audit specifications against dependency
//! data (Steps 2–6 of the workflow in §2).

use indaas_deps::{collect_all, DamError, DbSnapshot, DepDb, DepView, DependencyAcquisitionModule};
use indaas_graph::{CancelToken, Cancelled};
use indaas_pia::{rank_deployments_cancellable, PiaRanking, PsopConfig};
use indaas_sia::{
    build_fault_graph, failure_sampling_cancellable, minimal_risk_groups_cancellable, AuditReport,
    Bdd, BuildError, BuildSpec, DeploymentAudit, MinimalConfig, SamplingConfig,
};

use crate::spec::{AuditSpec, RankingMetric, RgAlgorithm};

/// Receives per-stage wall-clock timings from an audit as it executes.
///
/// The agent stays free of any metrics dependency: callers that want
/// stage latencies (the `indaas-service` daemon's flight recorder and
/// registry histograms) implement this trait and pass it to
/// [`AuditingAgent::audit_sia_observed`]; everyone else gets the no-op
/// `()` implementation for free. Stage names are stable identifiers:
/// `"graph_build"`, `"rg_minimal"`, `"rg_sampling"`, `"rg_bdd"`,
/// `"ranking"`. A stage is reported once per candidate deployment.
///
/// The daemon's implementation doubles as the distributed-tracing hook:
/// when the audit runs under a trace context, each reported stage also
/// becomes a child span of the audit's execution span, so `indaas
/// trace` shows per-stage timing inside the request tree without this
/// crate knowing anything about tracing.
pub trait StageObserver: Sync {
    /// Called when a stage finishes, with its elapsed microseconds.
    fn stage(&self, stage: &'static str, elapsed_us: u64);
}

/// The no-op observer.
impl StageObserver for () {
    fn stage(&self, _stage: &'static str, _elapsed_us: u64) {}
}

/// Runs `f`, reporting its wall-clock cost to `obs` under `stage`.
fn observed<T>(obs: &dyn StageObserver, stage: &'static str, f: impl FnOnce() -> T) -> T {
    let started = std::time::Instant::now();
    let out = f();
    obs.stage(stage, started.elapsed().as_micros() as u64);
    out
}

/// Errors surfaced to the auditing client.
#[derive(Debug)]
pub enum AuditError {
    /// The spec listed no candidate deployments.
    NoCandidates,
    /// Fault-graph construction failed for a deployment.
    Build(String, BuildError),
    /// Dependency acquisition failed.
    Acquisition(DamError),
    /// The job was cancelled or overran its deadline.
    Cancelled(Cancelled),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::NoCandidates => write!(f, "no candidate deployments specified"),
            AuditError::Build(name, e) => write!(f, "building {name:?} failed: {e}"),
            AuditError::Acquisition(e) => write!(f, "dependency acquisition failed: {e}"),
            AuditError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Outcome of a [`AuditingAgent::what_if`] query for one deployment.
#[derive(Clone, Debug)]
pub struct WhatIfOutcome {
    /// Deployment name.
    pub deployment: String,
    /// The hypothetically failed components this deployment depends on.
    pub affected_components: Vec<String>,
    /// Whether the deployment suffers an outage.
    pub outage: bool,
}

/// The auditing agent: owns a read-only view of dependency data and runs
/// audits.
///
/// The view is held behind an [`Arc`](std::sync::Arc) of a [`DepView`]
/// trait object, so agents are cheap to clone and agnostic to *how* the
/// data is stored — a monolithic [`DepDb`], or the multi-`Arc` sharded
/// [`DbSnapshot`] the `indaas-service` daemon pins per audit job at
/// admission time.
#[derive(Clone, Debug)]
pub struct AuditingAgent {
    db: std::sync::Arc<dyn DepView>,
}

impl AuditingAgent {
    /// Creates an agent over an existing dependency database.
    pub fn new(db: DepDb) -> Self {
        Self::from_shared(std::sync::Arc::new(db))
    }

    /// Creates an agent over a shared monolithic snapshot without
    /// copying it.
    pub fn from_shared(db: std::sync::Arc<DepDb>) -> Self {
        AuditingAgent { db }
    }

    /// Creates an agent over any shared read-only dependency view.
    pub fn from_view(db: std::sync::Arc<dyn DepView>) -> Self {
        AuditingAgent { db }
    }

    /// Creates an agent over an epoch-pinned sharded snapshot — the
    /// daemon's per-job entry point.
    pub fn from_snapshot(snapshot: DbSnapshot) -> Self {
        Self::from_view(std::sync::Arc::new(snapshot))
    }

    /// Creates an agent by running every acquisition module against every
    /// host it knows (Step 3 of the workflow).
    ///
    /// # Errors
    ///
    /// Propagates the first collector failure.
    pub fn from_modules(
        modules: &mut [Box<dyn DependencyAcquisitionModule>],
    ) -> Result<Self, AuditError> {
        let records = collect_all(modules).map_err(AuditError::Acquisition)?;
        Ok(Self::new(DepDb::from_records(records)))
    }

    /// The dependency view (for inspection and composition).
    pub fn db(&self) -> &dyn DepView {
        &*self.db
    }

    /// Runs a structural independence audit: for every candidate
    /// deployment, builds the fault graph, determines risk groups with the
    /// requested algorithm, ranks them, and assembles the report.
    ///
    /// # Errors
    ///
    /// Returns an [`AuditError`] if the spec is empty or any deployment's
    /// fault graph cannot be built.
    pub fn audit_sia(&self, spec: &AuditSpec) -> Result<AuditReport, AuditError> {
        self.audit_sia_cancellable(spec, &CancelToken::default())
    }

    /// [`AuditingAgent::audit_sia`] with cooperative cancellation — the
    /// entry point the `indaas-service` scheduler uses to enforce per-job
    /// deadlines. The token is threaded into every risk-group engine.
    ///
    /// # Errors
    ///
    /// As [`AuditingAgent::audit_sia`], plus [`AuditError::Cancelled`]
    /// when the token trips.
    pub fn audit_sia_cancellable(
        &self,
        spec: &AuditSpec,
        token: &CancelToken,
    ) -> Result<AuditReport, AuditError> {
        self.audit_sia_observed(spec, token, &())
    }

    /// [`AuditingAgent::audit_sia_cancellable`] reporting per-stage
    /// timings (fault-graph build, risk-group engine, ranking) to a
    /// [`StageObserver`] — the entry point the daemon's flight recorder
    /// rides.
    ///
    /// # Errors
    ///
    /// As [`AuditingAgent::audit_sia_cancellable`].
    pub fn audit_sia_observed(
        &self,
        spec: &AuditSpec,
        token: &CancelToken,
        obs: &dyn StageObserver,
    ) -> Result<AuditReport, AuditError> {
        if spec.candidates.is_empty() {
            return Err(AuditError::NoCandidates);
        }
        let mut audits = Vec::with_capacity(spec.candidates.len());
        for cand in &spec.candidates {
            let build = BuildSpec {
                name: cand.name.clone(),
                servers: cand.servers.clone(),
                needed_alive: cand.needed_alive,
                network: spec.network,
                hardware: spec.hardware,
                software: spec.software,
                prob_model: spec.prob_model.clone(),
            };
            let graph = observed(obs, "graph_build", || {
                build_fault_graph(self.db.as_ref(), &build)
            })
            .map_err(|e| AuditError::Build(cand.name.clone(), e))?;
            // The BDD engine additionally yields an exact top-event
            // probability; the other engines defer to the ranking module.
            let mut exact_pr: Option<Bdd> = None;
            let family = match spec.algorithm {
                RgAlgorithm::Minimal { max_order } => {
                    let config = MinimalConfig {
                        max_order,
                        ..MinimalConfig::default()
                    };
                    observed(obs, "rg_minimal", || {
                        minimal_risk_groups_cancellable(&graph, &config, token)
                    })
                    .map_err(AuditError::Cancelled)?
                }
                RgAlgorithm::Sampling {
                    rounds,
                    fail_prob,
                    seed,
                    threads,
                } => {
                    let config = SamplingConfig {
                        rounds,
                        fail_prob,
                        seed,
                        threads,
                        minimize: true,
                        weighted: false,
                    };
                    observed(obs, "rg_sampling", || {
                        failure_sampling_cancellable(&graph, &config, token)
                    })
                    .map_err(AuditError::Cancelled)?
                }
                RgAlgorithm::Bdd { max_nodes } => {
                    let (bdd, family) = observed(obs, "rg_bdd", || {
                        Bdd::compile_cancellable(&graph, max_nodes, token).map(|bdd| {
                            let family = bdd.minimal_cut_sets();
                            (bdd, family)
                        })
                    })
                    .map_err(AuditError::Cancelled)?;
                    exact_pr = Some(bdd);
                    family
                }
            };
            let replication = cand.servers.len();
            let audit = observed(obs, "ranking", || match &spec.metric {
                RankingMetric::Size => DeploymentAudit::size_based(
                    cand.name.clone(),
                    &family,
                    &graph,
                    replication,
                    spec.top_n,
                ),
                RankingMetric::Probability { default_prob } => {
                    let mut audit = DeploymentAudit::probability_based(
                        cand.name.clone(),
                        &family,
                        &graph,
                        replication,
                        *default_prob,
                        spec.top_n,
                    );
                    if let Some(bdd) = &exact_pr {
                        audit.failure_probability =
                            Some(bdd.top_probability(&graph, *default_prob));
                    }
                    audit
                }
            });
            audits.push(audit);
        }
        Ok(AuditReport::new(audits))
    }

    /// "What-if" analysis: given components assumed failed (say, every
    /// deployment of a package hit by a disclosed CVE — the Heartbleed
    /// scenario of §3), which candidate deployments go down?
    ///
    /// Components a deployment does not depend on are ignored, so one
    /// query can name a fleet-wide blast radius.
    ///
    /// # Errors
    ///
    /// Returns an [`AuditError`] if a deployment's fault graph cannot be
    /// built.
    pub fn what_if(
        &self,
        spec: &AuditSpec,
        failed_components: &[&str],
    ) -> Result<Vec<WhatIfOutcome>, AuditError> {
        let mut out = Vec::with_capacity(spec.candidates.len());
        for cand in &spec.candidates {
            let build = BuildSpec {
                name: cand.name.clone(),
                servers: cand.servers.clone(),
                needed_alive: cand.needed_alive,
                network: spec.network,
                hardware: spec.hardware,
                software: spec.software,
                prob_model: None,
            };
            let graph = build_fault_graph(self.db.as_ref(), &build)
                .map_err(|e| AuditError::Build(cand.name.clone(), e))?;
            let relevant: Vec<&str> = failed_components
                .iter()
                .copied()
                .filter(|c| graph.basic_by_name(c).is_some())
                .collect();
            let fails = graph
                .evaluate_named(&relevant)
                .expect("filtered to known components");
            out.push(WhatIfOutcome {
                deployment: cand.name.clone(),
                affected_components: relevant.iter().map(|s| s.to_string()).collect(),
                outage: fails,
            });
        }
        Ok(out)
    }

    /// Runs a private independence audit across provider component sets:
    /// ranks every `way`-sized provider combination by Jaccard similarity
    /// via P-SOP (optionally MinHash-compressed), without this agent ever
    /// seeing plaintext components.
    pub fn audit_pia(
        &self,
        providers: &[(String, Vec<String>)],
        way: usize,
        minhash: Option<usize>,
    ) -> Vec<PiaRanking> {
        self.audit_pia_cancellable(providers, way, minhash, &CancelToken::default())
            .expect("default token never cancels")
    }

    /// [`AuditingAgent::audit_pia`] with cooperative cancellation between
    /// provider-combination P-SOP runs.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the token trips.
    pub fn audit_pia_cancellable(
        &self,
        providers: &[(String, Vec<String>)],
        way: usize,
        minhash: Option<usize>,
        token: &CancelToken,
    ) -> Result<Vec<PiaRanking>, Cancelled> {
        rank_deployments_cancellable(providers, way, minhash, &PsopConfig::default(), token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CandidateDeployment;
    use indaas_deps::{parse_records, FailureProbModel, SimCollector};

    fn db() -> DepDb {
        DepDb::from_records(
            parse_records(
                r#"
                <src="S1" dst="Internet" route="tor1,core1"/>
                <src="S1" dst="Internet" route="tor1,core2"/>
                <src="S2" dst="Internet" route="tor1,core1"/>
                <src="S2" dst="Internet" route="tor1,core2"/>
                <src="S3" dst="Internet" route="tor2,core1"/>
                <src="S3" dst="Internet" route="tor2,core2"/>
                <hw="S1" type="Disk" dep="S1-disk"/>
                <hw="S2" type="Disk" dep="S2-disk"/>
                <hw="S3" type="Disk" dep="S3-disk"/>
            "#,
            )
            .unwrap(),
        )
    }

    fn candidates() -> Vec<CandidateDeployment> {
        vec![
            CandidateDeployment::replicated("S1+S2", ["S1", "S2"]),
            CandidateDeployment::replicated("S1+S3", ["S1", "S3"]),
        ]
    }

    #[test]
    fn sia_size_based_prefers_independent_pair() {
        let agent = AuditingAgent::new(db());
        let report = agent
            .audit_sia(&AuditSpec::sia_size_based(candidates()))
            .unwrap();
        assert_eq!(report.best().unwrap().name, "S1+S3");
        // The shared-ToR pair has exactly one unexpected RG ({tor1}).
        let risky = report
            .deployments
            .iter()
            .find(|d| d.name == "S1+S2")
            .unwrap();
        assert_eq!(risky.unexpected_rgs, 1);
        let clean = report.best().unwrap();
        assert_eq!(clean.unexpected_rgs, 0);
    }

    #[test]
    fn sia_probability_based_orders_by_outage_probability() {
        let agent = AuditingAgent::new(db());
        let spec = AuditSpec::sia_probability_based(candidates(), FailureProbModel::new(0.1), 0.1);
        let report = agent.audit_sia(&spec).unwrap();
        assert_eq!(report.best().unwrap().name, "S1+S3");
        let p_clean = report.deployments[0].failure_probability.unwrap();
        let p_risky = report.deployments[1].failure_probability.unwrap();
        assert!(p_clean < p_risky);
    }

    #[test]
    fn sia_sampling_algorithm_agrees_on_best() {
        let agent = AuditingAgent::new(db());
        let spec = AuditSpec {
            algorithm: RgAlgorithm::Sampling {
                rounds: 5000,
                fail_prob: 0.5,
                seed: 7,
                threads: 1,
            },
            ..AuditSpec::sia_size_based(candidates())
        };
        let report = agent.audit_sia(&spec).unwrap();
        assert_eq!(report.best().unwrap().name, "S1+S3");
    }

    #[test]
    fn bdd_algorithm_agrees_with_minimal_and_gives_exact_pr() {
        let agent = AuditingAgent::new(db());
        let minimal = agent
            .audit_sia(&AuditSpec::sia_size_based(candidates()))
            .unwrap();
        let bdd = agent
            .audit_sia(&AuditSpec {
                algorithm: RgAlgorithm::Bdd { max_nodes: 1 << 20 },
                ..AuditSpec::sia_size_based(candidates())
            })
            .unwrap();
        assert_eq!(bdd.best().unwrap().name, minimal.best().unwrap().name);
        for (a, b) in bdd.deployments.iter().zip(&minimal.deployments) {
            assert_eq!(a.ranked_rgs.len(), b.ranked_rgs.len());
        }
        // Probability metric through the BDD path: exact Pr(T).
        let prob = agent
            .audit_sia(&AuditSpec {
                algorithm: RgAlgorithm::Bdd { max_nodes: 1 << 20 },
                ..AuditSpec::sia_probability_based(candidates(), FailureProbModel::new(0.1), 0.1)
            })
            .unwrap();
        assert_eq!(prob.best().unwrap().name, "S1+S3");
        assert!(prob.best().unwrap().failure_probability.unwrap() > 0.0);
    }

    #[test]
    fn empty_spec_rejected() {
        let agent = AuditingAgent::new(db());
        assert!(matches!(
            agent.audit_sia(&AuditSpec::sia_size_based(vec![])),
            Err(AuditError::NoCandidates)
        ));
    }

    #[test]
    fn unknown_server_surfaces_build_error() {
        let agent = AuditingAgent::new(db());
        let spec =
            AuditSpec::sia_size_based(vec![CandidateDeployment::replicated("bad", ["S1", "S404"])]);
        assert!(matches!(
            agent.audit_sia(&spec),
            Err(AuditError::Build(name, _)) if name == "bad"
        ));
    }

    #[test]
    fn agent_from_modules() {
        let truth = parse_records(r#"<hw="H1" type="CPU" dep="cpu-a"/>"#).unwrap();
        let mut modules: Vec<Box<dyn DependencyAcquisitionModule>> =
            vec![Box::new(SimCollector::perfect("lshw", truth))];
        let agent = AuditingAgent::from_modules(&mut modules).unwrap();
        assert_eq!(agent.db().hardware_deps("H1").len(), 1);
    }

    #[test]
    fn what_if_cve_scenario() {
        // Two deployments; a "CVE" takes out tor1, which only the
        // same-rack pair depends on as a single point of failure.
        let agent = AuditingAgent::new(db());
        let spec = AuditSpec::sia_size_based(candidates());
        let outcomes = agent.what_if(&spec, &["tor1"]).unwrap();
        let same = outcomes.iter().find(|o| o.deployment == "S1+S2").unwrap();
        let cross = outcomes.iter().find(|o| o.deployment == "S1+S3").unwrap();
        assert!(same.outage, "shared ToR failure must take down S1+S2");
        assert!(!cross.outage, "S1+S3 must survive tor1");
        assert_eq!(same.affected_components, vec!["tor1"]);
        // A component no deployment uses is a no-op.
        let none = agent.what_if(&spec, &["unknown-package"]).unwrap();
        assert!(none.iter().all(|o| !o.outage));
        // Multi-component blast radius: both disks of one pair.
        let disks = agent.what_if(&spec, &["S1-disk", "S2-disk"]).unwrap();
        assert!(
            disks
                .iter()
                .find(|o| o.deployment == "S1+S2")
                .unwrap()
                .outage
        );
    }

    #[test]
    fn pia_ranking_through_agent() {
        let agent = AuditingAgent::new(DepDb::new());
        let providers = vec![
            ("A".to_string(), vec!["x".to_string(), "y".to_string()]),
            ("B".to_string(), vec!["x".to_string(), "z".to_string()]),
            ("C".to_string(), vec!["q".to_string(), "r".to_string()]),
        ];
        let ranking = agent.audit_pia(&providers, 2, None);
        assert_eq!(ranking.len(), 3);
        // A&B share x; the disjoint pairs rank first.
        assert_eq!(ranking[2].providers, vec!["A", "B"]);
    }
}
