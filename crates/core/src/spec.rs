//! Audit specifications — what the auditing client sends the agent
//! (Step 1 of the workflow in §2).

use indaas_deps::FailureProbModel;
use serde::{Deserialize, Serialize};

/// One candidate redundancy deployment to audit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CandidateDeployment {
    /// Display name in the report ("Rack 5 + Rack 29").
    pub name: String,
    /// The redundant servers.
    pub servers: Vec<String>,
    /// How many replicas must stay alive (1 = plain replication).
    pub needed_alive: usize,
}

impl CandidateDeployment {
    /// Plain replication across `servers` (service survives while any
    /// replica survives).
    pub fn replicated(
        name: impl Into<String>,
        servers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        CandidateDeployment {
            name: name.into(),
            servers: servers.into_iter().map(Into::into).collect(),
            needed_alive: 1,
        }
    }
}

/// Which risk-group detection algorithm to run (§4.1.2).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum RgAlgorithm {
    /// Exact minimal-RG computation, optionally truncated to cut sets of at
    /// most `max_order` events.
    Minimal {
        /// Cut-set order cap (`None` = exact and potentially exponential).
        max_order: Option<usize>,
    },
    /// Monte-Carlo failure sampling.
    Sampling {
        /// Sampling rounds.
        rounds: u64,
        /// Per-event coin-flip failure probability.
        fail_prob: f64,
        /// RNG seed.
        seed: u64,
        /// Worker threads.
        threads: usize,
    },
    /// Binary-decision-diagram compilation: exact cut sets *and* exact
    /// top-event probability (no inclusion–exclusion subset cap).
    Bdd {
        /// Abort if the BDD grows beyond this many nodes.
        max_nodes: usize,
    },
}

impl Default for RgAlgorithm {
    fn default() -> Self {
        RgAlgorithm::Minimal { max_order: None }
    }
}

/// How risk groups are ranked and deployments scored (§4.1.3, §4.1.4).
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub enum RankingMetric {
    /// Rank by RG size; score = Σ sizes (higher = more independent).
    #[default]
    Size,
    /// Rank by relative importance using failure probabilities; score =
    /// Σ importances (lower = more independent).
    Probability {
        /// Probability assumed for components the model does not cover.
        default_prob: f64,
    },
}

/// A full SIA audit specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuditSpec {
    /// Candidate deployments to compare.
    pub candidates: Vec<CandidateDeployment>,
    /// Audit network dependencies.
    pub network: bool,
    /// Audit hardware dependencies.
    pub hardware: bool,
    /// Audit software dependencies.
    pub software: bool,
    /// Risk-group detection algorithm.
    pub algorithm: RgAlgorithm,
    /// Ranking metric.
    pub metric: RankingMetric,
    /// How many top RGs feed each deployment's score (`None` = all).
    pub top_n: Option<usize>,
    /// Failure-probability model for weighting components (used by the
    /// probability metric).
    pub prob_model: Option<FailureProbModel>,
}

impl AuditSpec {
    /// A spec with size-based ranking and the exact minimal-RG algorithm,
    /// auditing all dependency categories.
    pub fn sia_size_based(candidates: Vec<CandidateDeployment>) -> Self {
        AuditSpec {
            candidates,
            network: true,
            hardware: true,
            software: true,
            algorithm: RgAlgorithm::default(),
            metric: RankingMetric::Size,
            top_n: None,
            prob_model: None,
        }
    }

    /// A spec with probability-based ranking.
    pub fn sia_probability_based(
        candidates: Vec<CandidateDeployment>,
        model: FailureProbModel,
        default_prob: f64,
    ) -> Self {
        AuditSpec {
            metric: RankingMetric::Probability { default_prob },
            prob_model: Some(model),
            ..Self::sia_size_based(candidates)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_constructor() {
        let c = CandidateDeployment::replicated("pair", ["S1", "S2"]);
        assert_eq!(c.servers.len(), 2);
        assert_eq!(c.needed_alive, 1);
    }

    #[test]
    fn spec_defaults() {
        let spec = AuditSpec::sia_size_based(vec![]);
        assert!(spec.network && spec.hardware && spec.software);
        assert!(matches!(
            spec.algorithm,
            RgAlgorithm::Minimal { max_order: None }
        ));
        assert!(matches!(spec.metric, RankingMetric::Size));
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = AuditSpec::sia_probability_based(
            vec![CandidateDeployment::replicated("x", ["a", "b"])],
            FailureProbModel::gill_defaults(),
            0.1,
        );
        let json = serde_json::to_string(&spec).unwrap();
        let back: AuditSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.candidates[0].name, "x");
        assert!(matches!(back.metric, RankingMetric::Probability { .. }));
    }
}
