//! `indaas-lint` — run the workspace invariant checker.
//!
//! ```text
//! indaas-lint [--root <dir>] [--report <file>]
//! ```
//!
//! Exits 0 on a clean workspace, 1 with findings on stdout (and in the
//! report file, when asked) otherwise. CI runs this on every build and
//! uploads the report.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use indaas_lint::{run, LintConfig};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: indaas-lint [--root <dir>] [--report <file>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("indaas-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // When run via `cargo run -p indaas-lint` the manifest dir is
        // crates/lint; the workspace root is two levels up.
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let cfg = LintConfig::workspace(root);

    let findings = match run(&cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("indaas-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let mut text = String::new();
    for f in &findings {
        text.push_str(&f.to_string());
        text.push('\n');
    }
    print!("{text}");
    let verdict = format!(
        "indaas-lint: {} finding{} across 4 rules\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    print!("{verdict}");
    if let Some(path) = report {
        let write = std::fs::File::create(&path).and_then(|mut f| {
            f.write_all(text.as_bytes())?;
            f.write_all(verdict.as_bytes())
        });
        if let Err(e) = write {
            eprintln!("indaas-lint: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
