//! Rule 3: **registry_consistency** — fault-point and telemetry names
//! live in exactly one place.
//!
//! The registry modules (`crates/faultinj/src/points.rs`,
//! `crates/service/src/names.rs`) declare `pub const NAME: &str`
//! entries; everything else references the consts. Four checks:
//!
//! 1. a name declared more than once (within or across registries);
//! 2. a non-test string literal equal to a declared name outside the
//!    registries — the site must use the const;
//! 3. a string literal passed straight to a name-taking call
//!    (`point`, `io_point`, `arm`, `counter`, `gauge`, `histo`)
//!    outside the registries — declared or not, the name is drifting;
//! 4. a fault-point-shaped literal (`svc.…`, `fed.…`, `db.…`,
//!    `sched.…`) in non-test code that no registry declares.

use std::collections::HashMap;

use crate::{Finding, LintConfig, Workspace, RULE_REGISTRY};

/// Calls whose string argument is a fault-point or metric name.
const NAME_SINKS: &[&str] = &[
    "point",
    "point_slow",
    "io_point",
    "arm",
    "counter",
    "gauge",
    "histo",
];

pub fn check(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    // Declared name -> (registry file, line).
    let mut declared: HashMap<String, (String, u32)> = HashMap::new();
    for file in &ws.files {
        if !is_registry(cfg, &file.rel) {
            continue;
        }
        for c in &file.consts {
            if let Some((prev_file, prev_line)) = declared.get(&c.value) {
                out.push(Finding {
                    rule: RULE_REGISTRY,
                    file: file.rel.clone(),
                    line: c.line,
                    message: format!(
                        "`{}` (\"{}\") already declared at {prev_file}:{prev_line} — \
                         a name is declared exactly once",
                        c.ident, c.value
                    ),
                });
            } else {
                declared.insert(c.value.clone(), (file.rel.clone(), c.line));
            }
        }
    }

    for file in &ws.files {
        if is_registry(cfg, &file.rel) || file.crate_name == "lint" {
            continue;
        }
        for lit in &file.lits {
            if lit.in_test {
                continue;
            }
            if file.lexed.allowed(RULE_REGISTRY, lit.line) {
                continue;
            }
            if let Some((reg, _)) = declared.get(&lit.value) {
                out.push(Finding {
                    rule: RULE_REGISTRY,
                    file: file.rel.clone(),
                    line: lit.line,
                    message: format!(
                        "string literal \"{}\" duplicates a registry name — \
                         use the const from {reg}",
                        lit.value
                    ),
                });
                continue;
            }
            if lit.ctx.as_deref().is_some_and(|c| NAME_SINKS.contains(&c)) {
                out.push(Finding {
                    rule: RULE_REGISTRY,
                    file: file.rel.clone(),
                    line: lit.line,
                    message: format!(
                        "`{}(\"{}\")` takes a raw name — declare it in a registry module \
                         and pass the const",
                        lit.ctx.as_deref().unwrap_or(""),
                        lit.value
                    ),
                });
                continue;
            }
            if cfg
                .fault_point_prefixes
                .iter()
                .any(|p| lit.value.starts_with(p.as_str()))
                && lit.value.len() > 4
                && lit
                    .value
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b == b'.' || b == b'_')
            {
                out.push(Finding {
                    rule: RULE_REGISTRY,
                    file: file.rel.clone(),
                    line: lit.line,
                    message: format!(
                        "fault-point-shaped literal \"{}\" is not declared in any registry",
                        lit.value
                    ),
                });
            }
        }
    }
}

fn is_registry(cfg: &LintConfig, rel: &str) -> bool {
    cfg.registry_files.iter().any(|r| rel.ends_with(r.as_str()))
}
