pub mod blocking;
pub mod lockorder;
pub mod panicpath;
pub mod registry;
