//! Rule 4: **panic_path** — the daemon's long-running crates don't get
//! to panic casually.
//!
//! `unwrap()`, `expect(..)`, the panicking macros and plain array
//! indexing in non-test code under the configured crates each require
//! an allow-comment saying why the site is infallible (or a rewrite to
//! typed-error / log-and-degrade handling — preferred in hot paths).

use crate::model::PanicKind;
use crate::{Finding, LintConfig, Workspace, RULE_PANIC};

pub fn check(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !cfg
            .panic_dirs
            .iter()
            .any(|d| file.rel.starts_with(d.as_str()))
        {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for p in &f.panics {
                if file.lexed.allowed(RULE_PANIC, p.line) {
                    continue;
                }
                let advice = match p.kind {
                    PanicKind::Unwrap | PanicKind::Expect => {
                        "handle the error or annotate why it is infallible"
                    }
                    PanicKind::Macro => "degrade gracefully or annotate why it is unreachable",
                    PanicKind::Index => "use .get(..) or annotate why the index is in bounds",
                };
                out.push(Finding {
                    rule: RULE_PANIC,
                    file: file.rel.clone(),
                    line: p.line,
                    message: format!(
                        "`{}` in `{}` on a daemon path — {advice} \
                         (`// lint:allow(panic_path) -- <reason>`)",
                        p.what, f.name
                    ),
                });
            }
        }
    }
}
