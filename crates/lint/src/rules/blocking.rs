//! Rule 1: **blocking_in_loop** — nothing reachable from the
//! readiness-loop thread may block.
//!
//! Roots are every non-test fn in the configured root files (the
//! netloop event handlers, the codec pump, the timer wheel). From each
//! root a depth-limited DFS follows name-resolved calls through the
//! configured domain crates; closure bodies handed to
//! `submit`/`spawn` were already excluded by the extractor because
//! they run on the worker pool, not the loop thread.

use std::collections::HashSet;

use crate::model::{CallSite, FnModel};
use crate::{Finding, LintConfig, Workspace, RULE_BLOCKING};

const MAX_DEPTH: usize = 12;

/// Call names that block wherever they appear.
const BLOCKING_NAMES: &[&str] = &[
    "sleep",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "connect",
    "read_to_end",
    "read_to_string",
    "read_line",
];

pub fn check(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let mut seen: HashSet<(usize, u32)> = HashSet::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !cfg
            .blocking_roots
            .iter()
            .any(|r| file.rel.ends_with(r.as_str()))
        {
            continue;
        }
        for (fj, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut visited = HashSet::new();
            let mut path = vec![f.name.clone()];
            dfs(ws, cfg, (fi, fj), &mut visited, &mut path, &mut seen, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    ws: &Workspace,
    cfg: &LintConfig,
    at: (usize, usize),
    visited: &mut HashSet<(usize, usize)>,
    path: &mut Vec<String>,
    seen: &mut HashSet<(usize, u32)>,
    out: &mut Vec<Finding>,
) {
    if !visited.insert(at) || path.len() > MAX_DEPTH {
        return;
    }
    let file = &ws.files[at.0];
    let f = &file.fns[at.1];
    report_sites(file, f, at.0, cfg, path, seen, out);
    for call in &f.calls {
        let Some(next) = ws.resolve_call(call, at.0, &cfg.blocking_domain) else {
            continue;
        };
        if ws.files[next.0].fns[next.1].is_test {
            continue;
        }
        path.push(call.name.clone());
        dfs(ws, cfg, next, visited, path, seen, out);
        path.pop();
    }
}

fn report_sites(
    file: &crate::model::FileModel,
    f: &FnModel,
    fi: usize,
    cfg: &LintConfig,
    path: &[String],
    seen: &mut HashSet<(usize, u32)>,
    out: &mut Vec<Finding>,
) {
    for call in &f.calls {
        let Some(desc) = blocking_call(call) else {
            continue;
        };
        emit(file, fi, call.line, &desc, path, cfg, seen, out);
    }
    for lock in &f.locks {
        if cfg.denied_lock_classes.contains(&lock.class) {
            let desc = format!("acquires denied lock class `{}`", lock.class);
            emit(file, fi, lock.line, &desc, path, cfg, seen, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit(
    file: &crate::model::FileModel,
    fi: usize,
    line: u32,
    desc: &str,
    path: &[String],
    _cfg: &LintConfig,
    seen: &mut HashSet<(usize, u32)>,
    out: &mut Vec<Finding>,
) {
    if file.lexed.allowed(RULE_BLOCKING, line) {
        return;
    }
    if !seen.insert((fi, line)) {
        return;
    }
    out.push(Finding {
        rule: RULE_BLOCKING,
        file: file.rel.clone(),
        line,
        message: format!(
            "{desc}, reachable from the readiness loop via {}",
            path.join(" -> ")
        ),
    });
}

/// Is this call blocking on its face?
fn blocking_call(call: &CallSite) -> Option<String> {
    if BLOCKING_NAMES.contains(&call.name.as_str()) {
        return Some(format!("calls blocking `{}`", qualified(call)));
    }
    // `handle.join()` blocks; `parts.join(", ")` does not — arity
    // tells them apart.
    if call.method && call.name == "join" && call.zero_arg {
        return Some("calls blocking `.join()`".to_string());
    }
    // std::fs::* / fs::* / File::* — filesystem IO.
    if call.path.iter().any(|s| s == "fs" || s == "File") {
        return Some(format!("calls filesystem op `{}`", qualified(call)));
    }
    // Socket read/write with a buffer argument on the connection
    // stream (or its reader/writer halves). The loop's streams are
    // nonblocking by construction, so legitimate sites carry an allow
    // with that reason.
    const SOCKET_RECVS: &[&str] = &["stream", "sock", "socket", "reader", "writer"];
    if call.method
        && (call.name == "read" || call.name == "write")
        && call
            .recv
            .as_deref()
            .is_some_and(|r| SOCKET_RECVS.contains(&r))
    {
        return Some(format!("socket `{}` on the loop thread", qualified(call)));
    }
    None
}

fn qualified(call: &CallSite) -> String {
    if call.path.is_empty() {
        if call.method {
            format!(".{}()", call.name)
        } else {
            format!("{}()", call.name)
        }
    } else {
        format!("{}()", call.path.join("::"))
    }
}
