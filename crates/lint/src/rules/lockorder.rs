//! Rule 2: **lock_order** — lock nesting must be cycle-free, and
//! repeated same-class (shard) acquisition must carry ascending-order
//! evidence.
//!
//! Lock *classes* are crate-qualified field names (`deps::write`,
//! `service::queue`): the extractor records each `.lock()`/`.read()`/
//! `.write()` site, which guards are `let`-held, and which calls
//! happen while a guard is live. Three checks:
//!
//! 1. **self-nesting** — acquiring class A while an A guard is held is
//!    only legal with ascending-order evidence in the fn (the PR-4
//!    sharded-DB discipline: a `sort*` call over the index set, or the
//!    `debug_assert!(hit.windows(2)...)` assertion) or an allow.
//! 2. **guard retention in a loop** — `guards.push(lock_shard(i))`
//!    inside a loop retains one guard per iteration; the enclosing fn
//!    needs the same evidence.
//! 3. **cross-class cycles** — the workspace-wide nesting digraph
//!    (direct pairs plus one level of calls-while-held) must be
//!    acyclic.

use std::collections::{HashMap, HashSet};

use crate::{Finding, LintConfig, Workspace, RULE_LOCK_ORDER};

pub fn check(ws: &Workspace, _cfg: &LintConfig, out: &mut Vec<Finding>) {
    // class -> class -> example (file rel, line, fn name)
    let mut edges: HashMap<String, HashMap<String, (String, u32, String)>> = HashMap::new();
    let mut memo: HashMap<(usize, usize), HashSet<String>> = HashMap::new();

    for (fi, file) in ws.files.iter().enumerate() {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for (held, acquired, line) in &f.nest_pairs {
                if held == acquired {
                    if !f.ordering_evidence && !file.lexed.allowed(RULE_LOCK_ORDER, *line) {
                        out.push(Finding {
                            rule: RULE_LOCK_ORDER,
                            file: file.rel.clone(),
                            line: *line,
                            message: format!(
                                "`{}` acquires lock class `{held}` while already holding it, \
                                 with no ascending-order evidence (sort the indices or assert \
                                 `windows(2)` ordering)",
                                f.name
                            ),
                        });
                    }
                    continue;
                }
                edges
                    .entry(held.clone())
                    .or_default()
                    .entry(acquired.clone())
                    .or_insert((file.rel.clone(), *line, f.name.clone()));
            }
            // Calls made while holding a guard: the callee's
            // (transitively) acquired classes nest under the held one.
            for (held, call_idx) in &f.held_calls {
                let Some(call) = f.calls.get(*call_idx) else {
                    continue;
                };
                let (callee, line) = (&call.name, &call.line);
                let Some(target) = ws.resolve_call(call, fi, &[]) else {
                    continue;
                };
                let acquired = acquired_classes(ws, target, 2, &mut memo);
                for class in acquired {
                    if &class == held {
                        if !f.ordering_evidence && !file.lexed.allowed(RULE_LOCK_ORDER, *line) {
                            out.push(Finding {
                                rule: RULE_LOCK_ORDER,
                                file: file.rel.clone(),
                                line: *line,
                                message: format!(
                                    "`{}` calls `{callee}` (which acquires `{class}`) while \
                                     holding `{held}` — same-class nesting needs ascending-order \
                                     evidence",
                                    f.name
                                ),
                            });
                        }
                        continue;
                    }
                    edges
                        .entry(held.clone())
                        .or_default()
                        .entry(class.clone())
                        .or_insert((file.rel.clone(), *line, f.name.clone()));
                }
            }
            // Guard retention in a loop: a call inside a loop whose
            // result lands in a `.push(..)` and whose callee acquires
            // locks keeps one guard per iteration.
            for call in &f.calls {
                if !call.in_loop || call.ctx.as_deref() != Some("push") {
                    continue;
                }
                let Some(target) = ws.resolve_call(call, fi, &[]) else {
                    continue;
                };
                let acquired = acquired_classes(ws, target, 2, &mut memo);
                if acquired.is_empty() {
                    continue;
                }
                if f.ordering_evidence || file.lexed.allowed(RULE_LOCK_ORDER, call.line) {
                    continue;
                }
                let mut classes: Vec<&String> = acquired.iter().collect();
                classes.sort();
                out.push(Finding {
                    rule: RULE_LOCK_ORDER,
                    file: file.rel.clone(),
                    line: call.line,
                    message: format!(
                        "`{}` retains `{}` guards ({}) across loop iterations without \
                         ascending-order evidence",
                        f.name,
                        call.name,
                        classes
                            .iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }

    report_cycles(&edges, out);
}

/// Lock classes `at` acquires, following calls to `depth`.
fn acquired_classes(
    ws: &Workspace,
    at: (usize, usize),
    depth: usize,
    memo: &mut HashMap<(usize, usize), HashSet<String>>,
) -> HashSet<String> {
    if let Some(hit) = memo.get(&at) {
        return hit.clone();
    }
    let f = &ws.files[at.0].fns[at.1];
    let mut acc: HashSet<String> = f.locks.iter().map(|l| l.class.clone()).collect();
    // Seed the memo before recursing to break call cycles.
    memo.insert(at, acc.clone());
    if depth > 0 {
        for call in &f.calls {
            if let Some(next) = ws.resolve_call(call, at.0, &[]) {
                if next != at {
                    acc.extend(acquired_classes(ws, next, depth - 1, memo));
                }
            }
        }
    }
    memo.insert(at, acc.clone());
    acc
}

/// DFS cycle detection over the class digraph; each distinct cycle
/// (by its set of classes) is reported once, with the edge examples.
fn report_cycles(
    edges: &HashMap<String, HashMap<String, (String, u32, String)>>,
    out: &mut Vec<Finding>,
) {
    let mut nodes: Vec<&String> = edges.keys().collect();
    nodes.sort();
    let mut reported: HashSet<Vec<String>> = HashSet::new();
    for start in nodes {
        let mut stack = vec![(start.clone(), vec![start.clone()])];
        let mut visited = HashSet::new();
        while let Some((node, path)) = stack.pop() {
            let Some(nexts) = edges.get(&node) else {
                continue;
            };
            let mut keys: Vec<&String> = nexts.keys().collect();
            keys.sort();
            for next in keys {
                if next == start {
                    // Cycle closed.
                    let mut key = path.clone();
                    key.sort();
                    if reported.insert(key) {
                        let (file, line, func) = &nexts[next];
                        out.push(Finding {
                            rule: RULE_LOCK_ORDER,
                            file: file.clone(),
                            line: *line,
                            message: format!(
                                "lock-order cycle: {} -> {} (closing edge in `{func}`) — \
                                 pick one global order",
                                path.join(" -> "),
                                start
                            ),
                        });
                    }
                    continue;
                }
                if path.contains(next) || !visited.insert(next.clone()) {
                    continue;
                }
                let mut p = path.clone();
                p.push(next.clone());
                stack.push((next.clone(), p));
            }
        }
    }
}
