//! A small, total Rust tokenizer.
//!
//! The lint never parses Rust properly — it lexes it. The lexer's one
//! hard requirement is *totality*: any byte sequence, however
//! malformed, must tokenize without panicking (the proptests in
//! `tests/lexer_props.rs` hold it to that). Comments, cooked strings,
//! raw strings, byte strings and char literals are recognized so that
//! rule matching never fires on text inside them; `lint:allow`
//! annotations are harvested from comments on the way through.

/// What a token is, coarsely. The rules only ever need identifiers,
/// string-literal *values*, lifetimes and single punctuation bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `submit`, ...).
    Ident,
    /// Integer/float literal (lexed loosely; value unused).
    Num,
    /// Cooked, raw or byte string literal. `text` holds the *content*
    /// (between the quotes, escapes left as written).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation byte (`{`, `.`, `!`, ...).
    Punct(u8),
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier text or string-literal content; empty for punct/num.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// A `// lint:allow(<rule>) -- <reason>` annotation found in a comment.
#[derive(Debug, Clone)]
pub struct AllowAnnotation {
    pub rule: String,
    /// Reason text after `--`, trimmed; empty when missing (itself a
    /// finding — every allow must say why).
    pub reason: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// Line of code the annotation governs: the comment's own line for
    /// a trailing comment, the next code line for a standalone one.
    pub target_line: u32,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowAnnotation>,
}

impl Lexed {
    /// Is `line` covered by an allow for `rule`?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.target_line == line)
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }
    fn peek_at(&self, off: usize) -> Option<u8> {
        self.b.get(self.i + off).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    is_ident_start(c) || c.is_ascii_digit()
}

/// Tokenize `src`. Total: never panics, never loops forever — every
/// iteration of the main loop consumes at least one byte.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        b: src.as_bytes(),
        i: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    // Standalone-comment annotations waiting for the next code line;
    // resolved when the next token is emitted.
    let mut pending: Vec<AllowAnnotation> = Vec::new();

    while let Some(c) = cur.peek() {
        // Comments first (line, then nested block), harvesting allows.
        if c == b'/' && cur.peek_at(1) == Some(b'/') {
            let line = cur.line;
            let start = cur.i;
            while cur.peek().is_some_and(|c| c != b'\n') {
                cur.bump();
            }
            harvest_allow(&cur.b[start..cur.i], line, &out, &mut pending);
            continue;
        }
        if c == b'/' && cur.peek_at(1) == Some(b'*') {
            let line = cur.line;
            let start = cur.i;
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            harvest_allow(&cur.b[start..cur.i], line, &out, &mut pending);
            continue;
        }
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }

        let line = cur.line;
        let tok = lex_token(&mut cur, c, line);
        for mut ann in pending.drain(..) {
            // Trailing comments arrive already resolved; standalone
            // ones (target 0) bind to this first following code line.
            if ann.target_line == 0 {
                ann.target_line = tok.line;
            }
            out.allows.push(ann);
        }
        out.tokens.push(tok);
    }
    // Annotations at EOF with no code after them target line 0 (match
    // nothing) but still surface in the missing-reason check.
    out.allows.append(&mut pending);
    out
}

fn lex_token(cur: &mut Cursor, c: u8, line: u32) -> Token {
    // String-ish prefixes: r" r#" b" br" b' and raw idents r#name.
    if c == b'r' || c == b'b' {
        if let Some(tok) = lex_prefixed_literal(cur, line) {
            return tok;
        }
    }
    match c {
        b'"' => {
            cur.bump();
            let content = cooked_string(cur);
            Token {
                kind: TokKind::Str,
                text: content,
                line,
            }
        }
        b'\'' => lex_quote(cur, line),
        c if is_ident_start(c) => {
            let start = cur.i;
            while cur.peek().is_some_and(is_ident_cont) {
                cur.bump();
            }
            let text = String::from_utf8_lossy(&cur.b[start..cur.i]).into_owned();
            Token {
                kind: TokKind::Ident,
                text,
                line,
            }
        }
        c if c.is_ascii_digit() => {
            // Loose: digits then trailing alphanumerics/underscores
            // (hex digits, suffixes). `1.5` lexes as Num '.' Num.
            while cur.peek().is_some_and(is_ident_cont) {
                cur.bump();
            }
            Token {
                kind: TokKind::Num,
                text: String::new(),
                line,
            }
        }
        c => {
            cur.bump();
            Token {
                kind: TokKind::Punct(c),
                text: String::new(),
                line,
            }
        }
    }
}

/// At `r` or `b`: lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, or
/// a raw ident `r#name`. Returns None (consuming nothing) when this is
/// just an ordinary identifier starting with r/b.
fn lex_prefixed_literal(cur: &mut Cursor, line: u32) -> Option<Token> {
    let c0 = cur.peek()?;
    let mut off = 1;
    let mut raw = c0 == b'r';
    if c0 == b'b' {
        match cur.peek_at(off) {
            Some(b'r') => {
                raw = true;
                off += 1;
            }
            Some(b'"') => {
                // b"…": cooked byte string.
                cur.bump();
                cur.bump();
                let content = cooked_string(cur);
                return Some(Token {
                    kind: TokKind::Str,
                    text: content,
                    line,
                });
            }
            Some(b'\'') => {
                // b'x': byte literal.
                cur.bump();
                return Some(lex_quote_as_char(cur, line));
            }
            _ => return None,
        }
    }
    if !raw {
        return None;
    }
    // Count hashes after r / br.
    let mut hashes = 0usize;
    while cur.peek_at(off + hashes) == Some(b'#') {
        hashes += 1;
    }
    match cur.peek_at(off + hashes) {
        Some(b'"') => {
            // Consume prefix, hashes, opening quote.
            for _ in 0..(off + hashes + 1) {
                cur.bump();
            }
            let start = cur.i;
            let mut end = cur.i;
            'scan: while let Some(c) = cur.peek() {
                if c == b'"' {
                    // Need `hashes` '#' right after to close.
                    let mut ok = true;
                    for h in 0..hashes {
                        if cur.peek_at(1 + h) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        end = cur.i;
                        for _ in 0..(1 + hashes) {
                            cur.bump();
                        }
                        break 'scan;
                    }
                }
                cur.bump();
                end = cur.i;
            }
            let text = String::from_utf8_lossy(&cur.b[start..end]).into_owned();
            Some(Token {
                kind: TokKind::Str,
                text,
                line,
            })
        }
        _ if hashes > 0 && c0 == b'r' && cur.peek_at(off + hashes).is_some_and(is_ident_start) => {
            // Raw ident r#name.
            for _ in 0..(off + hashes) {
                cur.bump();
            }
            let start = cur.i;
            while cur.peek().is_some_and(is_ident_cont) {
                cur.bump();
            }
            let text = String::from_utf8_lossy(&cur.b[start..cur.i]).into_owned();
            Some(Token {
                kind: TokKind::Ident,
                text,
                line,
            })
        }
        _ => None,
    }
}

/// At a `'`: lifetime or char literal.
fn lex_quote(cur: &mut Cursor, line: u32) -> Token {
    cur.bump(); // consume '\''
    match cur.peek() {
        Some(c) if is_ident_start(c) => {
            // 'a' (char) vs 'a / 'static (lifetime): a single
            // ident-char followed by a closing quote is a char.
            let start = cur.i;
            while cur.peek().is_some_and(is_ident_cont) {
                cur.bump();
            }
            if cur.peek() == Some(b'\'') && cur.i == start + 1 {
                cur.bump();
                Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                }
            } else {
                let text = String::from_utf8_lossy(&cur.b[start..cur.i]).into_owned();
                Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                }
            }
        }
        _ => char_body(cur, line),
    }
}

/// After `b` with cursor on `'`: byte literal.
fn lex_quote_as_char(cur: &mut Cursor, line: u32) -> Token {
    cur.bump(); // consume '\''
    char_body(cur, line)
}

/// Consume the body of a char/byte literal (cursor past the opening
/// quote, not on an ident start — or on an escape).
fn char_body(cur: &mut Cursor, line: u32) -> Token {
    match cur.peek() {
        Some(b'\\') => {
            cur.bump();
            cur.bump(); // escape head (n, t, x, u, ', \\ ...)
            if cur.peek() == Some(b'{') {
                // \u{…}
                while let Some(c) = cur.bump() {
                    if c == b'}' {
                        break;
                    }
                }
            } else if cur.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                // \xNN second digit
                cur.bump();
            }
        }
        Some(b'\'') | None => {}
        Some(_) => {
            cur.bump();
        }
    }
    if cur.peek() == Some(b'\'') {
        cur.bump();
    }
    Token {
        kind: TokKind::Char,
        text: String::new(),
        line,
    }
}

/// Consume a cooked string body after the opening quote; returns the
/// content. Handles escapes; tolerates EOF mid-string.
fn cooked_string(cur: &mut Cursor) -> String {
    let start = cur.i;
    let mut end = cur.i;
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            end = cur.i;
            continue;
        }
        if c == b'"' {
            end = cur.i;
            cur.bump();
            return String::from_utf8_lossy(&cur.b[start..end]).into_owned();
        }
        cur.bump();
        end = cur.i;
    }
    String::from_utf8_lossy(&cur.b[start..end]).into_owned()
}

fn harvest_allow(comment: &[u8], line: u32, out: &Lexed, pending: &mut Vec<AllowAnnotation>) {
    let text = String::from_utf8_lossy(comment);
    let Some(idx) = text.find("lint:allow(") else {
        return;
    };
    let rest = &text[idx + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else { return };
    let rule = rest[..close].trim().to_string();
    let after = &rest[close + 1..];
    let reason = after
        .find("--")
        .map(|i| after[i + 2..].trim().to_string())
        .unwrap_or_default();
    // Trailing comment (code earlier on the same line) governs its own
    // line; a standalone one stays unresolved (target 0) and binds to
    // the next code line when `lex` flushes `pending`.
    let target_line = if out.tokens.last().is_some_and(|t| t.line == line) {
        line
    } else {
        0
    };
    pending.push(AllowAnnotation {
        rule,
        reason,
        comment_line: line,
        target_line,
    });
}
