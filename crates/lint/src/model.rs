//! Per-file extraction: functions, call sites, lock acquisitions,
//! panic sites, string literals and `pub const` declarations.
//!
//! This is deliberately a *model*, not an AST — a single forward walk
//! over the token stream with a little context (paren depth, brace
//! depth, loop scopes, `let`-bound lock guards). It is approximate in
//! the ways a lexer-level tool must be, and exact in the ways the four
//! rules need: lines are right, string/comment text never leaks into
//! code matching, and closure bodies handed to `submit`/`spawn` are
//! excluded from the caller's call graph (they run on another thread).

use crate::lexer::{lex, Lexed, TokKind, Token};

/// How a panic can reach the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    Unwrap,
    Expect,
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
    Macro,
    /// `x[i]` indexing without a `..` range inside the brackets.
    Index,
}

#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    pub line: u32,
    /// The macro name or method name, for the report.
    pub what: String,
}

#[derive(Debug, Clone)]
pub struct CallSite {
    /// Final path segment (`sleep` for `thread::sleep`).
    pub name: String,
    /// Qualified path segments, including `name` last; empty for bare
    /// and method calls.
    pub path: Vec<String>,
    pub line: u32,
    pub method: bool,
    /// For method calls, the identifier immediately before the dot
    /// (`stream` in `stream.read(..)`), when it is a plain ident.
    pub recv: Option<String>,
    pub in_loop: bool,
    /// Name of the enclosing call whose argument list contains this
    /// call (`push` in `guards.push(self.lock_shard(i))`).
    pub ctx: Option<String>,
    /// `f()` with an empty argument list — distinguishes
    /// `handle.join()` (blocking) from `parts.join(", ")` (string op).
    pub zero_arg: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwRead,
    RwWrite,
}

#[derive(Debug, Clone)]
pub struct LockSite {
    /// Crate-qualified class, e.g. `deps::write`, `service::queue`.
    pub class: String,
    pub kind: LockKind,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct LitSite {
    pub value: String,
    pub line: u32,
    /// Enclosing call name, when the literal is a direct argument
    /// somewhere inside one (`counter` for `registry.counter("x")`).
    pub ctx: Option<String>,
    pub in_test: bool,
}

#[derive(Debug, Clone)]
pub struct ConstDecl {
    pub ident: String,
    pub value: String,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct FnModel {
    pub name: String,
    pub line: u32,
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    pub panics: Vec<PanicSite>,
    /// (held class, acquired class, line) nesting pairs.
    pub nest_pairs: Vec<(String, String, u32)>,
    /// (held class, index into `calls`): calls made while a lock is held.
    pub held_calls: Vec<(String, usize)>,
    /// Does the body carry ascending-order evidence (a `sort*` call or
    /// a `debug_assert!` over `windows`)? Used by the lock-order rule.
    pub ordering_evidence: bool,
}

#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// `service` for `crates/service/...`, `root` for `src/...`,
    /// `tests` for top-level tests.
    pub crate_name: String,
    pub lexed: Lexed,
    pub fns: Vec<FnModel>,
    pub consts: Vec<ConstDecl>,
    pub lits: Vec<LitSite>,
}

/// Calls whose closure arguments run on another thread: code inside
/// their parens is *not* part of the caller's synchronous path.
const DEFER_CALLS: &[&str] = &["submit", "spawn"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("src") => "root".to_string(),
        Some("tests") => "tests".to_string(),
        _ => "unknown".to_string(),
    }
}

pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/fixtures/")
}

impl FileModel {
    pub fn build(rel: &str, src: &str) -> FileModel {
        let lexed = lex(src);
        let crate_name = crate_of(rel);
        let file_test = is_test_path(rel);
        let mut fns = Vec::new();
        let mut consts = Vec::new();
        let mut test_ranges: Vec<(usize, usize)> = Vec::new();
        scan_items(
            &lexed.tokens,
            0,
            lexed.tokens.len(),
            file_test,
            &crate_name,
            &mut fns,
            &mut consts,
            &mut test_ranges,
        );
        let lits = collect_lits(&lexed.tokens, &test_ranges, file_test);
        FileModel {
            rel: rel.to_string(),
            crate_name,
            lexed,
            fns,
            consts,
            lits,
        }
    }
}

/// Walk a token range looking for items. `fn` bodies are handed to
/// [`extract_fn`] and skipped; `#[cfg(test)] mod` bodies recurse with
/// the test flag set; everything else is stepped through so items at
/// any nesting (impl blocks, modules) are found.
#[allow(clippy::too_many_arguments)]
fn scan_items(
    toks: &[Token],
    start: usize,
    end: usize,
    in_test: bool,
    crate_name: &str,
    fns: &mut Vec<FnModel>,
    consts: &mut Vec<ConstDecl>,
    test_ranges: &mut Vec<(usize, usize)>,
) {
    let mut i = start;
    let mut pending_test = false;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        // Attribute: #[...] — inspect for test markers, then skip.
        if t.is_punct(b'#') && toks.get(i + 1).is_some_and(|t| t.is_punct(b'[')) {
            let close = match_bracket(toks, i + 1, end, b'[', b']');
            let body = &toks[i + 2..close.min(toks.len())];
            let has_test = body.iter().any(|t| t.is_ident("test"));
            if has_test {
                pending_test = true;
            }
            i = close.saturating_add(1);
            continue;
        }
        if t.is_ident("mod") && toks.get(i + 1).map(|t| t.kind.clone()) == Some(TokKind::Ident) {
            // `mod name { ... }` or `mod name;`
            if let Some(open) = find_at(toks, i + 2, end, b'{', b';') {
                if toks[open].is_punct(b'{') {
                    let close = match_bracket(toks, open, end, b'{', b'}');
                    let mod_test = in_test || pending_test;
                    if mod_test && !in_test {
                        test_ranges.push((open, close));
                    }
                    scan_items(
                        toks,
                        open + 1,
                        close,
                        mod_test,
                        crate_name,
                        fns,
                        consts,
                        test_ranges,
                    );
                    pending_test = false;
                    i = close.saturating_add(1);
                    continue;
                }
            }
            pending_test = false;
            i += 2;
            continue;
        }
        if t.is_ident("fn") && toks.get(i + 1).map(|t| t.kind.clone()) == Some(TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // Find the body `{` (or `;` for a bodiless decl), skipping
            // the signature: parens and angle brackets may nest.
            if let Some(open) = find_body_open(toks, i + 2, end) {
                let close = match_bracket(toks, open, end, b'{', b'}');
                let is_test = in_test || pending_test;
                if is_test && !in_test {
                    test_ranges.push((open, close));
                }
                fns.push(extract_fn(
                    toks,
                    &name,
                    line,
                    open + 1,
                    close,
                    is_test,
                    crate_name,
                ));
                pending_test = false;
                i = close.saturating_add(1);
                continue;
            }
            pending_test = false;
            i += 2;
            continue;
        }
        if t.is_ident("const") && toks.get(i + 1).map(|t| t.kind.clone()) == Some(TokKind::Ident) {
            // `const NAME: &str = "value";` (pub handled by stepping).
            if let Some(decl) = parse_const_str(toks, i) {
                consts.push(decl);
            }
        }
        // `;` or `}` between an attribute and an item means the
        // attribute belonged to something we don't model; drop it.
        if t.is_punct(b';') || t.is_punct(b'}') {
            pending_test = false;
        }
        i += 1;
    }
}

/// From `start`, find the `{` opening a fn body, or None if a `;`
/// (bodiless declaration) comes first. Tracks paren/bracket depth so
/// braces in default generic args or where-clauses don't confuse it.
fn find_body_open(toks: &[Token], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = start;
    while i < end.min(toks.len()) {
        match toks[i].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
            TokKind::Punct(b'{') if depth <= 0 => return Some(i),
            TokKind::Punct(b';') if depth <= 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Find the first of `want`/`alt` at any position from `start`.
fn find_at(toks: &[Token], start: usize, end: usize, want: u8, alt: u8) -> Option<usize> {
    (start..end.min(toks.len())).find(|&i| toks[i].is_punct(want) || toks[i].is_punct(alt))
}

/// Index of the matching close bracket for the open at `open`;
/// saturates to `end` when unbalanced (malformed input must not panic).
fn match_bracket(toks: &[Token], open: usize, end: usize, ob: u8, cb: u8) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end.min(toks.len()) {
        if toks[i].is_punct(ob) {
            depth += 1;
        } else if toks[i].is_punct(cb) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.min(toks.len())
}

fn parse_const_str(toks: &[Token], i: usize) -> Option<ConstDecl> {
    // const IDENT : & str = "value" ;
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    if !toks.get(i + 2)?.is_punct(b':') {
        return None;
    }
    if !toks.get(i + 3)?.is_punct(b'&') {
        return None;
    }
    if !toks.get(i + 4)?.is_ident("str") {
        return None;
    }
    if !toks.get(i + 5)?.is_punct(b'=') {
        return None;
    }
    let val = toks.get(i + 6)?;
    if val.kind != TokKind::Str {
        return None;
    }
    Some(ConstDecl {
        ident: name.text.clone(),
        value: val.text.clone(),
        line: name.line,
    })
}

struct Hold {
    var: String,
    class: String,
    brace_depth: i32,
}

/// One forward pass over a fn body.
#[allow(clippy::too_many_arguments)]
fn extract_fn(
    toks: &[Token],
    name: &str,
    line: u32,
    start: usize,
    end: usize,
    is_test: bool,
    crate_name: &str,
) -> FnModel {
    let end = end.min(toks.len());
    let mut f = FnModel {
        name: name.to_string(),
        line,
        is_test,
        calls: Vec::new(),
        locks: Vec::new(),
        panics: Vec::new(),
        nest_pairs: Vec::new(),
        held_calls: Vec::new(),
        ordering_evidence: false,
    };
    let mut paren_depth = 0i32;
    let mut brace_depth = 0i32;
    // Loop scopes: brace depth just inside each open loop body.
    let mut loop_scopes: Vec<i32> = Vec::new();
    let mut pending_loop = false;
    // Call-argument context: (callee name, paren depth at entry).
    let mut call_stack: Vec<(String, i32)> = Vec::new();
    // Token index where the current deferred (submit/spawn) region ends.
    let mut defer_end: usize = 0;
    let mut holds: Vec<Hold> = Vec::new();
    // `let`-bound variable of the statement being scanned, if simple.
    let mut stmt_let: Option<String> = None;
    let mut saw_debug_assert = false;
    let mut saw_windows = false;

    let mut j = start;
    while j < end {
        let t = &toks[j];
        let deferred = j < defer_end;
        match &t.kind {
            TokKind::Punct(b'(') => paren_depth += 1,
            TokKind::Punct(b')') => {
                paren_depth -= 1;
                while call_stack.last().is_some_and(|(_, d)| *d > paren_depth) {
                    call_stack.pop();
                }
            }
            TokKind::Punct(b'{') => {
                brace_depth += 1;
                if pending_loop && paren_depth == 0 {
                    loop_scopes.push(brace_depth);
                    pending_loop = false;
                }
            }
            TokKind::Punct(b'}') => {
                brace_depth -= 1;
                holds.retain(|h| h.brace_depth <= brace_depth);
                while loop_scopes.last().is_some_and(|d| *d > brace_depth) {
                    loop_scopes.pop();
                }
                stmt_let = None;
            }
            TokKind::Punct(b';') if paren_depth == 0 => {
                stmt_let = None;
                pending_loop = false;
            }
            TokKind::Punct(b'[') => {
                // Index-expression panic site: `x[i]` / `f()[0]` /
                // `m[k][v]` — never `#[attr]`, types, slice patterns.
                let prev_is_value = j > start
                    && match &toks[j - 1].kind {
                        // `for x in [..]`, `return [..]` etc. are array
                        // literals, not index expressions.
                        TokKind::Ident => !matches!(
                            toks[j - 1].text.as_str(),
                            "in" | "return"
                                | "else"
                                | "break"
                                | "match"
                                | "move"
                                | "as"
                                | "let"
                                | "mut"
                                | "ref"
                                | "if"
                                | "while"
                        ),
                        TokKind::Punct(b')') | TokKind::Punct(b']') => true,
                        _ => false,
                    };
                if prev_is_value {
                    let close = match_bracket(toks, j, end, b'[', b']');
                    let inner = &toks[j + 1..close.min(toks.len())];
                    let has_range = inner
                        .windows(2)
                        .any(|w| w[0].is_punct(b'.') && w[1].is_punct(b'.'));
                    if !inner.is_empty() && !has_range {
                        f.panics.push(PanicSite {
                            kind: PanicKind::Index,
                            line: t.line,
                            what: "[index]".to_string(),
                        });
                    }
                }
            }
            TokKind::Str => {}
            TokKind::Ident => {
                let text = t.text.as_str();
                if text == "debug_assert" {
                    saw_debug_assert = true;
                }
                if text == "windows" {
                    saw_windows = true;
                }
                if text.starts_with("sort") {
                    f.ordering_evidence = true;
                }
                match text {
                    "for" | "while" | "loop" => {
                        pending_loop = true;
                        j += 1;
                        continue;
                    }
                    "let" => {
                        // `let [mut] IDENT =` — only simple bindings
                        // participate in guard-hold tracking.
                        let mut k = j + 1;
                        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                            k += 1;
                        }
                        // `let Some(g) = ...` / `let (a, b) = ...` are
                        // patterns, not simple bindings — skip those.
                        let pattern = toks.get(k + 1).is_some_and(|t| t.is_punct(b'('));
                        stmt_let = match toks.get(k) {
                            Some(t) if t.kind == TokKind::Ident && !pattern => Some(t.text.clone()),
                            _ => None,
                        };
                        j = k;
                        continue;
                    }
                    _ => {}
                }
                let next = toks.get(j + 1);
                // Macro invocation: name!(...) — only panic macros and
                // assertion evidence matter; args flow through the walk.
                if next.is_some_and(|t| t.is_punct(b'!')) {
                    if PANIC_MACROS.contains(&text) {
                        f.panics.push(PanicSite {
                            kind: PanicKind::Macro,
                            line: t.line,
                            what: format!("{text}!"),
                        });
                    }
                    j += 1;
                    continue;
                }
                // Call: name(...)
                if next.is_some_and(|t| t.is_punct(b'(')) && !is_decl_head(toks, j, start) {
                    let method = j > start && toks[j - 1].is_punct(b'.');
                    let path = if method {
                        Vec::new()
                    } else {
                        path_of(toks, j, start)
                    };
                    let recv = if method && j >= 2 {
                        match &toks[j - 2].kind {
                            TokKind::Ident => Some(toks[j - 2].text.clone()),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let ctx = call_stack.last().map(|(n, _)| n.clone());
                    let zero_arg = toks.get(j + 2).is_some_and(|t| t.is_punct(b')'));

                    // `drop(guard)` releases a held lock.
                    if !method && text == "drop" {
                        if let (Some(v), Some(c)) = (toks.get(j + 2), toks.get(j + 3)) {
                            if v.kind == TokKind::Ident && c.is_punct(b')') {
                                holds.retain(|h| h.var != v.text);
                            }
                        }
                    }

                    // Lock acquisition?
                    let lock_kind = if method && zero_arg {
                        match text {
                            "lock" | "try_lock" => Some(LockKind::Mutex),
                            "read" => Some(LockKind::RwRead),
                            "write" => Some(LockKind::RwWrite),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    if !deferred {
                        if let Some(kind) = lock_kind {
                            let field = recv.clone().unwrap_or_else(|| "anon".to_string());
                            let class = format!("{crate_name}::{field}");
                            for h in &holds {
                                f.nest_pairs.push((h.class.clone(), class.clone(), t.line));
                            }
                            f.locks.push(LockSite {
                                class: class.clone(),
                                kind,
                                line: t.line,
                            });
                            // `let g = m.lock().expect(..)` binds a
                            // guard; `let r = m.lock().expect(..).op()`
                            // binds `op`'s result and drops the guard
                            // at statement end — only the former holds.
                            if guard_reaches_binding(toks, j + 1, end) {
                                if let Some(var) = stmt_let.take() {
                                    holds.push(Hold {
                                        var,
                                        class,
                                        brace_depth,
                                    });
                                }
                            }
                        } else {
                            for h in &holds {
                                f.held_calls.push((h.class.clone(), f.calls.len()));
                            }
                            f.calls.push(CallSite {
                                name: text.to_string(),
                                path,
                                line: t.line,
                                method,
                                recv,
                                in_loop: !loop_scopes.is_empty(),
                                ctx,
                                zero_arg,
                            });
                        }
                    }
                    // Panic-y method calls are tracked even in deferred
                    // regions — the closure still runs somewhere.
                    if method && text == "unwrap" && zero_arg {
                        f.panics.push(PanicSite {
                            kind: PanicKind::Unwrap,
                            line: t.line,
                            what: "unwrap()".to_string(),
                        });
                    }
                    if method && text == "expect" {
                        f.panics.push(PanicSite {
                            kind: PanicKind::Expect,
                            line: t.line,
                            what: "expect()".to_string(),
                        });
                    }
                    // Deferred region: closure args to submit/spawn run
                    // on another thread — exclude from this fn's graph.
                    if DEFER_CALLS.contains(&text) {
                        let close = match_bracket(toks, j + 1, end, b'(', b')');
                        defer_end = defer_end.max(close);
                    }
                    call_stack.push((text.to_string(), paren_depth + 1));
                }
            }
            _ => {}
        }
        j += 1;
    }
    if saw_debug_assert && saw_windows {
        f.ordering_evidence = true;
    }
    f
}

/// After a `.lock()` whose `(` sits at `open`: does the guard itself
/// reach the binding? Chains through the unwrap family keep the guard
/// (`.expect(..)`, `.unwrap()`, `.unwrap_or_else(..)`); any other
/// method chained on makes the lock a statement temporary.
fn guard_reaches_binding(toks: &[Token], open: usize, end: usize) -> bool {
    let mut k = match_bracket(toks, open, end, b'(', b')') + 1;
    loop {
        if !toks.get(k).is_some_and(|t| t.is_punct(b'.')) {
            return true;
        }
        let Some(name) = toks.get(k + 1) else {
            return true;
        };
        if name.kind != TokKind::Ident {
            return true;
        }
        let unwrapish = matches!(
            name.text.as_str(),
            "expect" | "unwrap" | "unwrap_or_else" | "unwrap_or" | "unwrap_or_default"
        );
        if !unwrapish {
            return false;
        }
        if !toks.get(k + 2).is_some_and(|t| t.is_punct(b'(')) {
            return true;
        }
        k = match_bracket(toks, k + 2, end, b'(', b')') + 1;
    }
}

/// Is the ident at `j` a declaration head (`fn name(`) rather than a
/// call? Looks one token back for `fn`.
fn is_decl_head(toks: &[Token], j: usize, start: usize) -> bool {
    j > start && toks[j - 1].is_ident("fn")
}

/// Qualified path ending at the ident `j`: `std::fs::write` →
/// `["std","fs","write"]`. Empty when unqualified.
fn path_of(toks: &[Token], j: usize, start: usize) -> Vec<String> {
    let mut segs = vec![toks[j].text.clone()];
    let mut k = j;
    while k >= start + 3
        && toks[k - 1].is_punct(b':')
        && toks[k - 2].is_punct(b':')
        && toks[k - 3].kind == TokKind::Ident
    {
        segs.push(toks[k - 3].text.clone());
        k -= 3;
    }
    if segs.len() == 1 {
        return Vec::new();
    }
    segs.reverse();
    segs
}

/// File-wide string-literal collection with call context and test
/// awareness (independent of fn extraction so top-level literals are
/// seen too).
fn collect_lits(toks: &[Token], test_ranges: &[(usize, usize)], file_test: bool) -> Vec<LitSite> {
    let mut out = Vec::new();
    let mut call_stack: Vec<(String, i32)> = Vec::new();
    let mut paren_depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Punct(b'(') => paren_depth += 1,
            TokKind::Punct(b')') => {
                paren_depth -= 1;
                while call_stack.last().is_some_and(|(_, d)| *d > paren_depth) {
                    call_stack.pop();
                }
            }
            TokKind::Ident if toks.get(i + 1).is_some_and(|n| n.is_punct(b'(')) => {
                call_stack.push((t.text.clone(), paren_depth + 1));
            }
            TokKind::Str => {
                let in_test = file_test || test_ranges.iter().any(|&(s, e)| i > s && i < e);
                out.push(LitSite {
                    value: t.text.clone(),
                    line: t.line,
                    ctx: call_stack.last().map(|(n, _)| n.clone()),
                    in_test,
                });
            }
            _ => {}
        }
    }
    out
}
