//! `indaas-lint`: a workspace invariant checker that audits the daemon
//! the way the daemon audits deployments.
//!
//! INDaaS exists because hidden shared dependencies turn "redundant"
//! systems into correlated-failure bombs. The daemon grew exactly such
//! couplings of its own: one blocking call reachable from the readiness
//! loop stalls every connection, one out-of-order shard-lock
//! acquisition deadlocks ingest, one drifting fault-point or metric
//! name silently disarms chaos tests and CI scrape gates. This crate
//! turns the paper's auditing mindset inward with a zero-dependency
//! static pass over the workspace source.
//!
//! Four rules:
//!
//! * **blocking_in_loop** — from the readiness-loop roots
//!   (`netloop.rs` event handlers, the codec pump, timer callbacks),
//!   no reachable call may block: `thread::sleep`, `std::fs::*`,
//!   socket read/write, `recv` on channels, or `Mutex`/`RwLock`
//!   acquisition of the scheduler/DB lock classes.
//! * **lock_order** — lock-acquisition nesting must be cycle-free
//!   across crates, and repeated same-class (shard) acquisition must
//!   carry ascending-order evidence (a `sort*` call or the
//!   `debug_assert!(.. windows ..)` discipline from the sharded DB).
//! * **registry_consistency** — every fault-point and telemetry-name
//!   string must be declared exactly once in a central registry module
//!   (`indaas_faultinj::points`, `indaas_service::names`) and
//!   referenced from it; stringly-typed drift is a finding.
//! * **panic_path** — `unwrap`/`expect`/`panic!`/array-indexing in
//!   non-test daemon code (`crates/service`, `crates/federation`,
//!   `crates/netpoll`) requires an allow-comment.
//!
//! Any rule is suppressed at a site with
//! `// lint:allow(<rule>) -- <reason>`; an allow without a reason is
//! itself a finding.

pub mod lexer;
pub mod model;
pub mod rules;

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use model::FileModel;

pub const RULE_BLOCKING: &str = "blocking_in_loop";
pub const RULE_LOCK_ORDER: &str = "lock_order";
pub const RULE_REGISTRY: &str = "registry_consistency";
pub const RULE_PANIC: &str = "panic_path";
pub const RULE_ANNOTATION: &str = "annotation";

pub const KNOWN_RULES: &[&str] = &[RULE_BLOCKING, RULE_LOCK_ORDER, RULE_REGISTRY, RULE_PANIC];

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Everything the rules need to know about where to look. The default
/// describes the real workspace; the golden-fixture tests build their
/// own pointed at a seeded mini-workspace.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding `Cargo.toml`).
    pub root: PathBuf,
    /// Directories under `root` to scan for `.rs` files.
    pub scan_dirs: Vec<String>,
    /// Path substrings to skip entirely (vendored stand-ins, build
    /// output, the lint's own seeded fixtures).
    pub skip_substrings: Vec<String>,
    /// Files whose non-test fns are readiness-loop roots
    /// (workspace-relative path suffixes).
    pub blocking_roots: Vec<String>,
    /// Crates the blocking-reachability traversal may enter.
    pub blocking_domain: Vec<String>,
    /// Crate-qualified lock classes that count as blocking when
    /// acquired on the loop thread (`service::queue`, `deps::write`).
    pub denied_lock_classes: Vec<String>,
    /// Registry modules (workspace-relative paths) that *declare*
    /// fault-point and metric-name constants.
    pub registry_files: Vec<String>,
    /// Literal prefixes that mark a string as a fault-point name.
    pub fault_point_prefixes: Vec<String>,
    /// Path prefixes under which the panic-path rule applies.
    pub panic_dirs: Vec<String>,
}

impl LintConfig {
    pub fn workspace(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            scan_dirs: vec!["crates".into(), "src".into()],
            skip_substrings: vec![
                "vendor/".into(),
                "target/".into(),
                // The linter does not lint itself: its docs and
                // fixtures are full of deliberately-violating text.
                "crates/lint/".into(),
            ],
            blocking_roots: vec![
                "crates/service/src/netloop.rs".into(),
                "crates/service/src/codec.rs".into(),
                "crates/netpoll/src/timer.rs".into(),
            ],
            blocking_domain: vec![
                "service".into(),
                "netpoll".into(),
                "deps".into(),
                "faultinj".into(),
                "obs".into(),
            ],
            denied_lock_classes: vec![
                "service::queue".into(),
                "service::workers".into(),
                "deps::write".into(),
                "deps::shards".into(),
            ],
            registry_files: vec![
                "crates/faultinj/src/points.rs".into(),
                "crates/service/src/names.rs".into(),
            ],
            fault_point_prefixes: vec!["svc.".into(), "fed.".into(), "db.".into(), "sched.".into()],
            panic_dirs: vec![
                "crates/service/src".into(),
                "crates/federation/src".into(),
                "crates/netpoll/src".into(),
            ],
        }
    }
}

/// Method names that belong to std containers/iterators/sync types: a
/// method call with one of these names on anything but `self` is
/// assumed to be the std method, never a project fn of the same name.
const STD_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clear",
    "drain",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "clone",
    "extend",
    "take",
    "replace",
    "entry",
    "keys",
    "values",
    "first",
    "last",
    "retain",
    "truncate",
    "swap",
    "append",
    "split_off",
    "reserve",
    "sort",
    "sort_unstable",
    "min",
    "max",
    "count",
    "sum",
    "fold",
    "map",
    "filter",
    "find",
    "position",
    "any",
    "all",
    "flush",
    "wait",
    "read",
    "write",
    "send",
    "recv",
    "lock",
    "try_lock",
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "join",
    "expect",
    "unwrap",
    "ok",
    "err",
    "as_ref",
    "as_mut",
    "to_string",
    "to_vec",
    "parse",
    "new",
    "default",
    "record",
    "inc",
    "dec",
    "set",
    "add",
];

/// The modeled workspace: every scanned file plus a name→fn index used
/// for call resolution.
pub struct Workspace {
    pub files: Vec<FileModel>,
    /// fn name → (file idx, fn idx), non-test fns only.
    pub fn_index: HashMap<String, Vec<(usize, usize)>>,
}

impl Workspace {
    pub fn load(cfg: &LintConfig) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for dir in &cfg.scan_dirs {
            collect_rs(&cfg.root.join(dir), &mut paths)?;
        }
        paths.sort();
        let mut files = Vec::new();
        for p in paths {
            let rel = p
                .strip_prefix(&cfg.root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            if cfg.skip_substrings.iter().any(|s| rel.contains(s.as_str())) {
                continue;
            }
            let src = std::fs::read_to_string(&p)?;
            files.push(FileModel::build(&rel, &src));
        }
        let mut fn_index: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (fj, f) in file.fns.iter().enumerate() {
                if !f.is_test {
                    fn_index.entry(f.name.clone()).or_default().push((fi, fj));
                }
            }
        }
        Ok(Workspace { files, fn_index })
    }

    /// Resolve a call site, refusing std-library method names unless
    /// invoked on `self` — `map.len()` must never resolve to a local
    /// `fn len`. The traversals prefer missing an edge to inventing
    /// one.
    pub fn resolve_call(
        &self,
        call: &model::CallSite,
        from_file: usize,
        domain: &[String],
    ) -> Option<(usize, usize)> {
        if call.method
            && call.recv.as_deref() != Some("self")
            && STD_METHODS.contains(&call.name.as_str())
        {
            return None;
        }
        self.resolve(&call.name, from_file, domain)
    }

    /// Resolve a call by name: same-file definitions win; otherwise a
    /// unique definition within `domain` crates. Ambiguous names
    /// (`new`, `len`, ...) resolve to nothing — the traversals prefer
    /// missing an edge to inventing one.
    pub fn resolve(
        &self,
        name: &str,
        from_file: usize,
        domain: &[String],
    ) -> Option<(usize, usize)> {
        let cands = self.fn_index.get(name)?;
        if let Some(&hit) = cands.iter().find(|&&(fi, _)| fi == from_file) {
            return Some(hit);
        }
        let in_domain: Vec<&(usize, usize)> = cands
            .iter()
            .filter(|&&(fi, _)| domain.is_empty() || domain.contains(&self.files[fi].crate_name))
            .collect();
        if in_domain.len() == 1 {
            Some(*in_domain[0])
        } else {
            None
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run every rule; findings come back sorted by (file, line).
pub fn run(cfg: &LintConfig) -> std::io::Result<Vec<Finding>> {
    let ws = Workspace::load(cfg)?;
    let mut findings = Vec::new();
    rules::blocking::check(&ws, cfg, &mut findings);
    rules::lockorder::check(&ws, cfg, &mut findings);
    rules::registry::check(&ws, cfg, &mut findings);
    rules::panicpath::check(&ws, cfg, &mut findings);
    annotation_hygiene(&ws, &mut findings);
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    Ok(findings)
}

/// Every `lint:allow` must name a known rule and carry a reason.
fn annotation_hygiene(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        for ann in &file.lexed.allows {
            if !KNOWN_RULES.contains(&ann.rule.as_str()) {
                out.push(Finding {
                    rule: RULE_ANNOTATION,
                    file: file.rel.clone(),
                    line: ann.comment_line,
                    message: format!(
                        "lint:allow names unknown rule `{}` (known: {})",
                        ann.rule,
                        KNOWN_RULES.join(", ")
                    ),
                });
            }
            if ann.reason.is_empty() {
                out.push(Finding {
                    rule: RULE_ANNOTATION,
                    file: file.rel.clone(),
                    line: ann.comment_line,
                    message: format!(
                        "lint:allow({}) has no reason — write `-- <why this is safe>`",
                        ann.rule
                    ),
                });
            }
        }
    }
}
