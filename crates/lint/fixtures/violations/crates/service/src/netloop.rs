//! Seeded blocking_in_loop violations: a sleep and a denied-class lock
//! acquisition, both reachable from a readiness-loop root fn.

pub struct Loop {
    queue: std::sync::Mutex<Vec<u32>>,
}

impl Loop {
    pub fn run_loop(&self) {
        loop {
            self.drain_once();
        }
    }

    fn drain_once(&self) {
        std::thread::sleep(std::time::Duration::from_millis(5));
        if let Ok(mut q) = self.queue.lock() {
            q.clear();
        }
    }
}
