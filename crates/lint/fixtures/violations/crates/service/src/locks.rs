//! Seeded lock_order violations: same-class nesting without
//! ascending-order evidence, and a two-class cycle.

use std::sync::{Mutex, PoisonError};

pub struct Store {
    shard: Mutex<Vec<u32>>,
    alpha: Mutex<Vec<u32>>,
    beta: Mutex<Vec<u32>>,
}

impl Store {
    /// Acquires `service::shard` while already holding it, with no
    /// sort/windows(2) evidence in sight.
    pub fn double_acquire(&self) {
        let a = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
        drop(b);
        drop(a);
    }

    /// Half of a cycle: alpha, then beta.
    pub fn alpha_then_beta(&self) {
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        drop(b);
        drop(a);
    }

    /// The other half: beta, then alpha.
    pub fn beta_then_alpha(&self) {
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        drop(a);
        drop(b);
    }
}
