//! Seeded panic_path violations: all four panicking shapes in non-test
//! daemon code.

pub fn explode(input: &[u32], text: &str) -> u32 {
    let first = input[0];
    let parsed: u32 = text.parse().unwrap();
    let var = std::env::var("FIXTURE").expect("set in the environment");
    if var.len() as u32 > parsed {
        panic!("boom");
    }
    first
}
