//! Seeded registry_consistency violations outside the registries: a
//! declared name spelled out raw, a raw name fed to a sink, and an
//! undeclared fault-point-shaped literal.

pub fn fire() {
    point("svc.frame.read");
    counter("requests_in_flight");
    let _phantom = "sched.phantom.point";
}

fn point(_name: &str) {}
fn counter(_name: &str) {}
