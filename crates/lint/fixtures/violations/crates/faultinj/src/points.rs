//! Seeded registry_consistency violation: the same point name declared
//! twice.

pub const SVC_FRAME_READ: &str = "svc.frame.read";
pub const SVC_FRAME_READ_AGAIN: &str = "svc.frame.read";
