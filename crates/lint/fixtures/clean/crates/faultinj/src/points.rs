//! The consistent registry: every point declared exactly once.

pub const SVC_FRAME_READ: &str = "svc.frame.read";
pub const SCHED_PHANTOM: &str = "sched.phantom.point";
