//! The disciplined equivalent: same-class nesting backed by
//! ascending-order evidence, and one global class order.

use std::sync::{Mutex, PoisonError};

pub struct Store {
    shard: Mutex<Vec<u32>>,
    alpha: Mutex<Vec<u32>>,
    beta: Mutex<Vec<u32>>,
}

impl Store {
    /// Same-class nesting in ascending shard order: the sorted index
    /// set plus the windows(2) assertion are the PR-4 discipline.
    pub fn double_acquire(&self, mut hit: Vec<usize>) {
        hit.sort_unstable();
        // lint:allow(panic_path) -- fixture: windows(2) yields exactly 2-element slices
        debug_assert!(hit.windows(2).all(|w| w[0] < w[1]));
        let a = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
        drop(b);
        drop(a);
    }

    /// One global order: alpha, then beta — everywhere.
    pub fn alpha_then_beta(&self) {
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        drop(b);
        drop(a);
    }

    /// Same order as everyone else: alpha before beta.
    pub fn also_alpha_then_beta(&self) {
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        drop(b);
        drop(a);
    }
}
