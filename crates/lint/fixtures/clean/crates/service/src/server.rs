//! The registry-disciplined equivalent: every name reaches its sink as
//! a const from a registry module.

pub fn fire() {
    point(SVC_FRAME_READ);
    counter(REQUESTS_TOTAL);
    let _phantom = SCHED_PHANTOM;
}

fn point(_name: &str) {}
fn counter(_name: &str) {}
