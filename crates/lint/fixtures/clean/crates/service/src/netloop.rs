//! The annotated equivalent of the seeded blocking_in_loop violations:
//! same code, each site carrying a reasoned allow.

pub struct Loop {
    queue: std::sync::Mutex<Vec<u32>>,
}

impl Loop {
    pub fn run_loop(&self) {
        loop {
            self.drain_once();
        }
    }

    fn drain_once(&self) {
        // lint:allow(blocking_in_loop) -- fixture: the pause is deliberate and bounded
        std::thread::sleep(std::time::Duration::from_millis(5));
        // lint:allow(blocking_in_loop) -- fixture: short critical section, never held across IO
        if let Ok(mut q) = self.queue.lock() {
            q.clear();
        }
    }
}
