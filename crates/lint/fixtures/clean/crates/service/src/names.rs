//! The metric-name registry side of the fixture workspace.

pub const REQUESTS_TOTAL: &str = "requests_total";
