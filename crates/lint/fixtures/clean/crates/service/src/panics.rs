//! The annotated equivalent: every panicking shape carries a reason.

pub fn explode(input: &[u32], text: &str) -> u32 {
    // lint:allow(panic_path) -- fixture: caller guarantees a non-empty slice
    let first = input[0];
    // lint:allow(panic_path) -- fixture: text was validated upstream
    let parsed: u32 = text.parse().unwrap();
    // lint:allow(panic_path) -- fixture: the harness always sets FIXTURE
    let var = std::env::var("FIXTURE").expect("set in the environment");
    if var.len() as u32 > parsed {
        // lint:allow(panic_path) -- fixture: unreachable by the guard above
        panic!("boom");
    }
    first
}
