//! Golden-fixture self-tests: every rule demonstrably fires on a
//! seeded violation, and stays silent on the annotated (or
//! discipline-following) equivalent.
//!
//! The fixture trees under `fixtures/` mirror the real workspace
//! layout (`crates/service/src/...`, `crates/faultinj/src/...`) so the
//! default [`LintConfig::workspace`] applies unchanged — the same
//! configuration that gates the real workspace is the one under test.

use indaas_lint::{
    run, Finding, LintConfig, RULE_BLOCKING, RULE_LOCK_ORDER, RULE_PANIC, RULE_REGISTRY,
};

fn lint_fixture(tree: &str) -> Vec<Finding> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree);
    run(&LintConfig::workspace(root)).expect("fixture tree lexes")
}

fn rule_hits<'a>(findings: &'a [Finding], rule: &str, file: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.file.ends_with(file))
        .collect()
}

#[test]
fn blocking_in_loop_fires_on_seeded_violation() {
    let findings = lint_fixture("violations");
    let hits = rule_hits(&findings, RULE_BLOCKING, "crates/service/src/netloop.rs");
    assert!(
        hits.iter().any(|f| f.message.contains("sleep")),
        "sleep reachable from the loop must be flagged: {findings:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("service::queue")),
        "denied lock class on the loop thread must be flagged: {findings:?}"
    );
}

#[test]
fn lock_order_fires_on_seeded_violation() {
    let findings = lint_fixture("violations");
    let hits = rule_hits(&findings, RULE_LOCK_ORDER, "crates/service/src/locks.rs");
    assert!(
        hits.iter()
            .any(|f| f.message.contains("while already holding it")),
        "unordered same-class nesting must be flagged: {findings:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("lock-order cycle")),
        "the alpha/beta cycle must be flagged: {findings:?}"
    );
}

#[test]
fn registry_consistency_fires_on_seeded_violation() {
    let findings = lint_fixture("violations");
    assert!(
        rule_hits(&findings, RULE_REGISTRY, "crates/faultinj/src/points.rs")
            .iter()
            .any(|f| f.message.contains("already declared")),
        "the duplicate declaration must be flagged: {findings:?}"
    );
    let uses = rule_hits(&findings, RULE_REGISTRY, "crates/service/src/server.rs");
    assert!(
        uses.iter().any(|f| f.message.contains("use the const")),
        "a raw spelling of a declared name must be flagged: {findings:?}"
    );
    assert!(
        uses.iter().any(|f| f.message.contains("takes a raw name")),
        "a raw name fed to a sink must be flagged: {findings:?}"
    );
    assert!(
        uses.iter().any(|f| f.message.contains("not declared")),
        "an undeclared fault-point-shaped literal must be flagged: {findings:?}"
    );
}

#[test]
fn panic_path_fires_on_every_seeded_shape() {
    let findings = lint_fixture("violations");
    let hits = rule_hits(&findings, RULE_PANIC, "crates/service/src/panics.rs");
    for shape in ["`unwrap()`", "`expect()`", "`panic!`", "`[index]`"] {
        assert!(
            hits.iter().any(|f| f.message.contains(shape)),
            "{shape} must be flagged: {findings:?}"
        );
    }
}

#[test]
fn annotated_equivalents_lint_clean() {
    let findings = lint_fixture("clean");
    assert!(
        findings.is_empty(),
        "the clean tree must produce zero findings, got: {findings:?}"
    );
}
