//! Property tests for the lint tokenizer.
//!
//! The lexer is the foundation every rule stands on, and it runs over
//! arbitrary workspace bytes — so it must be *total* (never panic, on
//! any input) and must reliably skip the three places Rust hides
//! arbitrary text: string literals, comments, and raw strings.

use indaas_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Arbitrary bytes, lossily decoded the same way the lint reads files.
fn byte_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..512)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Lowercase junk carrying a marker no real token shares; if the lexer
/// fails to skip the region the junk is embedded in, the marker leaks
/// out as an identifier token.
fn marked_junk() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 0..40)
        .prop_map(|bytes| format!("zqmarker{}", String::from_utf8_lossy(&bytes)))
}

/// True when some identifier token leaked the marker.
fn leaks_marker(src: &str) -> bool {
    lex(src)
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.contains("zqmarker"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexing_byte_soup_never_panics(src in byte_soup()) {
        let lexed = lex(&src);
        // Line numbers stay 1-based even on soup.
        prop_assert!(lexed.tokens.iter().all(|t| t.line >= 1));
    }

    #[test]
    fn string_contents_never_become_tokens(junk in marked_junk()) {
        let src = format!("let x = \"{junk}\";");
        prop_assert!(!leaks_marker(&src));
        let strs = lex(&src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        prop_assert_eq!(strs, 1);
    }

    #[test]
    fn line_comment_contents_never_become_tokens(junk in marked_junk()) {
        let src = format!("alpha // {junk}\nomega");
        prop_assert!(!leaks_marker(&src));
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["alpha", "omega"]);
    }

    #[test]
    fn block_comment_contents_never_become_tokens(junk in marked_junk()) {
        let src = format!("alpha /* {junk} */ omega");
        prop_assert!(!leaks_marker(&src));
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["alpha", "omega"]);
    }

    #[test]
    fn raw_string_contents_never_become_tokens(junk in marked_junk()) {
        // A hash-fenced raw string may contain bare quotes.
        let src = format!("let x = r#\"{junk} \" {junk}\"#;");
        prop_assert!(!leaks_marker(&src));
        let strs = lex(&src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        prop_assert_eq!(strs, 1);
    }

    #[test]
    fn truncated_input_never_panics(src in byte_soup(), cut in 0usize..512) {
        // Chopping soup mid-literal / mid-comment must still lex.
        let cut = cut.min(src.len());
        if src.is_char_boundary(cut) {
            lex(&src[..cut]);
        }
    }
}
