//! The fault-point registry: every named injection point in the
//! workspace, declared exactly once.
//!
//! Arming code (`--fault <point>=<policy>`), firing sites
//! (`point(..)` / `io_point(..)` calls) and help text all reference
//! these consts; `indaas-lint`'s registry-consistency rule flags any
//! other non-test code that spells a point name out, so a point cannot
//! drift between the chaos harness and the code it is supposed to
//! break.

/// Service binary/line frame reads off the readiness loop.
pub const SVC_FRAME_READ: &str = "svc.frame.read";
/// Service frame writes (write-queue drain onto the socket).
pub const SVC_FRAME_WRITE: &str = "svc.frame.write";
/// Federation successor dial.
pub const FED_DIAL: &str = "fed.dial";
/// Federation ring frame send.
pub const FED_FRAME_SEND: &str = "fed.frame.send";
/// Scheduler job dispatch (queue → worker handoff).
pub const SCHED_DISPATCH: &str = "sched.dispatch";
/// Dirty-shard segment save.
pub const DB_SAVE: &str = "db.save";
/// Segment load at boot.
pub const DB_LOAD: &str = "db.load";

/// Every point with a one-line description — the `--fault` help text
/// and docs render from this, so the advertised list can never drift
/// from the declared one.
pub const ALL: &[(&str, &str)] = &[
    (
        SVC_FRAME_READ,
        "service frame/line reads off the readiness loop",
    ),
    (
        SVC_FRAME_WRITE,
        "service write-queue drains onto the socket",
    ),
    (FED_DIAL, "federation successor dials"),
    (FED_FRAME_SEND, "federation ring frame sends"),
    (SCHED_DISPATCH, "scheduler queue->worker job handoff"),
    (DB_SAVE, "dirty-shard segment saves"),
    (DB_LOAD, "segment loads at boot"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_point_once() {
        let mut names: Vec<&str> = ALL.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate point in ALL");
        for n in [
            SVC_FRAME_READ,
            SVC_FRAME_WRITE,
            FED_DIAL,
            FED_FRAME_SEND,
            SCHED_DISPATCH,
            DB_SAVE,
            DB_LOAD,
        ] {
            assert!(names.contains(&n), "{n} missing from ALL");
        }
    }
}
