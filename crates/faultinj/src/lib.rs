//! Deterministic fault injection for chaos-hardening the INDaaS stack.
//!
//! The daemon's failure-handling paths — federation retry/backoff,
//! degraded coordinator outcomes, client reconnects, segment quarantine
//! — are only trustworthy if they can be *driven*, repeatably, in tests
//! and in CI rings. This crate provides named failure points that the
//! hot paths consult:
//!
//! ```
//! match indaas_faultinj::point(indaas_faultinj::points::FED_FRAME_SEND) {
//!     indaas_faultinj::FaultAction::Pass => { /* do the real work */ }
//!     indaas_faultinj::FaultAction::Error => { /* return an injected error */ }
//!     indaas_faultinj::FaultAction::Drop => { /* silently skip the operation */ }
//!     indaas_faultinj::FaultAction::Disconnect => { /* tear the connection down */ }
//! }
//! ```
//!
//! Points are armed from `indaas serve --fault <point>=<policy>[:prob][:seed]`
//! (see [`FaultSpec`]'s `FromStr`). Policies: `error`, `delay(MS)`,
//! `drop`, `disconnect`, `crash`. Probability rolls use a per-point
//! seeded splitmix64 stream, so a given `(prob, seed)` pair fires on
//! exactly the same evaluations every run. `delay` sleeps inline and
//! then passes; `crash` aborts the process (simulating a kill -9, so
//! crash-safety paths like temp-file+rename get exercised for real).
//!
//! **Zero cost when off**: with nothing armed, [`point`] is a single
//! relaxed atomic load — no lock, no string hash. The registry is
//! process-global on purpose: the deepest call sites (`persist.rs`,
//! `PeerConn`) have no configuration plumbing, and a chaos run arms the
//! whole process anyway.

pub mod points;

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Seed used when a spec does not name one. Matches the project-wide
/// deterministic default used by the sampling auditors.
pub const DEFAULT_SEED: u64 = 2014;

/// What an armed point does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPolicy {
    /// The operation fails with an injected error.
    Error,
    /// The operation is delayed by this many milliseconds, then runs.
    Delay(u64),
    /// The operation is silently skipped but reported as successful.
    Drop,
    /// The connection carrying the operation is torn down.
    Disconnect,
    /// The whole process aborts, as if killed.
    Crash,
}

impl fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPolicy::Error => write!(f, "error"),
            FaultPolicy::Delay(ms) => write!(f, "delay({ms})"),
            FaultPolicy::Drop => write!(f, "drop"),
            FaultPolicy::Disconnect => write!(f, "disconnect"),
            FaultPolicy::Crash => write!(f, "crash"),
        }
    }
}

impl FromStr for FaultPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "error" => Ok(FaultPolicy::Error),
            "drop" => Ok(FaultPolicy::Drop),
            "disconnect" => Ok(FaultPolicy::Disconnect),
            "crash" => Ok(FaultPolicy::Crash),
            other => {
                let ms = other
                    .strip_prefix("delay(")
                    .and_then(|rest| rest.strip_suffix(')'))
                    .ok_or_else(|| {
                        format!(
                            "unknown fault policy {other:?} \
                             (want error|delay(MS)|drop|disconnect|crash)"
                        )
                    })?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| format!("bad delay milliseconds {ms:?}: {e}"))?;
                Ok(FaultPolicy::Delay(ms))
            }
        }
    }
}

/// One armed failure point: `<point>=<policy>[:prob][:seed]`.
///
/// `prob` defaults to 1.0 (fire on every evaluation); `seed` seeds the
/// per-point splitmix64 stream and defaults to [`DEFAULT_SEED`]. Parsing
/// normalizes: at `prob` 1.0 the stream is never consulted, so the seed
/// is forced back to the default (keeps `Display` round-trips exact).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub point: String,
    pub policy: FaultPolicy,
    pub prob: f64,
    pub seed: u64,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.point, self.policy)?;
        if self.prob < 1.0 {
            write!(f, ":{}:{}", self.prob, self.seed)?;
        }
        Ok(())
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (point, rest) = s
            .split_once('=')
            .ok_or_else(|| format!("fault spec {s:?} wants <point>=<policy>[:prob][:seed]"))?;
        if point.is_empty() {
            return Err(format!("fault spec {s:?} has an empty point name"));
        }
        if point.contains([':', '=', ' ']) {
            return Err(format!(
                "fault point {point:?} may not contain ':', '=' or spaces"
            ));
        }
        let mut parts = rest.splitn(3, ':');
        let policy: FaultPolicy = parts.next().unwrap_or("").parse()?;
        let prob = match parts.next() {
            None => 1.0,
            Some(p) => {
                let prob: f64 = p
                    .parse()
                    .map_err(|e| format!("bad fault probability {p:?}: {e}"))?;
                if !(prob > 0.0 && prob <= 1.0) {
                    return Err(format!("fault probability {prob} must be in (0, 1]"));
                }
                prob
            }
        };
        let seed = match parts.next() {
            None => DEFAULT_SEED,
            Some(sd) => sd
                .parse()
                .map_err(|e| format!("bad fault seed {sd:?}: {e}"))?,
        };
        // At prob 1.0 the RNG is never consulted; normalize the seed so
        // parse→display→parse is exact.
        let seed = if prob >= 1.0 { DEFAULT_SEED } else { seed };
        Ok(FaultSpec {
            point: point.to_string(),
            policy,
            prob,
            seed,
        })
    }
}

/// What a call site must do after consulting [`point`]. `Delay` has
/// already slept and `Crash` never returns, so only the four actions a
/// call site can meaningfully handle remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an injected fault action must be acted on"]
pub enum FaultAction {
    /// Nothing armed (or the probability roll passed): do the real work.
    Pass,
    /// Fail the operation with an injected error.
    Error,
    /// Skip the operation silently, reporting success.
    Drop,
    /// Tear down the connection carrying the operation.
    Disconnect,
}

struct PointState {
    policy: FaultPolicy,
    prob: f64,
    rng: u64,
    triggers: u64,
}

/// Count of armed points; the [`point`] fast path loads only this.
static ARMED: AtomicUsize = AtomicUsize::new(0);

type Observer = Arc<dyn Fn(&str) + Send + Sync>;

struct Registry {
    points: Mutex<HashMap<String, PointState>>,
    observer: Mutex<Option<Observer>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        points: Mutex::new(HashMap::new()),
        observer: Mutex::new(None),
    })
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Arms one failure point from its textual spec. Re-arming a point
/// replaces its policy and resets its RNG stream and trigger count.
pub fn arm(spec: &str) -> Result<(), String> {
    arm_spec(spec.parse()?);
    Ok(())
}

/// Arms one failure point from a parsed [`FaultSpec`].
pub fn arm_spec(spec: FaultSpec) {
    let mut points = registry().points.lock().unwrap();
    let state = PointState {
        policy: spec.policy,
        prob: spec.prob,
        rng: spec.seed,
        triggers: 0,
    };
    if points.insert(spec.point, state).is_none() {
        ARMED.fetch_add(1, Ordering::Release);
    }
}

/// Disarms one point. Returns whether it was armed.
pub fn disarm(point: &str) -> bool {
    let mut points = registry().points.lock().unwrap();
    let removed = points.remove(point).is_some();
    if removed {
        ARMED.fetch_sub(1, Ordering::Release);
    }
    removed
}

/// Disarms every point (used between chaos tests).
pub fn disarm_all() {
    let mut points = registry().points.lock().unwrap();
    let n = points.len();
    points.clear();
    ARMED.fetch_sub(n, Ordering::Release);
}

/// Names of the currently armed points, sorted.
pub fn armed() -> Vec<String> {
    let points = registry().points.lock().unwrap();
    let mut names: Vec<String> = points.keys().cloned().collect();
    names.sort();
    names
}

/// How many times `point` has fired since it was (re-)armed. Zero for
/// unarmed points. Chaos tests assert on this to prove the fault was
/// actually exercised.
pub fn triggered(point: &str) -> u64 {
    let points = registry().points.lock().unwrap();
    points.get(point).map_or(0, |s| s.triggers)
}

/// Installs a hook called with the point name each time any fault
/// fires. The daemon uses this to bump its `faults_injected_total`
/// counter without this crate depending on the metrics registry.
pub fn set_observer(observer: impl Fn(&str) + Send + Sync + 'static) {
    *registry().observer.lock().unwrap() = Some(Arc::new(observer));
}

/// Removes the observer hook.
pub fn clear_observer() {
    *registry().observer.lock().unwrap() = None;
}

/// Consults the failure point `name`.
///
/// With nothing armed anywhere this is one relaxed atomic load. When
/// the point is armed and its probability roll fires: `delay` sleeps
/// here and returns [`FaultAction::Pass`]; `crash` aborts the process;
/// the other policies return the action the call site must take.
pub fn point(name: &str) -> FaultAction {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return FaultAction::Pass;
    }
    point_slow(name)
}

#[cold]
fn point_slow(name: &str) -> FaultAction {
    let reg = registry();
    let policy = {
        let mut points = reg.points.lock().unwrap();
        let Some(state) = points.get_mut(name) else {
            return FaultAction::Pass;
        };
        if state.prob < 1.0 {
            let roll = (splitmix64(&mut state.rng) >> 11) as f64 / (1u64 << 53) as f64;
            if roll >= state.prob {
                return FaultAction::Pass;
            }
        }
        state.triggers += 1;
        state.policy.clone()
    };
    let observer = reg.observer.lock().unwrap().clone();
    if let Some(observer) = observer {
        observer(name);
    }
    match policy {
        FaultPolicy::Error => FaultAction::Error,
        FaultPolicy::Drop => FaultAction::Drop,
        FaultPolicy::Disconnect => FaultAction::Disconnect,
        FaultPolicy::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms)); // lint:allow(blocking_in_loop) -- fault injection deliberately stalls the loop when a Delay policy is armed
            FaultAction::Pass
        }
        FaultPolicy::Crash => std::process::abort(),
    }
}

/// Convenience for I/O call sites: maps the point's action onto an
/// `io::Result`, with `Drop` reported separately so the caller can skip
/// the real operation while still reporting success.
pub fn io_point(name: &str) -> Result<bool, std::io::Error> {
    match point(name) {
        FaultAction::Pass => Ok(false),
        FaultAction::Drop => Ok(true),
        FaultAction::Error => Err(std::io::Error::other(format!("injected fault at {name}"))),
        FaultAction::Disconnect => Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            format!("injected disconnect at {name}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests that arm points must not
    // interleave; they serialize on this lock (poisoning tolerated so
    // one failed test does not cascade).
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn spec_parsing_round_trips() {
        for text in [
            "fed.frame.send=error",
            "svc.frame.read=delay(250)",
            "db.save=drop",
            "fed.dial=disconnect",
            "sched.dispatch=crash",
            "fed.frame.send=error:0.5:42",
            "fed.frame.send=drop:0.25:2014",
        ] {
            let spec: FaultSpec = text.parse().unwrap();
            let reparsed: FaultSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, reparsed, "{text}");
        }
        // prob 1.0 normalizes the seed away entirely.
        let spec: FaultSpec = "p=error:1:999".parse().unwrap();
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.to_string(), "p=error");
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        for bad in [
            "",
            "noequals",
            "=error",
            "p=",
            "p=explode",
            "p=delay",
            "p=delay(",
            "p=delay(abc)",
            "p=error:0",
            "p=error:-0.5",
            "p=error:1.5",
            "p=error:nan",
            "p=error:0.5:notanumber",
            "a b=error",
        ] {
            assert!(
                bad.parse::<FaultSpec>().is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn unarmed_points_pass() {
        let _guard = serial();
        disarm_all();
        assert_eq!(point("nothing.armed"), FaultAction::Pass);
        assert_eq!(triggered("nothing.armed"), 0);
    }

    #[test]
    fn armed_points_fire_and_count() {
        let _guard = serial();
        disarm_all();
        arm("t.err=error").unwrap();
        arm("t.drop=drop").unwrap();
        arm("t.disc=disconnect").unwrap();
        assert_eq!(point("t.err"), FaultAction::Error);
        assert_eq!(point("t.err"), FaultAction::Error);
        assert_eq!(point("t.drop"), FaultAction::Drop);
        assert_eq!(point("t.disc"), FaultAction::Disconnect);
        assert_eq!(point("t.other"), FaultAction::Pass);
        assert_eq!(triggered("t.err"), 2);
        assert_eq!(triggered("t.drop"), 1);
        assert_eq!(armed(), vec!["t.disc", "t.drop", "t.err"]);
        assert!(disarm("t.err"));
        assert!(!disarm("t.err"));
        assert_eq!(point("t.err"), FaultAction::Pass);
        disarm_all();
        assert_eq!(point("t.drop"), FaultAction::Pass);
    }

    #[test]
    fn probability_stream_is_deterministic() {
        let _guard = serial();
        disarm_all();
        let run = || {
            arm("t.prob=error:0.5:7").unwrap();
            let fired: Vec<bool> = (0..64)
                .map(|_| point("t.prob") == FaultAction::Error)
                .collect();
            disarm_all();
            fired
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "same seed, same firing pattern");
        let fired = first.iter().filter(|f| **f).count();
        assert!(
            (8..=56).contains(&fired),
            "prob 0.5 over 64 rolls fired {fired} times"
        );
        // A different seed gives a different pattern.
        arm("t.prob=error:0.5:8").unwrap();
        let third: Vec<bool> = (0..64)
            .map(|_| point("t.prob") == FaultAction::Error)
            .collect();
        disarm_all();
        assert_ne!(first, third, "different seed, different pattern");
    }

    #[test]
    fn delay_sleeps_then_passes() {
        let _guard = serial();
        disarm_all();
        arm("t.delay=delay(30)").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(point("t.delay"), FaultAction::Pass);
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(triggered("t.delay"), 1);
        disarm_all();
    }

    #[test]
    fn observer_sees_every_firing() {
        let _guard = serial();
        disarm_all();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        set_observer(move |name| sink.lock().unwrap().push(name.to_string()));
        arm("t.obs=drop").unwrap();
        let _ = point("t.obs");
        let _ = point("t.obs");
        let _ = point("t.unarmed");
        clear_observer();
        let _ = point("t.obs");
        disarm_all();
        assert_eq!(*seen.lock().unwrap(), vec!["t.obs", "t.obs"]);
    }

    #[test]
    fn io_point_maps_actions() {
        let _guard = serial();
        disarm_all();
        assert!(!io_point("t.io").unwrap(), "unarmed = do the real work");
        arm("t.io=drop").unwrap();
        assert!(io_point("t.io").unwrap(), "drop = skip silently");
        arm("t.io=error").unwrap();
        assert!(io_point("t.io").is_err());
        arm("t.io=disconnect").unwrap();
        let err = io_point("t.io").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        disarm_all();
    }
}
