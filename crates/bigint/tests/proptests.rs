//! Property-based tests for the big-integer substrate.

use indaas_bigint::BigUint;
use proptest::prelude::*;

/// Strategy: a BigUint built from 0..=6 random limbs.
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(BigUint::from_limbs)
}

/// Strategy: a non-zero BigUint.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_then_sub_roundtrips(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn division_identity(a in biguint(), b in biguint_nonzero()) {
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in biguint(), s in 0usize..200) {
        let shifted = &a << s;
        // 2^s as a BigUint.
        let pow = &BigUint::one() << s;
        prop_assert_eq!(shifted, &a * &pow);
    }

    #[test]
    fn bytes_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint()) {
        prop_assert_eq!(a.to_string().parse::<BigUint>().unwrap(), a);
    }

    #[test]
    fn modpow_matches_naive(b in 0u64..1000, e in 0u64..40, m in 2u64..5000) {
        let big = BigUint::from_u64(b).modpow(&BigUint::from_u64(e), &BigUint::from_u64(m));
        let mut acc: u128 = 1;
        for _ in 0..e {
            acc = acc * b as u128 % m as u128;
        }
        prop_assert_eq!(big, BigUint::from_u64(acc as u64));
    }

    #[test]
    fn modinv_is_inverse(a in 1u64..10_000, m in 2u64..10_000) {
        let ab = BigUint::from_u64(a);
        let mb = BigUint::from_u64(m);
        if let Ok(inv) = ab.modinv(&mb) {
            prop_assert_eq!((&ab * &inv).rem(&mb), BigUint::one());
        } else {
            // No inverse must mean gcd > 1.
            prop_assert!(ab.gcd(&mb) != BigUint::one());
        }
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn cmp_agrees_with_sub(a in biguint(), b in biguint()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}
