//! Core [`BigUint`] type: representation, comparison, addition, subtraction,
//! multiplication, shifts and radix conversion.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

use crate::BigIntError;

/// Number of limbs below which schoolbook multiplication is used directly.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with no trailing zero limbs; zero is
/// the empty limb vector. All arithmetic is value-oriented; operators take
/// references where cloning would be wasteful.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// Returns zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a 128-bit word.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            BigUint {
                limbs: vec![lo, hi],
            }
        }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Exposes the little-endian limb slice.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut nbits = 0;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << nbits;
            nbits += 8;
            if nbits == 64 {
                limbs.push(cur);
                cur = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            limbs.push(cur);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, BigIntError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(BigIntError::ParseError("empty hex string".into()));
        }
        let mut limbs = Vec::with_capacity(s.len() / 16 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut i = chars.len();
        while i > 0 {
            let start = i.saturating_sub(16);
            let chunk = std::str::from_utf8(&chars[start..i]).expect("ascii slice");
            let limb = u64::from_str_radix(chunk, 16)
                .map_err(|e| BigIntError::ParseError(format!("bad hex chunk {chunk:?}: {e}")))?;
            limbs.push(limb);
            i = start;
        }
        Ok(Self::from_limbs(limbs))
    }

    /// Renders as lowercase hexadecimal with no prefix ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns true if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns true if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (zero-indexed from the least significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Converts to `u64`, if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Checked subtraction: `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
            if borrow == 0 && i >= other.limbs.len() {
                break;
            }
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(limbs))
    }

    /// In-place addition of a single word.
    pub fn add_u64(&mut self, v: u64) {
        let mut carry = v;
        for limb in &mut self.limbs {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                return;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Multiplies by a single word.
    pub fn mul_u64(&self, v: u64) -> BigUint {
        if v == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let t = l as u128 * v as u128 + carry;
            limbs.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            limbs.push(carry as u64);
        }
        Self::from_limbs(limbs)
    }

    /// Schoolbook multiplication, used directly below the Karatsuba cutoff.
    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        out
    }

    /// Karatsuba multiplication on limb slices; result has `a.len()+b.len()` limbs
    /// before normalization.
    fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
            return Self::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()).div_ceil(2);
        let (a0, a1) = a.split_at(half.min(a.len()));
        let (b0, b1) = b.split_at(half.min(b.len()));
        let a0 = BigUint::from_limbs(a0.to_vec());
        let a1 = BigUint::from_limbs(a1.to_vec());
        let b0 = BigUint::from_limbs(b0.to_vec());
        let b1 = BigUint::from_limbs(b1.to_vec());

        let z0 = &a0 * &b0;
        let z2 = &a1 * &b1;
        let z1 = &(&a0 + &a1) * &(&b0 + &b1);
        let z1 = z1
            .checked_sub(&z0)
            .and_then(|t| t.checked_sub(&z2))
            .expect("karatsuba middle term underflow");

        let mut out = z0;
        out += &(z1 << (64 * half));
        out += &(z2 << (128 * half));
        out.limbs
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs.clone();
        let mut carry = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let rhs_l = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(rhs_l);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
            if carry == 0 && i >= short.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint::from_limbs(limbs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] for a fallible form.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(BigUint::mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        &self << bits
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).copied().unwrap_or(0) << (64 - bit_shift);
                limbs.push(lo | hi);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        &self >> bits
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeatedly divide by 10^19 (the largest power of ten below 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, &c) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&c.to_string());
            } else {
                s.push_str(&format!("{c:019}"));
            }
        }
        write!(f, "{s}")
    }
}

impl FromStr for BigUint {
    type Err = BigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(BigIntError::ParseError(format!("bad decimal: {s:?}")));
        }
        let mut out = BigUint::zero();
        for chunk in s.as_bytes().chunks(19) {
            let chunk_str = std::str::from_utf8(chunk).expect("ascii");
            let v: u64 = chunk_str
                .parse()
                .map_err(|e| BigIntError::ParseError(format!("{e}")))?;
            out = out.mul_u64(10u64.pow(chunk.len() as u32));
            out.add_u64(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_identities() {
        let z = BigUint::zero();
        let o = BigUint::one();
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(&z + &o, o);
        assert_eq!(&o * &z, z);
        assert_eq!(z.bits(), 0);
        assert_eq!(o.bits(), 1);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s, BigUint::from_limbs(vec![0, 0, 1]));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 0, 1]);
        let b = BigUint::one();
        let d = &a - &b;
        assert_eq!(d, BigUint::from_limbs(vec![u64::MAX, u64::MAX]));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(6);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(BigUint::one()));
    }

    #[test]
    fn mul_matches_u128() {
        let a = BigUint::from_u64(0xdead_beef_cafe_f00d);
        let b = BigUint::from_u64(0x1234_5678_9abc_def1);
        let expect = 0xdead_beef_cafe_f00d_u128 * 0x1234_5678_9abc_def1_u128;
        assert_eq!((&a * &b).to_u128(), Some(expect));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to cross the Karatsuba threshold.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..70u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            limbs_a.push(x);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i * 7 + 1);
            limbs_b.push(x);
        }
        let a = BigUint::from_limbs(limbs_a.clone());
        let b = BigUint::from_limbs(limbs_b.clone());
        let fast = &a * &b;
        let slow = BigUint::from_limbs(BigUint::mul_schoolbook(&limbs_a, &limbs_b));
        assert_eq!(fast, slow);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = BigUint::from_hex("deadbeefcafef00d123456789").unwrap();
        for bits in [0usize, 1, 7, 63, 64, 65, 130] {
            let shifted = &a << bits;
            assert_eq!(&shifted >> bits, a, "shift roundtrip failed for {bits}");
        }
    }

    #[test]
    fn shr_past_end_is_zero() {
        let a = BigUint::from_u64(42);
        assert!((&a >> 64).is_zero());
        assert!((&a >> 1000).is_zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_hex("0123456789abcdef0011223344556677deadbeef").unwrap();
        let bytes = a.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), a);
        let padded = a.to_bytes_be_padded(32);
        assert_eq!(padded.len(), 32);
        assert_eq!(BigUint::from_bytes_be(&padded), a);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = BigUint::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), *s);
        }
        // Leading zeros are normalized away.
        assert_eq!(
            BigUint::from_hex("000deadbeef").unwrap().to_hex(),
            "deadbeef"
        );
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn decimal_parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
    }

    #[test]
    fn ordering_is_by_magnitude() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = BigUint::from_u64(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let v = BigUint::from_u64(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(200));
    }

    #[test]
    fn mul_u64_matches_general_mul() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(a.mul_u64(12345), &a * &BigUint::from_u64(12345));
    }
}
