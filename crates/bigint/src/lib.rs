//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the numeric substrate for the INDaaS private-auditing
//! protocols: the commutative Pohlig–Hellman cipher and the Paillier
//! cryptosystem both operate on 1024–2048 bit integers. It is written from
//! scratch on 64-bit limbs and provides exactly the operations those
//! protocols need:
//!
//! * schoolbook and Karatsuba multiplication,
//! * Knuth Algorithm D division,
//! * Montgomery modular exponentiation,
//! * extended-Euclid modular inverses,
//! * Miller–Rabin primality testing and random prime generation.
//!
//! # Examples
//!
//! ```
//! use indaas_bigint::BigUint;
//!
//! let a = BigUint::from_u64(2);
//! let m = BigUint::from_u64(1_000_000_007);
//! let r = a.modpow(&BigUint::from_u64(10), &m);
//! assert_eq!(r, BigUint::from_u64(1024));
//! ```

mod div;
mod modular;
mod prime;
mod uint;

pub use modular::Montgomery;
pub use prime::{gen_prime, is_probable_prime};
pub use uint::BigUint;

/// Errors produced by fallible big-integer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigIntError {
    /// Division or reduction by zero was attempted.
    DivisionByZero,
    /// A modular inverse does not exist (operands not coprime).
    NotInvertible,
    /// A textual representation could not be parsed.
    ParseError(String),
}

impl std::fmt::Display for BigIntError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BigIntError::DivisionByZero => write!(f, "division by zero"),
            BigIntError::NotInvertible => write!(f, "modular inverse does not exist"),
            BigIntError::ParseError(s) => write!(f, "parse error: {s}"),
        }
    }
}

impl std::error::Error for BigIntError {}
