//! Primality testing and random prime generation.

use rand::Rng;

use crate::uint::BigUint;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

impl BigUint {
    /// Draws a uniformly random value with exactly `bits` significant bits
    /// (both the top and bottom bit forced to 1 when `odd` is set — the shape
    /// required for prime candidates).
    pub fn random_bits(rng: &mut impl Rng, bits: usize, odd: bool) -> BigUint {
        assert!(bits > 0, "cannot draw a 0-bit value");
        let limbs_len = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..limbs_len).map(|_| rng.next_u64()).collect();
        let top_bits = bits - (limbs_len - 1) * 64;
        // Mask the top limb to the requested width, then force the top bit.
        if top_bits < 64 {
            limbs[limbs_len - 1] &= (1u64 << top_bits) - 1;
        }
        limbs[limbs_len - 1] |= 1u64 << (top_bits - 1);
        if odd {
            limbs[0] |= 1;
        }
        BigUint::from_limbs(limbs)
    }

    /// Draws a uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below(rng: &mut impl Rng, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "empty sampling range");
        let bits = bound.bits();
        let limbs_len = bits.div_ceil(64);
        let top_bits = bits - (limbs_len - 1) * 64;
        loop {
            let mut limbs: Vec<u64> = (0..limbs_len).map(|_| rng.next_u64()).collect();
            if top_bits < 64 {
                limbs[limbs_len - 1] &= (1u64 << top_bits) - 1;
            }
            let candidate = BigUint::from_limbs(limbs);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Values below 2^64 additionally get a deterministic witness set, making the
/// answer exact in that range.
pub fn is_probable_prime(n: &BigUint, rounds: usize, rng: &mut impl Rng) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n == &BigUint::from_u64(2) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }

    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.checked_sub(&BigUint::one()).expect("n >= 2");
    let s = trailing_zeros(&n_minus_1);
    let d = &n_minus_1 >> s;

    // Deterministic witnesses cover n < 2^64 (Sinclair's set).
    if n.bits() <= 64 {
        const WITNESSES: [u64; 7] = [2, 325, 9375, 28178, 450775, 9780504, 1795265022];
        return WITNESSES
            .iter()
            .all(|&a| miller_rabin_round(n, &BigUint::from_u64(a), &d, s, &n_minus_1));
    }

    let two = BigUint::from_u64(2);
    let span = n_minus_1.checked_sub(&two).expect("n > 4");
    for _ in 0..rounds {
        let a = &BigUint::random_below(rng, &span) + &two; // a in [2, n-2]
        if !miller_rabin_round(n, &a, &d, s, &n_minus_1) {
            return false;
        }
    }
    true
}

/// One Miller–Rabin round: returns false if `a` witnesses compositeness.
fn miller_rabin_round(
    n: &BigUint,
    a: &BigUint,
    d: &BigUint,
    s: usize,
    n_minus_1: &BigUint,
) -> bool {
    let a = a.rem(n);
    if a.is_zero() || a.is_one() {
        return true;
    }
    let mut x = a.modpow(d, n);
    if x.is_one() || &x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = (&x * &x).rem(n);
        if &x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false;
        }
    }
    false
}

/// Number of trailing zero bits.
fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut tz = 0;
    for &limb in n.limbs() {
        if limb == 0 {
            tz += 64;
        } else {
            tz += limb.trailing_zeros() as usize;
            break;
        }
    }
    tz
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// Candidates are random odd values with the top bit forced; each candidate
/// is screened with trial division and `mr_rounds` Miller–Rabin rounds.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime(rng: &mut impl Rng, bits: usize, mr_rounds: usize) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let candidate = BigUint::random_bits(rng, bits, true);
        if is_probable_prime(&candidate, mr_rounds, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x9e3779b9)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 97, 211, 65537, 4294967291] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 15, 91, 561, 41041, 825265, 321197185] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut r),
                "{c} should be composite (Carmichael numbers included)"
            );
        }
    }

    #[test]
    fn mersenne_prime_and_composite() {
        let mut r = rng();
        // 2^127 - 1 is prime; 2^128 - 1 is composite.
        let m127 = (&BigUint::one() << 127) - BigUint::one();
        let m128 = (&BigUint::one() << 128) - BigUint::one();
        assert!(is_probable_prime(&m127, 20, &mut r));
        assert!(!is_probable_prime(&m128, 20, &mut r));
    }

    #[test]
    fn rfc3526_modp1024_is_prime() {
        // The group modulus used by the P-SOP commutative cipher.
        let p = BigUint::from_hex(
            "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74\
             020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437\
             4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed\
             ee386bfb5a899fa5ae9f24117c4b1fe649286651ece65381ffffffffffffffff",
        )
        .unwrap();
        let mut r = rng();
        assert!(is_probable_prime(&p, 8, &mut r));
        // It is a safe prime: (p-1)/2 is also prime.
        let q = (&p - &BigUint::one()) >> 1;
        assert!(is_probable_prime(&q, 8, &mut r));
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut r = rng();
        for bits in [16usize, 48, 128] {
            let p = gen_prime(&mut r, bits, 12);
            assert_eq!(p.bits(), bits);
            assert!(!p.is_even());
        }
    }

    #[test]
    fn random_below_stays_in_range() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..500 {
            assert!(BigUint::random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_bits_exact_width() {
        let mut r = rng();
        for bits in [1usize, 7, 64, 65, 129] {
            let v = BigUint::random_bits(&mut r, bits, false);
            assert_eq!(v.bits(), bits);
        }
    }
}
