//! Modular arithmetic: Montgomery contexts, modular exponentiation and
//! extended-Euclid inverses.

use crate::uint::BigUint;
use crate::BigIntError;

/// A reusable Montgomery reduction context for a fixed odd modulus.
///
/// Exponentiations against the same modulus (the common case in the INDaaS
/// P-SOP ring protocol, where every element is encrypted under the same
/// group) share the precomputed `R^2 mod n` and `-n^{-1} mod 2^64` values.
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: BigUint,
    /// Number of limbs in the modulus (the Montgomery "k").
    k: usize,
    /// `-n[0]^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64k)`.
    rr: BigUint,
}

impl Montgomery {
    /// Creates a context for odd modulus `n`.
    ///
    /// Returns `None` if `n` is zero or even.
    pub fn new(n: &BigUint) -> Option<Self> {
        if n.is_zero() || n.is_even() {
            return None;
        }
        let k = n.limbs().len();
        let n0inv = inv64(n.limbs()[0]).wrapping_neg();
        // R^2 mod n computed by shifting; runs once per modulus.
        let r2 = (&BigUint::one() << (128 * k)).rem(n);
        Some(Montgomery {
            n: n.clone(),
            k,
            n0inv,
            rr: r2,
        })
    }

    /// The modulus this context reduces against.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Montgomery reduction of a (at most) `2k`-limb value `t`:
    /// returns `t * R^{-1} mod n`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let k = self.k;
        let mut limbs = t.limbs().to_vec();
        limbs.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = limbs[i].wrapping_mul(self.n0inv);
            // limbs += m * n << (64*i)
            let mut carry: u128 = 0;
            for (j, &nj) in self.n.limbs().iter().enumerate() {
                let tot = limbs[i + j] as u128 + m as u128 * nj as u128 + carry;
                limbs[i + j] = tot as u64;
                carry = tot >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let tot = limbs[idx] as u128 + carry;
                limbs[idx] = tot as u64;
                carry = tot >> 64;
                idx += 1;
            }
        }
        let reduced = BigUint::from_limbs(limbs[k..].to_vec());
        if reduced >= self.n {
            reduced.checked_sub(&self.n).expect("reduced >= n")
        } else {
            reduced
        }
    }

    /// Converts into Montgomery form: `a * R mod n`.
    fn to_mont(&self, a: &BigUint) -> BigUint {
        self.redc(&(a * &self.rr))
    }

    /// Multiplies two Montgomery-form values.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&(a * b))
    }

    /// Computes `base^exp mod n` using left-to-right square-and-multiply
    /// over Montgomery representatives.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if self.n.is_one() {
            return BigUint::zero();
        }
        let base = base.rem(&self.n);
        if exp.is_zero() {
            return BigUint::one();
        }
        let mont_base = self.to_mont(&base);
        let mut acc = self.to_mont(&BigUint::one());
        for i in (0..exp.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &mont_base);
            }
        }
        self.redc(&acc)
    }
}

/// Inverse of odd `x` modulo `2^64`, via Newton–Hensel lifting.
fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // Correct to 3 bits.
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

impl BigUint {
    /// Computes `self^exp mod m`.
    ///
    /// Uses Montgomery exponentiation for odd moduli and a plain
    /// square-and-multiply with trial division otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if let Some(ctx) = Montgomery::new(m) {
            return ctx.modpow(self, exp);
        }
        // Even modulus: generic square-and-multiply.
        let mut acc = BigUint::one();
        let base = self.rem(m);
        for i in (0..exp.bits()).rev() {
            acc = (&acc * &acc).rem(m);
            if exp.bit(i) {
                acc = (&acc * &base).rem(m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary-free Euclid; division is fast here).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: `self^{-1} mod m`, if it exists.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::NotInvertible`] when `gcd(self, m) != 1` and
    /// [`BigIntError::DivisionByZero`] when `m` is zero.
    pub fn modinv(&self, m: &BigUint) -> Result<BigUint, BigIntError> {
        if m.is_zero() {
            return Err(BigIntError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(BigUint::zero());
        }
        // Extended Euclid with explicit sign tracking for the Bezout
        // coefficient of `self`.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = (BigUint::zero(), false); // (magnitude, negative?)
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q * t1
            let qt1 = &q * &t1.0;
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return Err(BigIntError::NotInvertible);
        }
        let (mag, neg) = t0;
        let inv = if neg {
            m.checked_sub(&mag.rem(m))
                .expect("reduced magnitude below modulus")
                .rem(m)
        } else {
            mag.rem(m)
        };
        Ok(inv)
    }
}

/// Computes `a - b` over signed magnitudes `(magnitude, negative?)`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (&a.0 + &b.0, false),
        (true, false) => (&a.0 + &b.0, true),
        // Same sign: subtract magnitudes.
        (sa, _) => {
            if a.0 >= b.0 {
                (&a.0 - &b.0, sa)
            } else {
                (&b.0 - &a.0, !sa)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv64_on_random_odds() {
        for x in [1u64, 3, 5, 0xdeadbeef, u64::MAX, 0x1234567890abcdf1] {
            let odd = x | 1;
            assert_eq!(odd.wrapping_mul(inv64(odd)), 1);
        }
    }

    #[test]
    fn modpow_small_cases() {
        let m = BigUint::from_u64(97);
        let b = BigUint::from_u64(5);
        // Fermat: 5^96 = 1 mod 97.
        assert_eq!(b.modpow(&BigUint::from_u64(96), &m), BigUint::one());
        assert_eq!(b.modpow(&BigUint::zero(), &m), BigUint::one());
        assert_eq!(b.modpow(&BigUint::one(), &m), b);
    }

    #[test]
    fn modpow_even_modulus() {
        let m = BigUint::from_u64(100);
        let b = BigUint::from_u64(7);
        // 7^4 = 2401 = 1 mod 100.
        assert_eq!(b.modpow(&BigUint::from_u64(4), &m), BigUint::one());
    }

    #[test]
    fn modpow_matches_u128_reference() {
        let m = BigUint::from_u64(0xffff_fffb); // Prime below 2^32.
        for (b, e) in [(3u64, 1000u64), (0xdead, 12345), (2, 64), (12345, 0)] {
            let expect = {
                let mut acc: u128 = 1;
                let mut base = b as u128 % 0xffff_fffb;
                let mut exp = e;
                while exp > 0 {
                    if exp & 1 == 1 {
                        acc = acc * base % 0xffff_fffb;
                    }
                    base = base * base % 0xffff_fffb;
                    exp >>= 1;
                }
                acc as u64
            };
            assert_eq!(
                BigUint::from_u64(b).modpow(&BigUint::from_u64(e), &m),
                BigUint::from_u64(expect)
            );
        }
    }

    #[test]
    fn modpow_large_modulus_roundtrip() {
        // RSA-style sanity check: (m^e)^d = m mod p for prime p,
        // e*d = 1 mod p-1.
        let p = BigUint::from_hex(
            "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74\
             020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437\
             4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed\
             ee386bfb5a899fa5ae9f24117c4b1fe649286651ece65381ffffffffffffffff",
        )
        .unwrap();
        let pm1 = &p - &BigUint::one();
        let e = BigUint::from_u64(65537);
        let d = e.modinv(&pm1).unwrap();
        let msg = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let c = msg.modpow(&e, &p);
        assert_eq!(c.modpow(&d, &p), msg);
    }

    #[test]
    fn montgomery_rejects_even_or_zero() {
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&BigUint::from_u64(10)).is_none());
        assert!(Montgomery::new(&BigUint::from_u64(9)).is_some());
    }

    #[test]
    fn gcd_basic() {
        let a = BigUint::from_u64(48);
        let b = BigUint::from_u64(36);
        assert_eq!(a.gcd(&b), BigUint::from_u64(12));
        assert_eq!(a.gcd(&BigUint::zero()), a);
        assert_eq!(BigUint::zero().gcd(&b), b);
    }

    #[test]
    fn modinv_small() {
        let m = BigUint::from_u64(97);
        for x in 1u64..97 {
            let inv = BigUint::from_u64(x).modinv(&m).unwrap();
            let prod = (&BigUint::from_u64(x) * &inv).rem(&m);
            assert_eq!(prod, BigUint::one(), "inverse failed for {x}");
        }
    }

    #[test]
    fn modinv_not_coprime_errors() {
        let m = BigUint::from_u64(100);
        assert_eq!(
            BigUint::from_u64(10).modinv(&m),
            Err(BigIntError::NotInvertible)
        );
    }

    #[test]
    fn modinv_zero_modulus_errors() {
        assert_eq!(
            BigUint::from_u64(10).modinv(&BigUint::zero()),
            Err(BigIntError::DivisionByZero)
        );
    }
}
