//! Division and remainder: single-word fast path and Knuth Algorithm D.

use crate::uint::BigUint;

impl BigUint {
    /// Divides by a single word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divrem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        if self.is_zero() {
            return (BigUint::zero(), 0);
        }
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Divides, returning `(quotient, remainder)`.
    ///
    /// Uses the single-word fast path when the divisor fits in one limb and
    /// Knuth's Algorithm D otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.divrem_knuth(divisor)
    }

    /// Computes `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.divrem(m).1
    }

    /// Knuth TAOCP vol. 2, Algorithm 4.3.1 D, on 64-bit limbs.
    fn divrem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let n = divisor.limbs.len();
        debug_assert!(n >= 2);

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor << shift;
        let mut u = (self << shift).limbs;
        let m = u.len() - n;
        u.push(0); // Extra high limb for the partial remainders.

        let vn1 = v.limbs[n - 1];
        let vn2 = v.limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        // D2-D7: main loop over quotient digits, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate the quotient digit from the top two limbs.
            let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = num / vn1 as u128;
            let mut rhat = num % vn1 as u128;
            while qhat >> 64 != 0 || qhat * vn2 as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn1 as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // D4: multiply and subtract qhat * v from u[j..j+n+1].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) - borrow;
                u[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (u[j + n] as i128) - (carry as i128) - borrow;
            u[j + n] = sub as u64;

            // D5/D6: if we subtracted too much, add the divisor back once.
            if sub < 0 {
                qhat -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let t = u[j + i] as u128 + v.limbs[i] as u128 + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        // D8: denormalize the remainder.
        let r = BigUint::from_limbs(u[..n].to_vec()) >> shift;
        (BigUint::from_limbs(q), r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_biguint(rng: &mut impl Rng, limbs: usize) -> BigUint {
        let v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        BigUint::from_limbs(v)
    }

    #[test]
    fn divrem_u64_small() {
        let a = BigUint::from_u64(1000);
        let (q, r) = a.divrem_u64(7);
        assert_eq!(q, BigUint::from_u64(142));
        assert_eq!(r, 6);
    }

    #[test]
    fn divrem_smaller_dividend() {
        let a = BigUint::from_u64(3);
        let b = BigUint::from_limbs(vec![0, 1]);
        let (q, r) = a.divrem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn divrem_exact() {
        let b = BigUint::from_hex("ffffffffffffffffffffffffffffffffffffffff").unwrap();
        let q0 = BigUint::from_hex("123456789abcdef01234").unwrap();
        let a = &b * &q0;
        let (q, r) = a.divrem(&b);
        assert_eq!(q, q0);
        assert!(r.is_zero());
    }

    #[test]
    fn divrem_identity_randomized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xd1d1);
        for _ in 0..200 {
            let la = 1 + (rng.next_u64() % 12) as usize;
            let lb = 1 + (rng.next_u64() % 8) as usize;
            let a = rand_biguint(&mut rng, la);
            let b = rand_biguint(&mut rng, lb);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.divrem(&b);
            assert!(r < b, "remainder must be below divisor");
            assert_eq!(&(&q * &b) + &r, a, "a = q*b + r must hold");
        }
    }

    #[test]
    fn divrem_triggers_addback() {
        // Crafted case known to exercise the D6 add-back path:
        // u = 2^128 - 1, v = 2^64 + 3.
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = BigUint::from_limbs(vec![3, 1]);
        let (q, r) = a.divrem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = BigUint::from_u64(1).divrem(&BigUint::zero());
    }

    #[test]
    fn rem_matches_divrem() {
        let a = BigUint::from_hex("deadbeefdeadbeefdeadbeefdeadbeef11").unwrap();
        let m = BigUint::from_hex("fedcba987654321").unwrap();
        assert_eq!(a.rem(&m), a.divrem(&m).1);
    }
}
