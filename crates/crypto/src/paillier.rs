//! The Paillier additively homomorphic cryptosystem.
//!
//! This is the homomorphic building block of the Kissner–Song private
//! set-operation baseline that the paper compares P-SOP against (§6.3.2,
//! Figure 8). We use the standard `g = n + 1` variant:
//!
//! * `Enc(m; r) = (1 + m·n) · r^n  mod n²`
//! * `Dec(c)    = L(c^λ mod n²) · λ⁻¹ mod n`, with `L(x) = (x-1)/n`
//!
//! Ciphertexts add plaintexts when multiplied, and multiply plaintexts by
//! constants when exponentiated — exactly what encrypted-polynomial set
//! intersection needs.

use indaas_bigint::{gen_prime, BigUint, Montgomery};
use rand::Rng;

/// Paillier public key: the modulus `n` plus cached values for fast ops.
#[derive(Clone, Debug)]
pub struct PaillierPublicKey {
    n: BigUint,
    n2: BigUint,
    mont_n2: Montgomery,
}

/// Paillier keypair (public key + secret `λ`, `λ⁻¹ mod n`).
#[derive(Clone, Debug)]
pub struct PaillierKeypair {
    public: PaillierPublicKey,
    lambda: BigUint,
    mu: BigUint,
}

/// An opaque Paillier ciphertext (an element of `Z*_{n²}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierCiphertext(pub BigUint);

impl PaillierPublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Byte length of a serialized ciphertext (an element mod `n²`).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n2.bits().div_ceil(8)
    }

    /// Encrypts `m` (must be `< n`) with fresh randomness from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n`.
    pub fn encrypt(&self, m: &BigUint, rng: &mut impl Rng) -> PaillierCiphertext {
        assert!(m < &self.n, "plaintext must be below the modulus");
        // r uniform in [1, n) and coprime to n (w.h.p. for RSA moduli).
        let r = loop {
            let r = BigUint::random_below(rng, &self.n);
            if !r.is_zero() && r.gcd(&self.n).is_one() {
                break r;
            }
        };
        // (1 + m*n) mod n^2
        let gm = (&BigUint::one() + &(m * &self.n)).rem(&self.n2);
        let rn = self.mont_n2.modpow(&r, &self.n);
        PaillierCiphertext((&gm * &rn).rem(&self.n2))
    }

    /// Homomorphic addition: `Dec(add(c1, c2)) = Dec(c1) + Dec(c2) mod n`.
    pub fn add(&self, c1: &PaillierCiphertext, c2: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext((&c1.0 * &c2.0).rem(&self.n2))
    }

    /// Homomorphic scalar multiplication: `Dec(mul(c, k)) = k·Dec(c) mod n`.
    pub fn mul_const(&self, c: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(self.mont_n2.modpow(&c.0, k))
    }

    /// Serializes a ciphertext to fixed-width bytes.
    pub fn ciphertext_to_bytes(&self, c: &PaillierCiphertext) -> Vec<u8> {
        c.0.to_bytes_be_padded(self.ciphertext_bytes())
    }
}

impl PaillierKeypair {
    /// Generates a keypair with an `n` of roughly `bits` bits.
    ///
    /// `bits = 1024` matches the paper's Figure 8 configuration. Tests use
    /// smaller sizes; `bits` must be at least 16.
    pub fn generate(bits: usize, rng: &mut impl Rng) -> Self {
        assert!(bits >= 16, "modulus too small");
        let half = bits / 2;
        loop {
            let p = gen_prime(rng, half, 16);
            let q = gen_prime(rng, half, 16);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let p1 = &p - &BigUint::one();
            let q1 = &q - &BigUint::one();
            // λ = lcm(p-1, q-1)
            let g = p1.gcd(&q1);
            let lambda = (&p1 * &q1).divrem(&g).0;
            let Ok(mu) = lambda.modinv(&n) else {
                continue; // gcd(λ, n) != 1 is vanishingly rare; retry.
            };
            let n2 = &n * &n;
            let mont_n2 = Montgomery::new(&n2).expect("n² is odd");
            return PaillierKeypair {
                public: PaillierPublicKey { n, n2, mont_n2 },
                lambda,
                mu,
            };
        }
    }

    /// The public half of the keypair.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypts a ciphertext.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        let pk = &self.public;
        let x = pk.mont_n2.modpow(&c.0, &self.lambda);
        // L(x) = (x - 1) / n
        let l = x
            .checked_sub(&BigUint::one())
            .expect("x >= 1 for valid ciphertexts")
            .divrem(&pk.n)
            .0;
        (&l * &self.mu).rem(&pk.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x9a11)
    }

    fn small_keypair(r: &mut rand::rngs::StdRng) -> PaillierKeypair {
        PaillierKeypair::generate(64, r)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut r = rng();
        let kp = small_keypair(&mut r);
        for m in [0u64, 1, 42, 1000, 123456] {
            let mb = BigUint::from_u64(m);
            let c = kp.public().encrypt(&mb, &mut r);
            assert_eq!(kp.decrypt(&c), mb, "roundtrip failed for {m}");
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let mut r = rng();
        let kp = small_keypair(&mut r);
        let m = BigUint::from_u64(7);
        let c1 = kp.public().encrypt(&m, &mut r);
        let c2 = kp.public().encrypt(&m, &mut r);
        assert_ne!(c1, c2, "ciphertexts must be probabilistic");
        assert_eq!(kp.decrypt(&c1), kp.decrypt(&c2));
    }

    #[test]
    fn homomorphic_addition() {
        let mut r = rng();
        let kp = small_keypair(&mut r);
        let a = BigUint::from_u64(1234);
        let b = BigUint::from_u64(5678);
        let ca = kp.public().encrypt(&a, &mut r);
        let cb = kp.public().encrypt(&b, &mut r);
        let sum = kp.public().add(&ca, &cb);
        assert_eq!(kp.decrypt(&sum), BigUint::from_u64(6912));
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let mut r = rng();
        let kp = small_keypair(&mut r);
        let m = BigUint::from_u64(321);
        let c = kp.public().encrypt(&m, &mut r);
        let c3 = kp.public().mul_const(&c, &BigUint::from_u64(3));
        assert_eq!(kp.decrypt(&c3), BigUint::from_u64(963));
    }

    #[test]
    fn addition_wraps_modulo_n() {
        let mut r = rng();
        let kp = small_keypair(&mut r);
        let n = kp.public().modulus().clone();
        let m = &n - &BigUint::one(); // n - 1
        let c = kp.public().encrypt(&m, &mut r);
        let c2 = kp
            .public()
            .add(&c, &kp.public().encrypt(&BigUint::from_u64(2), &mut r));
        // (n - 1) + 2 = 1 mod n
        assert_eq!(kp.decrypt(&c2), BigUint::one());
    }

    #[test]
    #[should_panic(expected = "plaintext must be below the modulus")]
    fn oversized_plaintext_panics() {
        let mut r = rng();
        let kp = small_keypair(&mut r);
        let too_big = kp.public().modulus().clone();
        let _ = kp.public().encrypt(&too_big, &mut r);
    }

    #[test]
    fn ciphertext_serialization_width() {
        let mut r = rng();
        let kp = small_keypair(&mut r);
        let c = kp.public().encrypt(&BigUint::from_u64(5), &mut r);
        let bytes = kp.public().ciphertext_to_bytes(&c);
        assert_eq!(bytes.len(), kp.public().ciphertext_bytes());
    }

    #[test]
    fn larger_key_roundtrip() {
        // One medium-size key to exercise multi-limb paths (256-bit n).
        let mut r = rng();
        let kp = PaillierKeypair::generate(256, &mut r);
        let m = BigUint::from_u64(0xdeadbeefcafe);
        let c = kp.public().encrypt(&m, &mut r);
        assert_eq!(kp.decrypt(&c), m);
    }
}
