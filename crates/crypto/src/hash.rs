//! From-scratch SHA-256 and SHA-1, plus a seeded 64-bit hash family.
//!
//! The paper's P-SOP prototype hashes elements with MD5 before commutative
//! encryption; we use SHA-256 (the choice of hash is irrelevant to the
//! protocol as long as all parties agree). SHA-1 is provided as well since
//! the paper names it as the alternative (§4.2.2). MinHash needs a family of
//! `m` independent hash functions, provided by [`Hash64`].

/// Streaming SHA-256 (FIPS 180-4).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.total_len = self.total_len.wrapping_sub(8); // Length bytes are not message bytes.
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Streaming SHA-1 (FIPS 180-1). Provided for protocol-compatibility tests;
/// prefer [`Sha256`] for anything new.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.total_len = self.total_len.wrapping_sub(8);
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// A seeded 64-bit hash function, one member of the MinHash family.
///
/// Derived from SHA-256 of `seed || data` truncated to 64 bits: slower than a
/// dedicated non-cryptographic hash but unquestionably independent across
/// seeds, which is what the MinHash error bound O(1/sqrt(m)) assumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hash64 {
    seed: u64,
}

impl Hash64 {
    /// Creates the family member with the given seed.
    pub fn new(seed: u64) -> Self {
        Hash64 { seed }
    }

    /// Hashes `data` to 64 bits.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut h = Sha256::new();
        h.update(&self.seed.to_be_bytes());
        h.update(data);
        let digest = h.finalize();
        u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
    }

    /// Builds the first `m` members of the family (seeds `0..m`).
    pub fn family(m: usize) -> Vec<Hash64> {
        (0..m as u64).map(Hash64::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_nist_vectors() {
        // FIPS 180-4 example vectors.
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Feed in awkward chunk sizes crossing block boundaries.
        let mut h = Sha256::new();
        let mut off = 0;
        for size in [1usize, 63, 64, 65, 127, 128, 200, 352] {
            h.update(&data[off..off + size]);
            off += size;
        }
        h.update(&data[off..]);
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha1_nist_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn hash64_differs_across_seeds() {
        let h0 = Hash64::new(0);
        let h1 = Hash64::new(1);
        assert_ne!(h0.hash(b"component-x"), h1.hash(b"component-x"));
        // But is deterministic per seed.
        assert_eq!(h0.hash(b"component-x"), Hash64::new(0).hash(b"component-x"));
    }

    #[test]
    fn hash64_family_size() {
        let fam = Hash64::family(128);
        assert_eq!(fam.len(), 128);
        assert_eq!(fam[5], Hash64::new(5));
    }

    #[test]
    fn hash64_distribution_rough_uniformity() {
        // Hash 4096 inputs, check bucket counts over 16 buckets are sane.
        let h = Hash64::new(42);
        let mut buckets = [0u32; 16];
        for i in 0..4096u32 {
            let v = h.hash(&i.to_be_bytes());
            buckets[(v >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!((150..=400).contains(&b), "bucket count {b} out of range");
        }
    }
}
