//! Uniform random permutations (Fisher–Yates).
//!
//! Each P-SOP party permutes its ciphertext list before forwarding it around
//! the ring, so successors cannot correlate positions with elements.

use rand::Rng;

/// Shuffles `items` in place with a uniform Fisher–Yates permutation.
pub fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        // Uniform j in [0, i] via rejection-free modulo on a 64-bit draw;
        // the bias for i << 2^64 is negligible (< 2^-40 for any real list).
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shuffle_preserves_multiset() {
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_empty_and_single() {
        let mut r = rand::rngs::StdRng::seed_from_u64(2);
        let mut empty: Vec<u8> = vec![];
        shuffle(&mut empty, &mut r);
        assert!(empty.is_empty());
        let mut one = vec![42];
        shuffle(&mut one, &mut r);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn shuffle_is_not_identity_for_long_lists() {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        let orig: Vec<u32> = (0..1000).collect();
        let mut v = orig.clone();
        shuffle(&mut v, &mut r);
        assert_ne!(
            v, orig,
            "a 1000-element shuffle returning identity is ~impossible"
        );
    }

    #[test]
    fn shuffle_positions_roughly_uniform() {
        // Track where element 0 lands over many shuffles of a 4-element list.
        let mut r = rand::rngs::StdRng::seed_from_u64(4);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let mut v = [0u8, 1, 2, 3];
            shuffle(&mut v, &mut r);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "position count {c} out of range");
        }
    }
}
