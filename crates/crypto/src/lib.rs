//! Cryptographic primitives for INDaaS private independence auditing.
//!
//! Everything here is implemented from scratch on top of
//! [`indaas_bigint`]:
//!
//! * [`hash`] — SHA-256 and SHA-1 digests plus a seeded 64-bit hash family
//!   used by MinHash,
//! * [`commutative`] — the Pohlig–Hellman commutative cipher that powers the
//!   P-SOP private set-intersection-cardinality protocol (§4.2.2 of the
//!   paper),
//! * [`paillier`] — the additively homomorphic Paillier cryptosystem used by
//!   the Kissner–Song baseline (§6.3.2),
//! * [`perm`] — uniform random permutations (each P-SOP party shuffles its
//!   ciphertexts before forwarding them around the ring).
//!
//! # Security note
//!
//! These implementations are faithful to the protocols but are *research
//! artifacts*: no constant-time guarantees, no side-channel hardening. They
//! exist to reproduce the INDaaS evaluation, not to protect production data.

pub mod commutative;
pub mod hash;
pub mod paillier;
pub mod perm;
pub mod rsa;

pub use commutative::{CommutativeCipher, CommutativeKey, MODP_1024_HEX};
pub use hash::{sha1, sha256, Hash64, Sha1, Sha256};
pub use paillier::{PaillierCiphertext, PaillierKeypair, PaillierPublicKey};
pub use perm::shuffle;
pub use rsa::{Signature, SigningKey, VerifyingKey};
