//! Pohlig–Hellman commutative encryption over a shared prime-order group.
//!
//! P-SOP (§4.2.2) requires a cipher with the commutativity property
//! `E_K(E_J(m)) = E_J(E_K(m))`. Exponentiation modulo a shared prime `p`
//! provides it: party `i` holds a secret exponent `e_i` coprime to `p-1`,
//! encrypts with `m ↦ m^{e_i} mod p`, and exponentiations under different
//! keys commute. The paper's prototype used commutative RSA (SRA "Mental
//! Poker" [56]); Pohlig–Hellman [50] over a fixed safe prime is the standard
//! equivalent that avoids a shared-modulus key ceremony.
//!
//! The group is the 1024-bit MODP group from RFC 3526 (a well-known safe
//! prime), matching the paper's 1024-bit key size in Figure 8.

use indaas_bigint::{BigUint, Montgomery};
use rand::Rng;

use crate::hash::sha256;

/// The RFC 3526 1024-bit MODP prime (Oakley group 2), in hexadecimal.
pub const MODP_1024_HEX: &str = "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74\
     020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437\
     4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed\
     ee386bfb5a899fa5ae9f24117c4b1fe649286651ece65381ffffffffffffffff";

/// A party's secret commutative-encryption key: an exponent and its inverse
/// modulo `p-1`.
#[derive(Clone, Debug)]
pub struct CommutativeKey {
    enc_exp: BigUint,
    dec_exp: BigUint,
}

/// Commutative cipher context: the shared group plus a party's secret key.
///
/// # Examples
///
/// ```
/// use indaas_crypto::CommutativeCipher;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let alice = CommutativeCipher::generate(&mut rng);
/// let bob = CommutativeCipher::generate(&mut rng);
/// let m = alice.hash_to_group(b"libssl 1.0.1");
/// let both1 = bob.encrypt(&alice.encrypt(&m));
/// let both2 = alice.encrypt(&bob.encrypt(&m));
/// assert_eq!(both1, both2); // Order of encryption does not matter.
/// ```
pub struct CommutativeCipher {
    mont: Montgomery,
    key: CommutativeKey,
}

impl CommutativeCipher {
    /// Byte length of a serialized group element / ciphertext.
    pub const ELEMENT_BYTES: usize = 128;

    /// Generates a fresh key in the shared RFC 3526 group.
    pub fn generate(rng: &mut impl Rng) -> Self {
        let p = BigUint::from_hex(MODP_1024_HEX).expect("constant prime parses");
        Self::with_modulus(p, rng)
    }

    /// Generates a key for an arbitrary odd prime modulus (tests use small
    /// groups to keep exhaustive checks cheap).
    pub fn with_modulus(p: BigUint, rng: &mut impl Rng) -> Self {
        let p_minus_1 = p.checked_sub(&BigUint::one()).expect("p >= 2");
        let key = loop {
            let e = BigUint::random_below(rng, &p_minus_1);
            if e.is_zero() {
                continue;
            }
            if let Ok(d) = e.modinv(&p_minus_1) {
                break CommutativeKey {
                    enc_exp: e,
                    dec_exp: d,
                };
            }
        };
        let mont = Montgomery::new(&p).expect("odd prime modulus");
        CommutativeCipher { mont, key }
    }

    /// The group modulus.
    pub fn modulus(&self) -> &BigUint {
        self.mont.modulus()
    }

    /// The secret key (exposed for persistence in tests; never sent).
    pub fn key(&self) -> &CommutativeKey {
        &self.key
    }

    /// Deterministically maps arbitrary bytes into the group, via SHA-256.
    ///
    /// The digest (256 bits) is always far below the 1024-bit modulus, and is
    /// non-zero with overwhelming probability, so the map lands in the
    /// multiplicative group.
    pub fn hash_to_group(&self, data: &[u8]) -> BigUint {
        let digest = sha256(data);
        let v = BigUint::from_bytes_be(&digest);
        // Extremely unlikely zero digest: map to 1 (still a group element).
        if v.is_zero() {
            BigUint::one()
        } else {
            v.rem(self.mont.modulus())
        }
    }

    /// Encrypts a group element: `m^e mod p`.
    pub fn encrypt(&self, m: &BigUint) -> BigUint {
        self.mont.modpow(m, &self.key.enc_exp)
    }

    /// Decrypts one layer this party added: `c^d mod p`.
    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        self.mont.modpow(c, &self.key.dec_exp)
    }

    /// Serializes a ciphertext to fixed-width bytes (for traffic accounting
    /// and wire transfer in the simulated network).
    pub fn element_to_bytes(&self, c: &BigUint) -> Vec<u8> {
        let width = self.mont.modulus().bits().div_ceil(8);
        c.to_bytes_be_padded(width)
    }

    /// Deserializes a ciphertext.
    pub fn element_from_bytes(&self, bytes: &[u8]) -> BigUint {
        BigUint::from_bytes_be(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xc0ffee)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut r = rng();
        let c = CommutativeCipher::generate(&mut r);
        let m = c.hash_to_group(b"router 10.0.0.1");
        assert_eq!(c.decrypt(&c.encrypt(&m)), m);
    }

    #[test]
    fn two_party_commutativity() {
        let mut r = rng();
        let a = CommutativeCipher::generate(&mut r);
        let b = CommutativeCipher::generate(&mut r);
        let m = a.hash_to_group(b"libc6 2.19");
        assert_eq!(b.encrypt(&a.encrypt(&m)), a.encrypt(&b.encrypt(&m)));
    }

    #[test]
    fn three_party_any_order() {
        let mut r = rng();
        let parties: Vec<_> = (0..3)
            .map(|_| CommutativeCipher::generate(&mut r))
            .collect();
        let m = parties[0].hash_to_group(b"core-router-7");
        let abc = parties[2].encrypt(&parties[1].encrypt(&parties[0].encrypt(&m)));
        let cba = parties[0].encrypt(&parties[1].encrypt(&parties[2].encrypt(&m)));
        let bca = parties[0].encrypt(&parties[2].encrypt(&parties[1].encrypt(&m)));
        assert_eq!(abc, cba);
        assert_eq!(abc, bca);
    }

    #[test]
    fn layered_decrypt_in_any_order() {
        let mut r = rng();
        let a = CommutativeCipher::generate(&mut r);
        let b = CommutativeCipher::generate(&mut r);
        let m = a.hash_to_group(b"x");
        let c2 = b.encrypt(&a.encrypt(&m));
        // Remove layers in the opposite order they were applied, and also in
        // the same order; both must recover m.
        assert_eq!(a.decrypt(&b.decrypt(&c2)), m);
        assert_eq!(b.decrypt(&a.decrypt(&c2)), m);
    }

    #[test]
    fn equal_plaintexts_collide_distinct_do_not() {
        let mut r = rng();
        let a = CommutativeCipher::generate(&mut r);
        let b = CommutativeCipher::generate(&mut r);
        let m1 = a.hash_to_group(b"switch-1");
        let m2 = a.hash_to_group(b"switch-2");
        let e1 = b.encrypt(&a.encrypt(&m1));
        let e1b = a.encrypt(&b.encrypt(&m1));
        let e2 = b.encrypt(&a.encrypt(&m2));
        assert_eq!(e1, e1b, "same element must map to same double ciphertext");
        assert_ne!(e1, e2, "distinct elements must stay distinct");
    }

    #[test]
    fn ciphertext_bytes_fixed_width() {
        let mut r = rng();
        let a = CommutativeCipher::generate(&mut r);
        let m = a.hash_to_group(b"element");
        let c = a.encrypt(&m);
        let bytes = a.element_to_bytes(&c);
        assert_eq!(bytes.len(), CommutativeCipher::ELEMENT_BYTES);
        assert_eq!(a.element_from_bytes(&bytes), c);
    }

    #[test]
    fn small_group_exhaustive_roundtrip() {
        // p = 1019 (prime): test all residues round-trip.
        let mut r = rng();
        let c = CommutativeCipher::with_modulus(BigUint::from_u64(1019), &mut r);
        for m in 1u64..1019 {
            let mb = BigUint::from_u64(m);
            assert_eq!(c.decrypt(&c.encrypt(&mb)), mb, "failed at m={m}");
        }
    }
}
