//! Minimal RSA signatures for the PIA audit trail (§5.2 of the paper).
//!
//! The paper's answer to dishonest PIA participants is "trust but leave an
//! audit trail": providers digitally sign the data they fed into the
//! protocol, and a meta-auditor can later verify the records. This module
//! provides the signature primitive — hash-then-exponentiate RSA over our
//! own bignum (full-domain-hash style; adequate for a research artifact,
//! not a hardened PKCS implementation).

use indaas_bigint::{gen_prime, BigUint, Montgomery};
use rand::Rng;

use crate::hash::sha256;

/// An RSA signing keypair.
#[derive(Clone, Debug)]
pub struct SigningKey {
    n: BigUint,
    d: BigUint,
    public: VerifyingKey,
}

/// The public verification half.
#[derive(Clone, Debug)]
pub struct VerifyingKey {
    n: BigUint,
    e: BigUint,
}

/// A detached signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature(pub Vec<u8>);

impl SigningKey {
    /// Generates a keypair with a modulus of roughly `bits` bits
    /// (`e = 65537`).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64`.
    pub fn generate(bits: usize, rng: &mut impl Rng) -> Self {
        assert!(bits >= 64, "modulus too small to embed a digest");
        let e = BigUint::from_u64(65537);
        loop {
            let p = gen_prime(rng, bits / 2, 16);
            let q = gen_prime(rng, bits / 2, 16);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let phi = &(&p - &BigUint::one()) * &(&q - &BigUint::one());
            let Ok(d) = e.modinv(&phi) else {
                continue; // gcd(e, phi) != 1: re-draw primes.
            };
            let public = VerifyingKey { n: n.clone(), e };
            return SigningKey { n, d, public };
        }
    }

    /// The public verification key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// Signs a message: `SHA-256(m)` interpreted as an integer below `n`,
    /// raised to the private exponent.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let h = digest_to_int(message, &self.n);
        let mont = Montgomery::new(&self.n).expect("RSA modulus is odd");
        let sig = mont.modpow(&h, &self.d);
        Signature(sig.to_bytes_be_padded(self.n.bits().div_ceil(8)))
    }
}

impl VerifyingKey {
    /// Verifies a signature against a message.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let sig = BigUint::from_bytes_be(&signature.0);
        if sig >= self.n {
            return false;
        }
        let mont = match Montgomery::new(&self.n) {
            Some(m) => m,
            None => return false,
        };
        mont.modpow(&sig, &self.e) == digest_to_int(message, &self.n)
    }

    /// Serializes the key for distribution (modulus ‖ exponent, both
    /// length-prefixed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(n.len() + e.len() + 8);
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses a key serialized by [`VerifyingKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let n_len = u32::from_be_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let n = BigUint::from_bytes_be(bytes.get(4..4 + n_len)?);
        let rest = &bytes[4 + n_len..];
        let e_len = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
        let e = BigUint::from_bytes_be(rest.get(4..4 + e_len)?);
        Some(VerifyingKey { n, e })
    }
}

/// SHA-256 digest reduced into the modulus range.
fn digest_to_int(message: &[u8], n: &BigUint) -> BigUint {
    BigUint::from_bytes_be(&sha256(message)).rem(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn key() -> SigningKey {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x55a);
        SigningKey::generate(512, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key();
        let sig = sk.sign(b"component-set digest 1234");
        assert!(sk
            .verifying_key()
            .verify(b"component-set digest 1234", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let sk = key();
        let sig = sk.sign(b"honest data");
        assert!(!sk.verifying_key().verify(b"tampered data", &sig));
    }

    #[test]
    fn corrupted_signature_rejected() {
        let sk = key();
        let mut sig = sk.sign(b"msg");
        sig.0[0] ^= 0xff;
        assert!(!sk.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn cross_key_rejected() {
        let sk1 = key();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x55b);
        let sk2 = SigningKey::generate(512, &mut rng);
        let sig = sk1.sign(b"msg");
        assert!(!sk2.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn verifying_key_serialization_roundtrip() {
        let sk = key();
        let bytes = sk.verifying_key().to_bytes();
        let vk = VerifyingKey::from_bytes(&bytes).unwrap();
        let sig = sk.sign(b"serialized key check");
        assert!(vk.verify(b"serialized key check", &sig));
    }

    #[test]
    fn oversized_signature_rejected() {
        let sk = key();
        let huge = Signature(vec![0xff; 200]);
        assert!(!sk.verifying_key().verify(b"msg", &huge));
    }
}
