//! Topology and workload generators for the INDaaS evaluation.
//!
//! Four generators cover every scenario the paper evaluates:
//!
//! * [`fattree`] — the three-stage fat-tree model behind Table 3 and the
//!   Figure 7 scalability study (topologies A/B/C),
//! * [`benson`] — a Benson-et-al.-style data-center network for the common
//!   network dependency case study (§6.2.1, Figure 6a),
//! * [`iaas_lab`] — the 4-server IaaS lab cloud with OpenStack-like VM
//!   placement for the common hardware dependency case study (§6.2.2,
//!   Figure 6b),
//! * [`clouds`] — four cloud providers running Riak, MongoDB, Redis and
//!   CouchDB for the private multi-cloud software audit (§6.2.3, Figure 6c,
//!   Table 2).
//!
//! Each generator produces ground-truth [`indaas_deps::DependencyRecord`]s
//! in the Table-1 format, which simulated collectors then serve (optionally
//! with misses) to the auditing pipeline.

pub mod benson;
pub mod clouds;
pub mod fattree;
pub mod iaas_lab;

pub use benson::BensonDatacenter;
pub use clouds::{cloud_software_records, CloudStack, STORES};
pub use fattree::{FatTree, FatTreeConfig};
pub use iaas_lab::IaasLab;
