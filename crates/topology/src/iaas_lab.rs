//! The 4-server IaaS lab cloud of the common hardware dependency case
//! study (§6.2.2, Figure 6b).
//!
//! The paper builds a small OpenStack cloud: four servers behind four
//! switches, VMs placed automatically, and a Riak storage service deployed
//! "redundantly" on two VMs — which OpenStack's least-loaded-random
//! placement puts on the *same physical server*, defeating the redundancy.
//! SIA's minimal-RG audit then surfaces the shared server as a size-1 risk
//! group.
//!
//! Topology: `Switch1` connects Server1/Server2, `Switch2` connects
//! Server3/Server4, and both switches are dual-homed to core routers
//! `Core1`/`Core2`.

use indaas_deps::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};
use rand::{Rng, SeedableRng};

/// Number of physical servers.
pub const NUM_SERVERS: usize = 4;
/// Number of VMs managed by the cloud.
pub const NUM_VMS: usize = 8;

/// RAM capacity (GB) per server. Server2 is the big box — which is exactly
/// what makes OpenStack's "least loaded" policy pile VMs onto it.
pub const SERVER_RAM_GB: [usize; NUM_SERVERS] = [16, 32, 16, 16];

/// RAM (GB) requested by every VM flavor in the lab.
pub const VM_RAM_GB: usize = 2;

/// The lab cloud: placement state plus record generation.
#[derive(Clone, Debug)]
pub struct IaasLab {
    /// `placement[v]` = index (0-based) of the server hosting VM `v+1`.
    placement: Vec<usize>,
}

impl IaasLab {
    /// Builds the cloud and places all VMs with the OpenStack-like policy:
    /// each VM goes to a random server among those with the most free RAM
    /// ("randomly selects from the least loaded resources", §6.2.2).
    ///
    /// Because Server2 has twice the RAM of its peers, it stays the least
    /// loaded host for every placement in this lab — including both Riak
    /// VMs (VM7 and VM8), reproducing the paper's pathology for any seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut free = SERVER_RAM_GB;
        let mut placement = Vec::with_capacity(NUM_VMS);
        for _ in 0..NUM_VMS {
            let max_free = *free.iter().max().expect("non-empty");
            let candidates: Vec<usize> =
                (0..NUM_SERVERS).filter(|&s| free[s] == max_free).collect();
            let pick = candidates[(rng.next_u64() % candidates.len() as u64) as usize];
            assert!(free[pick] >= VM_RAM_GB, "lab cloud out of capacity");
            free[pick] -= VM_RAM_GB;
            placement.push(pick);
        }
        IaasLab { placement }
    }

    /// Builds the cloud with an explicit placement (for tests and for
    /// re-deployment after an audit).
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`NUM_VMS`] entries each below [`NUM_SERVERS`].
    pub fn with_placement(placement: Vec<usize>) -> Self {
        assert_eq!(placement.len(), NUM_VMS, "need a slot for every VM");
        assert!(placement.iter().all(|&s| s < NUM_SERVERS));
        IaasLab { placement }
    }

    /// The server (1-based name) hosting `vm` (1-based).
    pub fn host_of_vm(&self, vm: usize) -> String {
        assert!((1..=NUM_VMS).contains(&vm), "vm out of range");
        format!("Server{}", self.placement[vm - 1] + 1)
    }

    /// VM name (1-based).
    pub fn vm_name(&self, vm: usize) -> String {
        assert!((1..=NUM_VMS).contains(&vm), "vm out of range");
        format!("VM{vm}")
    }

    /// The switch a server (1-based) is cabled to.
    pub fn switch_of_server(&self, server: usize) -> &'static str {
        match server {
            1 | 2 => "Switch1",
            3 | 4 => "Switch2",
            _ => panic!("server out of range"),
        }
    }

    /// Ground-truth dependency records, VM-centric: the audited "servers"
    /// are the VMs, each depending on its own instance, its host server,
    /// and the host's network uplinks. This is the dependency view the
    /// paper's SIA audit operates on in §6.2.2 — it is what surfaces the
    /// shared host as a size-1 risk group.
    pub fn records(&self) -> Vec<DependencyRecord> {
        let mut out = Vec::new();
        for v in 1..=NUM_VMS {
            let vm = self.vm_name(v);
            let host = self.host_of_vm(v);
            let server_idx = self.placement[v - 1] + 1;
            let switch = self.switch_of_server(server_idx);
            // The VM instance itself can fail (crash, corruption).
            out.push(DependencyRecord::Hardware(HardwareDep {
                hw: vm.clone(),
                hw_type: "Instance".into(),
                dep: vm.clone(),
            }));
            // The physical host: the hidden shared dependency.
            out.push(DependencyRecord::Hardware(HardwareDep {
                hw: vm.clone(),
                hw_type: "Host".into(),
                dep: host.clone(),
            }));
            // Network: the host's uplinks through its switch to either core.
            for core in ["Core1", "Core2"] {
                out.push(DependencyRecord::Network(NetworkDep {
                    src: vm.clone(),
                    dst: "Internet".into(),
                    route: vec![switch.to_string(), core.to_string()],
                }));
            }
        }
        // Software: the Riak service instances on VM7 and VM8.
        for (inst, vm) in [(1usize, 7usize), (2, 8)] {
            out.push(DependencyRecord::Software(SoftwareDep {
                pgm: format!("Riak{inst}"),
                hw: self.vm_name(vm),
                deps: vec!["erlang-base".into(), "libc6".into(), "libssl1.0.0".into()],
            }));
        }
        out
    }

    /// The 1-based VM indices running the redundant Riak service.
    pub fn riak_vms(&self) -> [usize; 2] {
        [7, 8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_pathology_reproduced() {
        // The big server stays least loaded throughout, so the two Riak VMs
        // are co-located regardless of the random tie-break seed.
        for seed in [0u64, 1, 2014, 0xdeadbeef] {
            let lab = IaasLab::new(seed);
            assert_eq!(
                lab.host_of_vm(7),
                lab.host_of_vm(8),
                "expected VM7 and VM8 co-located under seed {seed}; placement: {:?}",
                lab.placement
            );
            assert_eq!(lab.host_of_vm(7), "Server2");
        }
    }

    #[test]
    fn capacity_policy_prefers_big_server() {
        // With Server2 at 32 GB and VMs at 2 GB each, all eight VMs fit on
        // Server2 before its free RAM drops to its peers' level.
        let lab = IaasLab::new(7);
        for v in 1..=NUM_VMS {
            assert_eq!(lab.host_of_vm(v), "Server2");
        }
    }

    #[test]
    fn explicit_placement_roundtrip() {
        let lab = IaasLab::with_placement(vec![0, 1, 2, 3, 0, 1, 1, 1]);
        assert_eq!(lab.host_of_vm(7), "Server2");
        assert_eq!(lab.host_of_vm(8), "Server2");
        assert_eq!(lab.host_of_vm(1), "Server1");
    }

    #[test]
    fn record_inventory() {
        let lab = IaasLab::with_placement(vec![0, 1, 2, 3, 0, 1, 1, 1]);
        let records = lab.records();
        // 8 VMs × (2 hardware + 2 routes) + 2 software = 34.
        assert_eq!(records.len(), 34);
        assert_eq!(records.iter().filter(|r| r.kind() == "network").count(), 16);
        assert_eq!(
            records.iter().filter(|r| r.kind() == "hardware").count(),
            16
        );
        assert_eq!(records.iter().filter(|r| r.kind() == "software").count(), 2);
    }

    #[test]
    fn switch_wiring() {
        let lab = IaasLab::new(0);
        assert_eq!(lab.switch_of_server(1), "Switch1");
        assert_eq!(lab.switch_of_server(2), "Switch1");
        assert_eq!(lab.switch_of_server(3), "Switch2");
        assert_eq!(lab.switch_of_server(4), "Switch2");
    }

    #[test]
    #[should_panic(expected = "vm out of range")]
    fn vm_zero_rejected() {
        let _ = IaasLab::new(0).host_of_vm(0);
    }
}
