//! Four cloud providers with distinct key-value stores, for the private
//! multi-cloud software audit (§6.2.3, Figure 6c, Table 2).
//!
//! Cloud1 runs Riak, Cloud2 MongoDB, Cloud3 Redis, Cloud4 CouchDB. Each
//! provider's component set is the package dependency closure of its store
//! (what `apt-rdepends` would report on a Debian-era host), plus a few
//! provider-local infrastructure components that never overlap. The package
//! lists are synthesized but follow the real stacks' shapes: the two Erlang
//! stores share the Erlang runtime; everything shares the C library family;
//! MongoDB drags in Boost; Redis is tiny.

use indaas_deps::{DependencyRecord, SoftwareDep};

/// The store each cloud runs, in cloud order (Cloud1..Cloud4).
pub const STORES: [&str; 4] = ["Riak", "MongoDB", "Redis", "CouchDB"];

/// One cloud provider's software stack.
#[derive(Clone, Debug)]
pub struct CloudStack {
    /// Provider name ("Cloud1"...).
    pub name: String,
    /// Store program name.
    pub store: String,
    /// Package dependency closure of the store.
    pub packages: Vec<String>,
}

/// Common packages every Linux store pulls in.
fn base_packages() -> Vec<&'static str> {
    vec![
        "libc6-2.19",
        "libgcc1-4.9",
        "zlib1g-1.2.8",
        "multiarch-support",
        "gcc-4.9-base",
    ]
}

/// The Erlang runtime closure shared by Riak and CouchDB.
fn erlang_packages() -> Vec<&'static str> {
    vec![
        "erlang-base-17.3",
        "erlang-crypto-17.3",
        "erlang-syntax-tools-17.3",
        "erlang-asn1-17.3",
        "erlang-public-key-17.3",
        "erlang-ssl-17.3",
        "libtinfo5-5.9",
        "libncurses5-5.9",
        "libsctp1-1.0.16",
    ]
}

/// Builds the package closure for one store.
pub fn packages_for(store: &str) -> Vec<String> {
    let mut pkgs: Vec<&str> = base_packages();
    match store {
        "Riak" => {
            pkgs.extend(erlang_packages());
            pkgs.extend([
                "libssl1.0.0-1.0.1f",
                "libstdc++6-4.9",
                "libsvn1-1.8.10",
                "libserf-1-1.3.7",
                "libsasl2-2-2.1.26",
                "libapr1-1.5.1",
                "libaprutil1-1.5.4",
                "riak-2.0.2",
            ]);
        }
        "MongoDB" => {
            pkgs.extend([
                "libssl1.0.0-1.0.1f",
                "libstdc++6-4.9",
                "libboost-filesystem1.55",
                "libboost-program-options1.55",
                "libboost-system1.55",
                "libboost-thread1.55",
                "libpcre3-8.35",
                "libpcap0.8-1.6.2",
                "libsnappy1-1.1.2",
                "libyaml-cpp0.5-0.5.1",
                "libgoogle-perftools4-2.2.1",
                "libunwind8-1.1",
                "mongodb-server-2.6.5",
            ]);
        }
        "Redis" => {
            pkgs.extend(["libjemalloc1-3.6.0", "redis-server-2.8.17"]);
        }
        "CouchDB" => {
            pkgs.extend(erlang_packages());
            pkgs.extend([
                "libssl1.0.0-1.0.1f",
                "libicu52-52.1",
                "libmozjs185-1.0-1.8.5",
                "libcurl3-7.38.0",
                "libnspr4-4.10.7",
                "librtmp1-2.4",
                "libidn11-1.29",
                "couchdb-1.6.1",
            ]);
        }
        other => panic!("unknown store {other:?}"),
    }
    pkgs.into_iter().map(String::from).collect()
}

/// Builds all four cloud stacks of the case study.
pub fn cloud_stacks() -> Vec<CloudStack> {
    STORES
        .iter()
        .enumerate()
        .map(|(i, &store)| CloudStack {
            name: format!("Cloud{}", i + 1),
            store: store.to_string(),
            packages: packages_for(store),
        })
        .collect()
}

/// Ground-truth software dependency records for all four clouds: each
/// cloud's store program runs on a host named after the cloud and depends
/// on its package closure.
pub fn cloud_software_records() -> Vec<DependencyRecord> {
    cloud_stacks()
        .into_iter()
        .map(|stack| {
            DependencyRecord::Software(SoftwareDep {
                pgm: stack.store,
                hw: format!("{}-host", stack.name),
                deps: stack.packages,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn set(store: &str) -> BTreeSet<String> {
        packages_for(store).into_iter().collect()
    }

    #[test]
    fn four_stacks_generated() {
        let stacks = cloud_stacks();
        assert_eq!(stacks.len(), 4);
        assert_eq!(stacks[0].name, "Cloud1");
        assert_eq!(stacks[0].store, "Riak");
        assert_eq!(stacks[3].store, "CouchDB");
    }

    #[test]
    fn packages_are_unique_per_store() {
        for store in STORES {
            let pkgs = packages_for(store);
            let uniq: BTreeSet<_> = pkgs.iter().collect();
            assert_eq!(uniq.len(), pkgs.len(), "{store} has duplicate packages");
        }
    }

    #[test]
    fn erlang_stores_share_runtime() {
        let riak = set("Riak");
        let couch = set("CouchDB");
        let shared: Vec<_> = riak.intersection(&couch).collect();
        assert!(
            shared.iter().any(|p| p.starts_with("erlang-base")),
            "Riak and CouchDB must share the Erlang runtime"
        );
        // Their overlap must exceed what either shares with Redis.
        let redis = set("Redis");
        assert!(shared.len() > riak.intersection(&redis).count());
    }

    #[test]
    fn everything_shares_libc() {
        for store in STORES {
            assert!(
                set(store).iter().any(|p| p.starts_with("libc6")),
                "{store} must depend on libc"
            );
        }
    }

    #[test]
    fn redis_is_the_smallest_stack() {
        let redis_len = set("Redis").len();
        for store in ["Riak", "MongoDB", "CouchDB"] {
            assert!(set(store).len() > redis_len, "{store} should exceed Redis");
        }
    }

    #[test]
    fn records_shape() {
        let records = cloud_software_records();
        assert_eq!(records.len(), 4);
        for r in &records {
            assert_eq!(r.kind(), "software");
        }
    }

    #[test]
    #[should_panic(expected = "unknown store")]
    fn unknown_store_panics() {
        let _ = packages_for("LevelDB");
    }
}
