//! Benson-style data-center topology for the common network dependency
//! case study (§6.2.1, Figure 6a).
//!
//! The paper models Alice's data center on a real topology from Benson et
//! al. [9]: 33 top-of-rack switches (e1–e33), each serving one rack, and
//! four core routers (b1, b2, c1, c2) connecting the ToRs to the Internet.
//! The exact wiring of the measured network is not published, so this
//! module generates a deterministic wiring with the same published shape
//! and the same *audit-relevant* property: most rack pairs share a
//! single aggregation device (an unexpected risk group), while a minority
//! are cleanly independent. DESIGN.md records this substitution.
//!
//! Wiring:
//! * ToRs `e1..=e18` uplink through aggregation router `b1` only,
//! * ToRs `e19..=e31` uplink through `b2` only,
//! * ToRs `e32, e33` are dual-homed through both `b1` and `b2`,
//! * `b1` and `b2` each reach the Internet via both core routers `c1`
//!   and `c2`.

use indaas_deps::{DependencyRecord, NetworkDep};

/// Number of top-of-rack switches (racks) in the topology.
pub const NUM_RACKS: usize = 33;

/// The generated data-center network.
#[derive(Clone, Debug, Default)]
pub struct BensonDatacenter;

impl BensonDatacenter {
    /// Creates the topology.
    pub fn new() -> Self {
        BensonDatacenter
    }

    /// Rack (and ToR) count.
    pub fn num_racks(&self) -> usize {
        NUM_RACKS
    }

    /// The server name hosted in rack `r` (1-based, one logical server per
    /// rack as in the case study).
    pub fn server_name(&self, r: usize) -> String {
        assert!((1..=NUM_RACKS).contains(&r), "rack out of range");
        format!("rack{r}-server")
    }

    /// ToR switch name for rack `r` (1-based): `e1..e33` as in Figure 6a.
    pub fn tor_name(&self, r: usize) -> String {
        assert!((1..=NUM_RACKS).contains(&r), "rack out of range");
        format!("e{r}")
    }

    /// Aggregation routers rack `r` is homed to.
    pub fn aggs_for_rack(&self, r: usize) -> Vec<&'static str> {
        assert!((1..=NUM_RACKS).contains(&r), "rack out of range");
        match r {
            1..=18 => vec!["b1"],
            19..=31 => vec!["b2"],
            _ => vec!["b1", "b2"],
        }
    }

    /// Uplink paths for rack `r`: `ToR → b → c` for each homed aggregation
    /// router and each core router.
    pub fn uplink_paths(&self, r: usize) -> Vec<Vec<String>> {
        let tor = self.tor_name(r);
        let mut paths = Vec::new();
        for agg in self.aggs_for_rack(r) {
            for core in ["c1", "c2"] {
                paths.push(vec![tor.clone(), agg.to_string(), core.to_string()]);
            }
        }
        paths
    }

    /// Ground-truth network records for all racks.
    pub fn network_records(&self) -> Vec<DependencyRecord> {
        let mut out = Vec::new();
        for r in 1..=NUM_RACKS {
            let server = self.server_name(r);
            for path in self.uplink_paths(r) {
                out.push(DependencyRecord::Network(NetworkDep {
                    src: server.clone(),
                    dst: "Internet".into(),
                    route: path,
                }));
            }
        }
        out
    }

    /// The racks the auditing client asks about in the case study (the
    /// paper audits 190 = C(20, 2) two-way deployments, i.e. 20 racks).
    pub fn audited_racks(&self) -> Vec<usize> {
        (1..=20).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape_matches_figure() {
        let dc = BensonDatacenter::new();
        assert_eq!(dc.num_racks(), 33);
        // 190 audited pairs, as in the paper.
        let racks = dc.audited_racks();
        assert_eq!(racks.len() * (racks.len() - 1) / 2, 190);
    }

    #[test]
    fn single_homed_racks_have_two_paths() {
        let dc = BensonDatacenter::new();
        assert_eq!(dc.uplink_paths(1).len(), 2);
        assert_eq!(dc.uplink_paths(19).len(), 2);
    }

    #[test]
    fn dual_homed_racks_have_four_paths() {
        let dc = BensonDatacenter::new();
        assert_eq!(dc.uplink_paths(32).len(), 4);
        assert_eq!(dc.uplink_paths(33).len(), 4);
    }

    #[test]
    fn same_group_racks_share_aggregation() {
        let dc = BensonDatacenter::new();
        assert_eq!(dc.aggs_for_rack(3), dc.aggs_for_rack(17));
        assert_ne!(dc.aggs_for_rack(3), dc.aggs_for_rack(20));
    }

    #[test]
    fn record_count() {
        let dc = BensonDatacenter::new();
        // 31 single-homed racks × 2 paths + 2 dual-homed × 4 paths = 70.
        assert_eq!(dc.network_records().len(), 70);
    }

    #[test]
    #[should_panic(expected = "rack out of range")]
    fn rack_zero_rejected() {
        let _ = BensonDatacenter::new().tor_name(0);
    }
}
