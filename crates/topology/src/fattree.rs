//! Three-stage fat-tree topology generator (PortLand model [45], Table 3).
//!
//! A `k`-port fat tree has `(k/2)²` core routers, `k` pods each with `k/2`
//! aggregation and `k/2` top-of-rack (edge) switches, and `k/2` servers per
//! ToR — `k³/4` servers total. The paper's three topologies:
//!
//! | | ports | cores | aggs | ToRs | servers | total |
//! |-|-------|-------|------|------|---------|-------|
//! | A | 16 | 64 | 128 | 128 | 1,024 | 1,344 |
//! | B | 24 | 144 | 288 | 288 | 3,456 | 4,176 |
//! | C | 48 | 576 | 1,152 | 1,152 | 27,648 | 30,528 |

use indaas_deps::{DependencyRecord, HardwareDep, NetworkDep, SoftwareDep};

/// Configuration of a fat-tree topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatTreeConfig {
    /// Switch port count `k` (must be even, ≥ 4).
    pub ports: usize,
    /// Cap on the number of distinct uplink paths enumerated per server
    /// when emitting route records (`None` = all `(k/2)²` paths). The paper
    /// materializes every path; for topology C that is 576 routes per
    /// server, so large-scale runs set a cap and EXPERIMENTS.md records it.
    pub max_paths_per_server: Option<usize>,
}

impl FatTreeConfig {
    /// Topology A of Table 3 (16 ports).
    pub fn topology_a() -> Self {
        FatTreeConfig {
            ports: 16,
            max_paths_per_server: None,
        }
    }

    /// Topology B of Table 3 (24 ports).
    pub fn topology_b() -> Self {
        FatTreeConfig {
            ports: 24,
            max_paths_per_server: None,
        }
    }

    /// Topology C of Table 3 (48 ports).
    pub fn topology_c() -> Self {
        FatTreeConfig {
            ports: 48,
            max_paths_per_server: None,
        }
    }
}

/// A generated fat tree: device names plus route enumeration.
#[derive(Clone, Debug)]
pub struct FatTree {
    config: FatTreeConfig,
}

impl FatTree {
    /// Builds the topology for a config.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is odd or below 4.
    pub fn new(config: FatTreeConfig) -> Self {
        assert!(
            config.ports >= 4 && config.ports.is_multiple_of(2),
            "fat tree needs an even port count >= 4"
        );
        FatTree { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FatTreeConfig {
        &self.config
    }

    fn half(&self) -> usize {
        self.config.ports / 2
    }

    /// Number of core routers: `(k/2)²`.
    pub fn num_cores(&self) -> usize {
        self.half() * self.half()
    }

    /// Number of aggregation switches: `k·k/2`.
    pub fn num_aggs(&self) -> usize {
        self.config.ports * self.half()
    }

    /// Number of ToR (edge) switches: `k·k/2`.
    pub fn num_tors(&self) -> usize {
        self.config.ports * self.half()
    }

    /// Number of servers: `k³/4`.
    pub fn num_servers(&self) -> usize {
        self.config.ports * self.half() * self.half()
    }

    /// Total device count (servers + switches + routers), as in Table 3.
    pub fn total_devices(&self) -> usize {
        self.num_cores() + self.num_aggs() + self.num_tors() + self.num_servers()
    }

    /// Core router name by index.
    pub fn core_name(&self, i: usize) -> String {
        format!("core-{i}")
    }

    /// Aggregation switch name: pod `p`, slot `j`.
    pub fn agg_name(&self, p: usize, j: usize) -> String {
        format!("agg-{p}-{j}")
    }

    /// ToR switch name: pod `p`, slot `e`.
    pub fn tor_name(&self, p: usize, e: usize) -> String {
        format!("tor-{p}-{e}")
    }

    /// Server name: pod `p`, ToR slot `e`, position `s` under the ToR.
    pub fn server_name(&self, p: usize, e: usize, s: usize) -> String {
        format!("server-{p}-{e}-{s}")
    }

    /// All server names, in pod/ToR/slot order.
    pub fn servers(&self) -> Vec<String> {
        let h = self.half();
        let mut out = Vec::with_capacity(self.num_servers());
        for p in 0..self.config.ports {
            for e in 0..h {
                for s in 0..h {
                    out.push(self.server_name(p, e, s));
                }
            }
        }
        out
    }

    /// Enumerates uplink paths (`ToR → agg → core`) for the server at pod
    /// `p`, ToR `e`. Aggregation switch `j` of a pod connects to cores
    /// `j*k/2 ..= j*k/2 + k/2 - 1`, the standard fat-tree striping.
    pub fn uplink_paths(&self, p: usize, e: usize) -> Vec<Vec<String>> {
        let h = self.half();
        let cap = self.config.max_paths_per_server.unwrap_or(usize::MAX);
        let mut paths = Vec::with_capacity((h * h).min(cap));
        'outer: for j in 0..h {
            for c in 0..h {
                if paths.len() >= cap {
                    break 'outer;
                }
                let core = j * h + c;
                paths.push(vec![
                    self.tor_name(p, e),
                    self.agg_name(p, j),
                    self.core_name(core),
                ]);
            }
        }
        paths
    }

    /// Hardware and software records for one server: per-server CPU and
    /// disk instances plus a storage stack whose packages are shared across
    /// the whole fleet — the hidden software dependency that makes Figure
    /// 7's risk-group universe interesting.
    pub fn server_records(&self, server: &str) -> Vec<DependencyRecord> {
        vec![
            DependencyRecord::Hardware(HardwareDep {
                hw: server.to_string(),
                hw_type: "CPU".into(),
                dep: format!("{server}-cpu"),
            }),
            DependencyRecord::Hardware(HardwareDep {
                hw: server.to_string(),
                hw_type: "Disk".into(),
                dep: format!("{server}-disk"),
            }),
            DependencyRecord::Software(SoftwareDep {
                pgm: format!("{server}-store"),
                hw: server.to_string(),
                deps: vec!["libc6".into(), "libssl1.0.0".into(), "zlib1g".into()],
            }),
        ]
    }

    /// Full ground-truth records (network + hardware + software) for a
    /// subset of servers — the workload generator for deployment audits.
    pub fn deployment_records(&self, servers: &[(usize, usize, usize)]) -> Vec<DependencyRecord> {
        let mut out = Vec::new();
        for &(p, e, s) in servers {
            let server = self.server_name(p, e, s);
            for path in self.uplink_paths(p, e) {
                out.push(DependencyRecord::Network(NetworkDep {
                    src: server.clone(),
                    dst: "Internet".into(),
                    route: path,
                }));
            }
            out.extend(self.server_records(&server));
        }
        out
    }

    /// Ground-truth network dependency records: one route record per
    /// enumerated path per server, destination "Internet" (the shape of
    /// Figure 3).
    pub fn network_records(&self) -> Vec<DependencyRecord> {
        let h = self.half();
        let mut out = Vec::new();
        for p in 0..self.config.ports {
            for e in 0..h {
                let paths = self.uplink_paths(p, e);
                for s in 0..h {
                    let server = self.server_name(p, e, s);
                    for path in &paths {
                        out.push(DependencyRecord::Network(NetworkDep {
                            src: server.clone(),
                            dst: "Internet".into(),
                            route: path.clone(),
                        }));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_topology_a_counts() {
        let t = FatTree::new(FatTreeConfig::topology_a());
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.num_aggs(), 128);
        assert_eq!(t.num_tors(), 128);
        assert_eq!(t.num_servers(), 1024);
        assert_eq!(t.total_devices(), 1344);
    }

    #[test]
    fn table3_topology_b_counts() {
        let t = FatTree::new(FatTreeConfig::topology_b());
        assert_eq!(t.num_cores(), 144);
        assert_eq!(t.num_aggs(), 288);
        assert_eq!(t.num_tors(), 288);
        assert_eq!(t.num_servers(), 3456);
        assert_eq!(t.total_devices(), 4176);
    }

    #[test]
    fn table3_topology_c_counts() {
        let t = FatTree::new(FatTreeConfig::topology_c());
        assert_eq!(t.num_cores(), 576);
        assert_eq!(t.num_aggs(), 1152);
        assert_eq!(t.num_tors(), 1152);
        assert_eq!(t.num_servers(), 27648);
        assert_eq!(t.total_devices(), 30528);
    }

    #[test]
    fn uplink_paths_count_and_shape() {
        let t = FatTree::new(FatTreeConfig {
            ports: 4,
            max_paths_per_server: None,
        });
        let paths = t.uplink_paths(0, 0);
        // (k/2)^2 = 4 paths, each ToR → agg → core.
        assert_eq!(paths.len(), 4);
        for path in &paths {
            assert_eq!(path.len(), 3);
            assert!(path[0].starts_with("tor-0-"));
            assert!(path[1].starts_with("agg-0-"));
            assert!(path[2].starts_with("core-"));
        }
        // Paths must be distinct.
        let unique: std::collections::HashSet<_> = paths.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn path_cap_respected() {
        let t = FatTree::new(FatTreeConfig {
            ports: 8,
            max_paths_per_server: Some(3),
        });
        assert_eq!(t.uplink_paths(1, 1).len(), 3);
    }

    #[test]
    fn core_striping_covers_all_cores() {
        let t = FatTree::new(FatTreeConfig {
            ports: 4,
            max_paths_per_server: None,
        });
        let mut cores: Vec<String> = t
            .uplink_paths(0, 0)
            .into_iter()
            .map(|p| p[2].clone())
            .collect();
        cores.sort();
        cores.dedup();
        assert_eq!(cores.len(), t.num_cores(), "pod must reach every core");
    }

    #[test]
    fn network_records_count() {
        let t = FatTree::new(FatTreeConfig {
            ports: 4,
            max_paths_per_server: None,
        });
        // 16 servers × 4 paths = 64 records.
        assert_eq!(t.network_records().len(), 64);
    }

    #[test]
    fn server_enumeration_matches_count() {
        let t = FatTree::new(FatTreeConfig {
            ports: 6,
            max_paths_per_server: None,
        });
        let servers = t.servers();
        assert_eq!(servers.len(), t.num_servers());
        let unique: std::collections::HashSet<_> = servers.iter().collect();
        assert_eq!(unique.len(), servers.len());
    }

    #[test]
    #[should_panic(expected = "even port count")]
    fn odd_ports_rejected() {
        let _ = FatTree::new(FatTreeConfig {
            ports: 5,
            max_paths_per_server: None,
        });
    }
}
