//! The continuous auditing daemon.
//!
//! One readiness loop ([`crate::netloop`]), a fixed [`Scheduler`] pool
//! doing the actual audit work, and **zero idle threads**: every client
//! connection — v1 line mode and multiplexed v2 frames alike — is
//! served by the single epoll loop, which parses requests, consults the
//! audit-result cache, and admits real work onto the pool with a
//! response slot the job fulfills when done. Responses and pushed
//! [`Response::AuditEvent`] frames share each connection's bounded
//! outbox ([`crate::subs::Outbox`]) — a slow consumer sheds its oldest
//! events and never blocks anything — drained by the loop on
//! writability. A slow audit can never starve protocol handling, and an
//! idle connection costs a poll registration, not two thread stacks.
//!
//! This module owns everything that is not the loop itself: the config,
//! the shared [`ServiceState`], request admission/dispatch
//! ([`admit_request`]), subscriptions, federation, persistence, and the
//! blocking federation *peer* sessions (handed off the shared listener
//! by the loop after their `FederateHello`).
//!
//! Subscriptions ride the single write path: every mutation asks the
//! [`SubscriptionRegistry`] which live subscriptions it invalidated
//! (their `(shard, epoch)` pins moved) and schedules one pushed audit
//! per hit on the worker pool — the ingest itself never waits.
//!
//! Data flow for an `AuditSia` request:
//!
//! 1. pin a copy-on-write [`DbSnapshot`] — one **wait-free** `Arc` load
//!    per shard, no lock at all, never delayed by concurrent ingests;
//! 2. content-hash `(epoch pins of the shards the spec reads, spec)` →
//!    cache hit ⇒ answer immediately with `cached: true`;
//! 3. miss ⇒ submit a job carrying the snapshot and a deadline-armed
//!    [`CancelToken`]; the worker runs the cancellable audit entry point
//!    and sends the result back over a channel;
//! 4. insert the report into the cache keyed by the *pinned* shard
//!    epochs (a concurrent ingest bumps a read shard's epoch, so the
//!    entry is already stale and unreachable — and purged on the next
//!    ingest; ingests to *other* shards leave it hot).
//!
//! Writes take no global lock either: the [`ShardedDepDb`] routes each
//! batch by host shard before locking, then locks only the touched
//! shards — concurrent ingests to different hosts' shards land in
//! parallel. Per-shard write counters and a `lock_waits` contention
//! gauge surface through `Status`.
//!
//! With [`ServeConfig::db_dir`] set, the store persists as one segment
//! file per shard plus a manifest: dirty shards are saved on collector
//! ticks and at shutdown, every file crash-safely (temp + rename).

use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use indaas_core::{AuditSpec, AuditingAgent, CancelToken};
use indaas_deps::{
    DbSnapshot, DepView, DependencyAcquisitionModule, DependencyRecord, ShardedDepDb,
    VersionedDepDb,
};
use indaas_obs::{format_trace_id, log as slog, Span, Trace, TraceContext, TraceScope};
use indaas_pia::{rank_deployments_cancellable, PiaRanking, PsopConfig};
use indaas_sia::AuditReport;

use indaas_faultinj::points;

use crate::cache::{job_key, AuditCache, EpochPins};
use crate::names;
use crate::netloop::{CrashGuard, LoopShared, PendingPush, ResponseSlot};
use crate::proto::{
    decode_line, decode_payload, decode_traced_round_frame, encode_line, encode_payload,
    read_bounded_line, read_frame, FrameRead, LineRead, Request, Response, ResponseEnvelope,
    SpanEntry, EVENT_ENVELOPE_ID, MAX_NODE_NAME_BYTES,
};
use crate::scheduler::Scheduler;
use crate::subs::{Outbox, SubscriptionRegistry};
use crate::telemetry::{wire_histos, wire_traces, StageRecorder, Telemetry, DEFAULT_RECENT_TRACES};

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Audit worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (admission control).
    pub queue_capacity: usize,
    /// Audit-result cache capacity, in entries.
    pub cache_capacity: usize,
    /// Deadline applied to jobs whose request carries no `timeout_ms`.
    pub default_deadline: Duration,
    /// Hard ceiling on client-supplied `timeout_ms` — a request cannot
    /// arm a longer deadline than this (admission control would be
    /// defeated by `timeout_ms: u64::MAX`).
    pub max_deadline: Duration,
    /// Default per-round deadline for federated protocol rounds (a
    /// `FederateStart` may shorten it, clamped here at the top).
    pub round_timeout: Duration,
    /// Re-run the registered dependency collectors this often, ingesting
    /// whatever they report (`None` disables the timer).
    pub collect_interval: Option<Duration>,
    /// Dependency-store shards (clamped to at least 1). More shards
    /// make ingest cheaper (only the touched shard's snapshot is
    /// re-cloned), write concurrency wider (writers lock only the
    /// shards they touch) and cache invalidation narrower (audits
    /// pinned to untouched shards stay cached); the cost is `shards`
    /// `Arc` loads per snapshot.
    pub shards: usize,
    /// Segmented persistence directory. When set, [`Server::bind`]
    /// loads the store from it (segments in parallel; a legacy
    /// monolithic file migrates transparently via
    /// [`ShardedDepDb::open`]) and the daemon saves dirty shards after
    /// every collector tick and at shutdown — each file written
    /// crash-safely. `None` keeps the store memory-only.
    pub db_dir: Option<PathBuf>,
    /// Most concurrently served client connections. A connection past
    /// the limit is answered with one clear protocol error and dropped
    /// before it can claim a handler thread's stack or a subscription
    /// slot — unbounded fan-in degrades into fast, explicit rejection
    /// instead of thread exhaustion.
    pub max_conns: usize,
    /// Flight-recorder slow threshold: an audit/request trace whose
    /// total time reaches this many milliseconds is flagged `slow` in
    /// `Metrics` responses. `0` flags everything (useful in tests).
    pub slow_audit_ms: u64,
    /// Minimum severity the structured logger emits (process-global;
    /// applied at bind).
    pub log_level: indaas_obs::LogLevel,
    /// Emit log lines as one JSON object per line instead of text
    /// (process-global; applied at bind).
    pub log_json: bool,
    /// Fault-injection specs (`<point>=<policy>[:prob][:seed]`, see
    /// `indaas-faultinj`) armed at bind. The registry is
    /// process-global; this field exists so `serve --fault` arms it
    /// through the same config surface as everything else. Empty (the
    /// default) leaves injection entirely off — a single relaxed atomic
    /// load per point.
    pub faults: Vec<String>,
    /// Debounce window for subscription pushes, in milliseconds. With a
    /// nonzero window, an ingest burst invalidating the same
    /// subscription repeatedly schedules **one** pushed audit per
    /// window (armed on the readiness loop's timer wheel) instead of
    /// one per batch; push latency is measured from the *earliest*
    /// coalesced trigger. `0` (the default) keeps the immediate
    /// schedule-per-batch behavior.
    pub push_debounce_ms: u64,
    /// Segment/manifest files the boot-time store load quarantined
    /// (`*.quarantine`), counted into `db_segments_quarantined_total`
    /// at bind. [`Server::bind`] fills this in from its own
    /// [`ShardedDepDb::open_reporting`] call; a caller handing
    /// [`Server::bind_with_store`] a store it opened itself sets the
    /// count from its own [`indaas_deps::persist::LoadReport`].
    pub boot_quarantined: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4914".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).clamp(1, 8))
                .unwrap_or(2),
            queue_capacity: 256,
            cache_capacity: 4096,
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(300),
            round_timeout: Duration::from_secs(10),
            collect_interval: None,
            shards: 8,
            db_dir: None,
            max_conns: 1024,
            slow_audit_ms: 1000,
            log_level: indaas_obs::LogLevel::Info,
            log_json: false,
            faults: Vec::new(),
            push_debounce_ms: 0,
            boot_quarantined: 0,
        }
    }
}

/// Context a [`FederationEngine`] receives when asked to run a party:
/// the epoch-pinned database snapshot its component set derives from,
/// plus enough daemon identity to refuse self-peering.
pub struct FederationCtx {
    /// Immutable, epoch-pinned snapshot of the sharded dependency
    /// database (read through [`indaas_deps::DepView`]).
    pub snapshot: DbSnapshot,
    /// The daemon's bound listen address.
    pub local_addr: SocketAddr,
    /// Default per-round deadline from [`ServeConfig::round_timeout`].
    pub round_timeout: Duration,
}

/// A parsed `FederateStart` instruction.
#[derive(Clone, Debug)]
pub struct PartyInstruction {
    /// Federation session id.
    pub session: u64,
    /// This daemon's ring index.
    pub index: u32,
    /// Number of provider parties.
    pub parties: u32,
    /// Ring successor address.
    pub successor: String,
    /// P-SOP seed.
    pub seed: u64,
    /// Multiset disambiguation flag.
    pub multiset: bool,
    /// Requested per-round deadline (clamped to the server default).
    pub round_timeout_ms: Option<u64>,
    /// The party's span context when the `FederateStart` envelope
    /// carried a trace. The engine stamps outgoing round frames with
    /// children of this span (on sessions that negotiated tracing), so
    /// the *receiving* daemon's frame spans parent-link back to this
    /// party across the process boundary.
    pub trace: Option<TraceContext>,
}

/// What a completed party hands back for the `FederateDone` response.
#[derive(Clone, Debug)]
pub struct PartyCompletion {
    /// Fully-encrypted list for the auditing agent.
    pub payload: Vec<u8>,
    /// Protocol payload bytes sent (ring + agent hop).
    pub sent_bytes: u64,
    /// Protocol payload bytes received.
    pub recv_bytes: u64,
    /// Protocol messages sent.
    pub sent_msgs: u64,
    /// Protocol messages received.
    pub recv_msgs: u64,
    /// Bytes actually written to the successor socket, framing
    /// included (what the wire-efficiency comparison measures).
    pub wire_sent_bytes: u64,
    /// Ring frame sends retried after a transient failure (surfaced as
    /// `fed_frame_retries_total`).
    pub frame_retries: u64,
    /// Ring successor re-dials performed, 0 or 1 (surfaced as
    /// `fed_redials_total`).
    pub redials: u64,
}

/// The extension point federated auditing plugs into the daemon.
///
/// The server owns the listener, connection threads and the wire
/// protocol; the engine owns everything federation-specific — handshake
/// policy, session mailboxes, peer dialing, and the per-party protocol
/// rounds. `indaas-federation` provides the production implementation;
/// a daemon without an engine rejects every `Federate*` request with a
/// clear error.
pub trait FederationEngine: Send + Sync {
    /// Negotiates a peer handshake. `trace` is whether the dialer
    /// offered the round-frame trace extension; the returned bool is
    /// whether it is on for this session (never when the negotiated
    /// version is < 2 — v1 peers negotiate tracing away). Returns
    /// `(negotiated version, own node name, tracing on)` or a rejection
    /// message (version too old, self-connection, unknown peer).
    ///
    /// # Errors
    ///
    /// A human-readable rejection; the server answers with it and drops
    /// the connection.
    fn handshake(
        &self,
        offered: u32,
        peer_node: &str,
        trace: bool,
    ) -> Result<(u32, String, bool), String>;

    /// Routes one peer round frame to its session.
    ///
    /// # Errors
    ///
    /// A human-readable rejection (bad indices, dead session); the
    /// server reports it and drops the peer connection.
    fn deliver(&self, session: u64, round: u32, from: u32, payload: Vec<u8>) -> Result<(), String>;

    /// Runs this daemon's party of a federated audit, blocking until the
    /// rounds complete or a deadline expires.
    ///
    /// # Errors
    ///
    /// A human-readable failure sent back to the coordinator.
    fn run_party(
        &self,
        instruction: PartyInstruction,
        ctx: FederationCtx,
    ) -> Result<PartyCompletion, String>;
}

pub(crate) struct ServiceState {
    pub(crate) config: ServeConfig,
    /// The sharded dependency store — shared directly, **no global
    /// lock**. Each shard carries its own write mutex and publishes its
    /// copy-on-write snapshot through an atomic pointer swap, so
    /// concurrent ingests to different shards land in parallel and
    /// snapshotting for an audit is N wait-free `Arc` loads regardless
    /// of database size or writer traffic.
    pub(crate) db: ShardedDepDb,
    pub(crate) sia_cache: Mutex<AuditCache<AuditReport>>,
    pub(crate) pia_cache: Mutex<AuditCache<Vec<PiaRanking>>>,
    pub(crate) scheduler: Scheduler,
    pub(crate) started: Instant,
    pub(crate) shutting_down: AtomicBool,
    /// Mutations currently inside [`apply_mutation`]. The shutdown path
    /// waits for this to drain before its final segment save, so an
    /// acknowledged ingest can never slip in after the last save and
    /// vanish with the process (mutations arriving after the shutdown
    /// flag are rejected instead of acknowledged).
    pub(crate) in_flight_mutations: AtomicU64,
    pub(crate) local_addr: SocketAddr,
    pub(crate) federation: Mutex<Option<Arc<dyn FederationEngine>>>,
    pub(crate) collectors: Mutex<Vec<Box<dyn DependencyAcquisitionModule + Send>>>,
    /// Live audit subscriptions across every v2 connection; the single
    /// write path asks it which ones each batch invalidated.
    pub(crate) subs: SubscriptionRegistry,
    /// `AuditEvent` frames enqueued to subscriber outboxes since start.
    pub(crate) pushed_events: AtomicU64,
    /// Client connections currently being served (v1, v2 and peer
    /// sessions alike) — compared against [`ServeConfig::max_conns`].
    pub(crate) active_conns: AtomicUsize,
    /// Connection-id source: ties subscriptions to the connection that
    /// made them so teardown and `Unsubscribe` ownership checks work.
    pub(crate) next_conn_id: AtomicU64,
    /// Metrics registry + flight recorder + hot-path handles.
    pub(crate) telemetry: Arc<Telemetry>,
    /// The running readiness loop's cross-thread face — `Some` while
    /// [`Server::run`] is inside the loop. Shutdown and the debounce
    /// path reach the loop through it.
    pub(crate) loop_shared: Mutex<Option<Arc<LoopShared>>>,
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
}

impl Server {
    /// Binds the listener and spawns the worker pool. With
    /// [`ServeConfig::db_dir`] set, the dependency store is loaded from
    /// it first (segment files in parallel; an empty or missing
    /// directory starts empty and is created by the first save).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures and db-dir load failures.
    pub fn bind(mut config: ServeConfig) -> std::io::Result<Self> {
        let store = match &config.db_dir {
            Some(dir) => {
                let (store, report) = ShardedDepDb::open_reporting(dir, config.shards)?;
                config.boot_quarantined += report.quarantined.len() as u64;
                store
            }
            None => ShardedDepDb::new(config.shards),
        };
        Self::bind_with_store(config, store)
    }

    /// [`Server::bind`] with a pre-loaded monolithic database, routed
    /// into [`ServeConfig::shards`] shards.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind_with_db(config: ServeConfig, db: VersionedDepDb) -> std::io::Result<Self> {
        let shards = config.shards;
        Self::bind_with_store(config, ShardedDepDb::from_db(db.into_db(), shards))
    }

    /// [`Server::bind`] with an already-assembled sharded store (the
    /// CLI's path: it opens `--db-dir`, layers `--records` on top, and
    /// hands the result here).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind_with_store(config: ServeConfig, store: ShardedDepDb) -> std::io::Result<Self> {
        slog::set_level(config.log_level);
        slog::set_json(config.log_json);
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let telemetry = Arc::new(Telemetry::new(config.slow_audit_ms));
        // Chaos arming happens before the listener serves anything (the
        // CLI additionally arms before opening the store, so boot-time
        // loads are covered too; re-arming is harmless). The observer
        // hook surfaces each firing as `faults_injected_total`.
        if !config.faults.is_empty() {
            for spec in &config.faults {
                indaas_faultinj::arm(spec)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            }
            let injected = Arc::clone(&telemetry.faults_injected_total);
            indaas_faultinj::set_observer(move |point| {
                injected.add(1);
                slog::warn("faultinj", &format!("fault fired at {point}"));
            });
            slog::warn(
                "serve",
                &format!("fault injection ARMED: {}", config.faults.join(", ")),
            );
        }
        if config.boot_quarantined > 0 {
            telemetry
                .db_segments_quarantined_total
                .add(config.boot_quarantined);
            slog::warn(
                "serve",
                &format!(
                    "boot-time load quarantined {} corrupt db file(s); serving survivors",
                    config.boot_quarantined
                ),
            );
        }
        let state = Arc::new(ServiceState {
            scheduler: Scheduler::with_metrics(
                config.workers,
                config.queue_capacity,
                Some(telemetry.sched_metrics()),
            ),
            sia_cache: Mutex::new(AuditCache::new(config.cache_capacity)),
            pia_cache: Mutex::new(AuditCache::new(config.cache_capacity)),
            db: store,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            in_flight_mutations: AtomicU64::new(0),
            local_addr,
            config,
            federation: Mutex::new(None),
            collectors: Mutex::new(Vec::new()),
            subs: SubscriptionRegistry::new(),
            pushed_events: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            telemetry,
            loop_shared: Mutex::new(None),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Installs the federation engine answering `Federate*` requests.
    /// Without one, every federation request gets a clear protocol error.
    pub fn set_federation(&self, engine: Arc<dyn FederationEngine>) {
        *self
            .state
            .federation
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(engine);
    }

    /// Registers a dependency collector the daemon re-runs on the
    /// [`ServeConfig::collect_interval`] timer, streaming whatever it
    /// reports through the normal ingest path (epoch bumps, snapshot
    /// refresh and cache invalidation included).
    pub fn add_collector(&self, collector: Box<dyn DependencyAcquisitionModule + Send>) {
        self.state
            .collectors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(collector);
    }

    /// Serves until a `Shutdown` request arrives (or
    /// [`ServerHandle::shutdown`] is called): the readiness loop owns
    /// every connection; audits run on the shared worker pool.
    ///
    /// # Errors
    ///
    /// Propagates readiness-loop I/O failures.
    pub fn run(self) -> std::io::Result<()> {
        let result = crate::netloop::run_loop(self.listener, &self.state);
        // The loop has drained: no connection can submit new jobs, so
        // the pool joins cleanly here (idempotent with `Drop`).
        self.state.scheduler.shutdown_and_join();
        // Final persistence: wait out mutations already past the
        // shutdown gate (new ones are rejected), then save until a pass
        // writes nothing — every acknowledged record reaches disk. The
        // wait is bounded: mutations are short, their counter is
        // panic-safe (`InFlightGuard`), and a wedged worker must not
        // turn shutdown into a hang — after the deadline the save runs
        // with whatever landed.
        let drain_deadline = Instant::now() + Duration::from_secs(5);
        while self.state.in_flight_mutations.load(Ordering::SeqCst) > 0
            && Instant::now() < drain_deadline
        {
            std::thread::yield_now();
        }
        for _ in 0..16 {
            match save_dirty(&self.state) {
                Some(written) if written > 0 => continue,
                _ => break,
            }
        }
        result
    }

    /// Spawns [`Server::run`] on a background thread and returns a
    /// handle that can stop it cleanly — the supported way to embed a
    /// daemon in tests and tools, replacing detached
    /// `thread::spawn(|| server.run())` with a real join.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failure.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let thread = std::thread::Builder::new()
            .name("indaas-serve".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// A running daemon spawned with [`Server::spawn`]: carries its bound
/// address and the means to stop it without a protocol round-trip.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates shutdown (same path as a protocol `Shutdown` request:
    /// subscribers get the farewell push, queued frames flush, dirty
    /// segments save) and joins the serve thread.
    ///
    /// # Errors
    ///
    /// Propagates the serve loop's exit result; a panicked serve thread
    /// surfaces as an error rather than propagating the panic.
    pub fn shutdown(self) -> std::io::Result<()> {
        initiate_shutdown(&self.state);
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// Persists dirty shards into the configured db directory. Returns the
/// segments written, or `None` without a db dir or on failure. Failures
/// are logged, never fatal: a daemon that cannot reach its disk keeps
/// serving from memory and retries on the next tick — the dirty flags
/// survive a failed save.
pub(crate) fn save_dirty(state: &ServiceState) -> Option<usize> {
    let dir = state.config.db_dir.as_ref()?;
    match state.db.save_dirty_segments(dir) {
        Ok(written) => {
            state.telemetry.db_segment_saves_total.add(written as u64);
            Some(written)
        }
        Err(e) => {
            slog::error(
                "server",
                &format!("saving segments to {} failed: {e}", dir.display()),
            );
            None
        }
    }
}

/// Largest accepted request line. Ingest batches are the big consumer;
/// 16 MiB comfortably holds millions of Table-1 records per line while
/// bounding per-connection memory. Protocol-v2 request frames share the
/// same bound.
pub const MAX_REQUEST_LINE: u64 = 16 * 1024 * 1024;

/// Most requests one protocol-v2 connection may have unanswered at
/// once. Each in-flight request holds a response slot and (on a cache
/// miss) a queue ticket on the worker pool, so the cap bounds what a
/// single pipelining client can pin.
pub const MAX_IN_FLIGHT_REQUESTS: usize = 64;

/// Decrements the live-connection gauge when a peer-session thread
/// exits, however it exits.
pub(crate) struct ConnGuard<'a>(pub(crate) &'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serializes a response envelope into one **transport-ready** outbox
/// frame: length prefix included, so the readiness loop's write path
/// moves bytes without knowing the session's framing.
pub(crate) fn envelope_frame(id: u64, body: Response) -> Vec<u8> {
    crate::codec::frame_bytes(encode_line(&ResponseEnvelope { id, body }).as_bytes())
}

/// The span name a dispatched request is recorded under — static, so a
/// traced request costs no allocation beyond the span record itself.
pub(crate) fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::Ping => "request:Ping",
        Request::Hello { .. } => "request:Hello",
        Request::Ingest { .. } => "request:Ingest",
        Request::Retract { .. } => "request:Retract",
        Request::AuditSia { .. } => "request:AuditSia",
        Request::AuditPia { .. } => "request:AuditPia",
        Request::Status => "request:Status",
        Request::Metrics { .. } => "request:Metrics",
        Request::Trace { .. } => "request:Trace",
        Request::Subscribe { .. } => "request:Subscribe",
        Request::Unsubscribe { .. } => "request:Unsubscribe",
        Request::Shutdown => "request:Shutdown",
        Request::FederateHello { .. } => "request:FederateHello",
        Request::FederateData { .. } => "request:FederateData",
        Request::FederateStart { .. } => "request:FederateStart",
    }
}

/// Validates a `Subscribe` and registers it, pinned to the spec's
/// shards. Returns the new subscription id and the spec (for the
/// caller to schedule the initial pushed audit *after* it enqueued the
/// `Subscribed` response), or the error message to send instead.
pub(crate) fn register_subscription(
    state: &Arc<ServiceState>,
    spec: AuditSpec,
    engine: &str,
    outbox: &Arc<Outbox>,
    conn: u64,
) -> Result<(u64, AuditSpec), String> {
    if engine != "sia" {
        return Err(format!(
            "unknown subscription engine {engine:?} (only \"sia\" audits read the \
             dependency database and can go stale)"
        ));
    }
    if let Err(e) = validate_spec(&spec) {
        return Err(format!("invalid spec: {e}"));
    }
    if spec.candidates.is_empty() {
        return Err("subscription spec needs at least one candidate".to_string());
    }
    let snapshot = state.db.snapshot();
    let pins = snapshot.pins_for_hosts(spec_hosts(&spec));
    state
        .subs
        .register(spec.clone(), pins, Arc::clone(outbox), conn)
        .map(|id| (id, spec))
}

/// The hosts an audit spec reads — what its cache keys and
/// subscription pins are derived from.
fn spec_hosts(spec: &AuditSpec) -> impl Iterator<Item = &str> {
    spec.candidates
        .iter()
        .flat_map(|c| c.servers.iter().map(String::as_str))
}

/// Submits one pushed-audit job to the shared worker pool: re-runs (or
/// serves from cache) the subscription's audit against a fresh snapshot
/// and enqueues the `AuditEvent` frame. Runs entirely off the ingest
/// path — a full queue costs the subscriber one event, never a writer
/// any latency; the subscription stays armed for the next batch.
pub(crate) fn schedule_push_audit(
    state: &Arc<ServiceState>,
    subscription: u64,
    spec: AuditSpec,
    outbox: Arc<Outbox>,
    origin: Instant,
    parent: Option<TraceContext>,
) {
    let st = Arc::clone(state);
    let deadline = state.config.default_deadline;
    // The push runs under a fresh child of the originating request's
    // span (the triggering ingest, or the Subscribe for its initial
    // audit) — one mutation fanning out to N subscriptions yields N
    // sibling push spans under the same trace.
    let push = parent.map(|p| p.child());
    let submit_at = Instant::now();
    let submitted = state.scheduler.submit(Some(deadline), move |token| {
        let _scope = push.map(TraceScope::enter);
        let started = Instant::now();
        if let Some(p) = push {
            st.telemetry.spans.record(
                p.child(),
                "queue_wait",
                String::new(),
                started.duration_since(submit_at).as_micros() as u64,
            );
        }
        let exec = push.map(|p| p.child());
        let epoch = st.db.epoch();
        let snapshot = st.db.snapshot();
        let pins = snapshot.pins_for_hosts(spec_hosts(&spec));
        let key = job_key(&pins, "sia", &spec);
        let hit = st
            .sia_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key);
        let mut trace = Trace::new("push", format!("subscription {subscription}"));
        trace.pins = pins.clone();
        let (cached, result, stages) = match hit {
            Some(report) => (true, Ok(report), Vec::new()),
            None => {
                let recorder = StageRecorder::with_trace(&st.telemetry, exec);
                let agent = AuditingAgent::from_snapshot(snapshot);
                let result = agent.audit_sia_observed(&spec, token, &recorder);
                st.telemetry.push_audits_total.inc();
                st.telemetry.audits_sia_total.inc();
                (false, result, recorder.into_stages())
            }
        };
        if let Some(e) = exec {
            st.telemetry.spans.record(
                e,
                "audit_exec",
                format!("subscription {subscription}"),
                started.elapsed().as_micros() as u64,
            );
        }
        trace.cached = cached;
        trace.stages = stages;
        match result {
            Ok(report) => {
                if !cached {
                    st.telemetry
                        .audit_sia_us
                        .record(started.elapsed().as_micros() as u64);
                    st.sia_cache
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(key, pins, report.clone());
                }
                let frame = envelope_frame(
                    EVENT_ENVELOPE_ID,
                    Response::AuditEvent {
                        subscription,
                        epoch,
                        cached,
                        elapsed_us: started.elapsed().as_micros() as u64,
                        trace_id: parent.map(|p| format_trace_id(p.trace_id)),
                        report,
                    },
                );
                // Counted before the enqueue so a subscriber can never
                // observe an event the gauge does not yet include.
                st.pushed_events.fetch_add(1, Ordering::Relaxed);
                outbox.push_event(frame);
                // Invalidate → re-audit → event enqueued, end to end.
                st.telemetry
                    .push_latency_us
                    .record(origin.elapsed().as_micros() as u64);
            }
            Err(e) => {
                trace.outcome = e.to_string();
                slog::error(
                    "server",
                    &format!("pushed audit for subscription {subscription} failed: {e}"),
                );
            }
        }
        if let Some(p) = push {
            st.telemetry.spans.record(
                p,
                "push",
                format!("subscription {subscription}"),
                submit_at.elapsed().as_micros() as u64,
            );
        }
        trace.total_us = started.elapsed().as_micros() as u64;
        st.telemetry.recorder.record(trace);
    });
    if let Err(e) = submitted {
        slog::error(
            "server",
            &format!("could not schedule pushed audit for subscription {subscription}: {e}"),
        );
    }
}

pub(crate) fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut out = encode_line(response);
    out.push('\n');
    writer.write_all(out.as_bytes())?;
    writer.flush()
}

fn federation_engine(state: &ServiceState) -> Option<Arc<dyn FederationEngine>> {
    state
        .federation
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

pub(crate) fn federate_hello(
    state: &ServiceState,
    version: u32,
    node: &str,
    trace: bool,
) -> Response {
    if node.len() > MAX_NODE_NAME_BYTES {
        return Response::error(format!(
            "peer node name exceeds {MAX_NODE_NAME_BYTES} bytes"
        ));
    }
    let Some(engine) = federation_engine(state) else {
        return Response::error("federation not enabled on this daemon");
    };
    match engine.handshake(version, node, trace) {
        // `trace` is echoed only when accepted (and omitted otherwise),
        // so a v1 dialer that never offered it sees the exact legacy
        // welcome shape.
        Ok((version, node, traced)) => {
            slog::debug(
                "server",
                &format!("peer handshake: protocol v{version}, tracing {}", traced),
            );
            Response::FederateWelcome {
                version,
                node,
                trace: traced.then_some(true),
            }
        }
        Err(e) => Response::error(format!("handshake rejected: {e}")),
    }
}

/// Frame mode: after a successful handshake the connection carries only
/// round frames, bounded exactly like request lines. Frames get no
/// per-frame acknowledgement; any protocol violation is answered with
/// one `Error` line and the connection is dropped.
///
/// The negotiated `version` picks the frame encoding: ≥ 2 reads raw
/// length-prefixed binary round frames ([`decode_traced_round_frame`] —
/// no hex, about half the wire bytes, optionally carrying a trace
/// context extension); 1 keeps the legacy hex-in-JSON `FederateData`
/// lines.
pub(crate) fn peer_session_loop<R: BufRead>(
    reader: &mut R,
    writer: &mut TcpStream,
    state: &ServiceState,
    version: u32,
) {
    if version >= 2 {
        return binary_peer_session_loop(reader, writer, state);
    }
    let mut line = String::new();
    loop {
        match read_bounded_line(reader, &mut line, MAX_REQUEST_LINE) {
            Ok(LineRead::Line) => {}
            Ok(LineRead::Eof) | Err(_) => return,
            Ok(LineRead::Oversized) => {
                let _ = write_response(
                    writer,
                    &Response::error(format!("peer frame exceeds {MAX_REQUEST_LINE} bytes")),
                );
                return;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let fail = |writer: &mut TcpStream, message: String| {
            let _ = write_response(writer, &Response::error(message));
        };
        let frame = match decode_line::<Request>(line.trim()) {
            Ok(Request::FederateData {
                session,
                round,
                from,
                payload,
            }) => (session, round, from, payload),
            Ok(other) => {
                fail(
                    writer,
                    format!("peer sessions carry only FederateData frames, got {other:?}"),
                );
                return;
            }
            Err(e) => {
                fail(writer, format!("malformed peer frame: {e}"));
                return;
            }
        };
        let (session, round, from, payload_hex) = frame;
        let payload = match decode_payload(&payload_hex) {
            Ok(p) => p,
            Err(e) => {
                fail(writer, format!("bad frame payload: {e}"));
                return;
            }
        };
        let Some(engine) = federation_engine(state) else {
            fail(writer, "federation not enabled on this daemon".to_string());
            return;
        };
        if let Err(e) = engine.deliver(session, round, from, payload) {
            fail(writer, format!("frame rejected: {e}"));
            return;
        }
    }
}

/// The version ≥ 2 peer frame loop: length-prefixed binary round frames
/// with the fixed 16-byte header and the raw ciphertext payload — no
/// hex doubling, no JSON. Violations are answered with one `Error` line
/// (the dialer may not be reading, which is fine) and the connection is
/// dropped.
fn binary_peer_session_loop<R: BufRead>(
    reader: &mut R,
    writer: &mut TcpStream,
    state: &ServiceState,
) {
    let mut buf = Vec::new();
    loop {
        // Chaos hook: `svc.frame.read` drops the peer session
        // (error/disconnect) or loses one round frame after reading it
        // (drop) — the sender's retry/re-dial path is what recovers.
        let read_fault = indaas_faultinj::point(points::SVC_FRAME_READ);
        if matches!(
            read_fault,
            indaas_faultinj::FaultAction::Error | indaas_faultinj::FaultAction::Disconnect
        ) {
            return;
        }
        match read_frame(reader, &mut buf, MAX_REQUEST_LINE) {
            Ok(FrameRead::Frame) => {}
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::Oversized) => {
                let _ = write_response(
                    writer,
                    &Response::error(format!("peer frame exceeds {MAX_REQUEST_LINE} bytes")),
                );
                return;
            }
        }
        if read_fault == indaas_faultinj::FaultAction::Drop {
            continue;
        }
        let (session, round, from, payload, frame_ctx) = match decode_traced_round_frame(&buf) {
            Ok(frame) => frame,
            Err(e) => {
                let _ = write_response(writer, &Response::error(format!("bad peer frame: {e}")));
                return;
            }
        };
        let Some(engine) = federation_engine(state) else {
            let _ = write_response(
                writer,
                &Response::error("federation not enabled on this daemon"),
            );
            return;
        };
        let deliver_started = Instant::now();
        if let Err(e) = engine.deliver(session, round, from, payload.to_vec()) {
            let _ = write_response(writer, &Response::error(format!("frame rejected: {e}")));
            return;
        }
        if let Some(c) = frame_ctx {
            // The sender minted this context as a child of its own
            // fed_party span, so recording it verbatim is what stitches
            // the cross-daemon parent link `indaas trace` renders.
            state.telemetry.spans.record(
                c,
                "fed_frame",
                format!("session {session} round {round} from {from}"),
                deliver_started.elapsed().as_micros() as u64,
            );
        }
    }
}

/// Flags shutdown and wakes the readiness loop so it begins the drain
/// (farewell pushes to subscribers, flush, close — all inside the
/// loop). The connect poke remains as a fallback for the window where
/// the loop has not yet published its waker.
fn initiate_shutdown(state: &ServiceState) {
    // SeqCst pairs with the mutation gate in `apply_mutation`: the
    // flag store must be totally ordered against in-flight counter
    // updates for the shutdown drain to be exhaustive.
    state.shutting_down.store(true, Ordering::SeqCst);
    let shared = state
        .loop_shared
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    match shared {
        Some(shared) => shared.wake(),
        None => {
            let _ = TcpStream::connect(state.local_addr);
        }
    }
}

/// What admitting a request produced: a synchronous answer, a pooled
/// job (token + deadline, for the loop's guard timer), or a dedicated
/// thread that owns the response slot.
pub(crate) enum AdmitOutcome {
    /// Answered right here; the bool is the v1 shutdown signal.
    Done(Response, bool),
    /// A worker-pool job owns the slot; the loop arms a guard timer at
    /// `deadline` plus grace that cancels `token` and answers
    /// "audit timed out" should the worker wedge.
    Pooled {
        token: CancelToken,
        deadline: Duration,
    },
    /// A dedicated thread (federation party) owns the slot.
    Threaded,
}

/// Request admission: decides synchronous vs pooled vs threaded and, on
/// the asynchronous paths, wires `slot` to whoever will produce the
/// answer. Called from the readiness loop — nothing here may block.
pub(crate) fn admit_request(
    state: &Arc<ServiceState>,
    request: Request,
    ctx: Option<TraceContext>,
    slot: Arc<ResponseSlot>,
) -> AdmitOutcome {
    match request {
        Request::AuditSia { spec, timeout_ms } => admit_sia(state, spec, timeout_ms, ctx, slot),
        Request::AuditPia {
            providers,
            way,
            minhash,
            timeout_ms,
        } => admit_pia(state, providers, way, minhash, timeout_ms, ctx, slot),
        Request::FederateStart {
            session,
            index,
            parties,
            successor,
            seed,
            multiset,
            round_timeout_ms,
        } => {
            let instruction = PartyInstruction {
                session,
                index,
                parties,
                successor,
                seed,
                multiset,
                round_timeout_ms,
                trace: None,
            };
            let st = Arc::clone(state);
            // A party blocks on ring rounds for up to round_timeout ×
            // rounds — far too long for a pool worker; it gets its own
            // thread, as coordinator-driven parties always did.
            let spawned = std::thread::Builder::new()
                .name("indaas-fed-party".to_string())
                .spawn(move || {
                    let _scope = ctx.map(TraceScope::enter);
                    let crash = CrashGuard(slot);
                    let response = federate_start(&st, instruction, ctx);
                    crash.0.fulfill(response);
                });
            match spawned {
                Ok(_) => AdmitOutcome::Threaded,
                Err(e) => AdmitOutcome::Done(
                    Response::error(format!("could not start federation party: {e}")),
                    false,
                ),
            }
        }
        request => {
            let (response, shutdown) = handle_request(request, state, ctx);
            AdmitOutcome::Done(response, shutdown)
        }
    }
}

pub(crate) fn handle_request(
    request: Request,
    state: &Arc<ServiceState>,
    ctx: Option<TraceContext>,
) -> (Response, bool) {
    match request {
        Request::Ping => (Response::Pong, false),
        Request::Ingest { records } => (ingest(state, &records, Mutation::Ingest, ctx), false),
        Request::Retract { records } => (ingest(state, &records, Mutation::Retract, ctx), false),
        // Reachable only from a v1 line session — the v2 loop handles
        // these inline, before dispatching here.
        Request::Hello { .. } => (
            Response::error("Hello must be the first line of a connection"),
            false,
        ),
        Request::Subscribe { .. } | Request::Unsubscribe { .. } => (
            Response::error(
                "subscriptions require a protocol v2 session (open the connection with Hello)",
            ),
            false,
        ),
        Request::Status => (status(state), false),
        Request::Metrics { recent } => (metrics(state, recent), false),
        Request::Trace { id } => (trace_get(state, &id), false),
        Request::Shutdown => (Response::ShuttingDown, true),
        // Unreachable in practice: the readiness loop intercepts every
        // hello before dispatching here (it re-tags the connection). The
        // arm only keeps the match exhaustive.
        Request::FederateHello { .. } => (
            Response::error("FederateHello must be the first line of a peer session"),
            false,
        ),
        Request::FederateData { .. } => (
            Response::error(
                "FederateData is only valid inside a peer session (send FederateHello first)",
            ),
            false,
        ),
        // Defensive: the asynchronous requests are admitted by
        // `admit_request` and never reach the synchronous dispatcher.
        Request::AuditSia { .. } | Request::AuditPia { .. } | Request::FederateStart { .. } => (
            Response::error("internal: asynchronous request routed to the synchronous dispatcher"),
            false,
        ),
    }
}

fn federate_start(
    state: &ServiceState,
    mut instruction: PartyInstruction,
    ctx: Option<TraceContext>,
) -> Response {
    let Some(engine) = federation_engine(state) else {
        return Response::error("federation not enabled on this daemon");
    };
    let snapshot = state.db.snapshot();
    let fed_ctx = FederationCtx {
        snapshot,
        local_addr: state.local_addr,
        round_timeout: state.config.round_timeout,
    };
    let session = instruction.session;
    // The party span parents everything this daemon does for the
    // session: outgoing round frames are stamped with its children, so
    // the successor's `fed_frame` spans link back here across the
    // process boundary.
    let party = ctx.map(|c| c.child());
    instruction.trace = party;
    let started = Instant::now();
    let party_span = Span::start(Arc::clone(&state.telemetry.fed_party_us));
    let result = engine.run_party(instruction, fed_ctx);
    drop(party_span);
    if let Some(p) = party {
        state.telemetry.spans.record(
            p,
            "fed_party",
            format!("session {session}"),
            started.elapsed().as_micros() as u64,
        );
    }
    match result {
        Ok(done) => {
            state
                .telemetry
                .fed_wire_bytes_total
                .add(done.wire_sent_bytes);
            state.telemetry.fed_rounds_total.add(done.sent_msgs);
            state
                .telemetry
                .fed_frame_retries_total
                .add(done.frame_retries);
            state.telemetry.fed_redials_total.add(done.redials);
            Response::FederateDone {
                session,
                payload: encode_payload(&done.payload),
                sent_bytes: done.sent_bytes,
                recv_bytes: done.recv_bytes,
                sent_msgs: done.sent_msgs,
                recv_msgs: done.recv_msgs,
                wire_sent_bytes: done.wire_sent_bytes,
            }
        }
        Err(e) => {
            state.telemetry.fed_party_failures_total.inc();
            Response::error(format!("federated audit failed: {e}"))
        }
    }
}

/// Answers `Trace{id}`: every span this daemon recorded under the
/// trace, each stamped with the local listen address so a client
/// stitching a tree across federated daemons can attribute every span
/// to its node.
fn trace_get(state: &ServiceState, id: &str) -> Response {
    let Some(trace_id) = indaas_obs::parse_trace_id(id) else {
        return Response::error(format!(
            "bad trace id {id:?} (expected up to 32 hex digits, nonzero)"
        ));
    };
    let node = state.local_addr.to_string();
    let spans = state
        .telemetry
        .spans
        .spans_for(trace_id)
        .into_iter()
        .map(|s| SpanEntry {
            trace: format_trace_id(s.trace_id),
            span_id: s.span_id,
            parent_span_id: s.parent_span_id,
            name: s.name,
            detail: s.detail,
            node: node.clone(),
            start_us: s.start_us,
            elapsed_us: s.elapsed_us,
        })
        .collect();
    Response::Trace { node, spans }
}

enum Mutation {
    Ingest,
    Retract,
}

fn ingest(
    state: &Arc<ServiceState>,
    records: &str,
    mutation: Mutation,
    ctx: Option<TraceContext>,
) -> Response {
    let parsed = match indaas_deps::parse_records(records) {
        Ok(p) => p,
        Err(e) => return Response::error(format!("bad records: {e}")),
    };
    match apply_mutation(state, parsed, &mutation, ctx) {
        Some(report) => Response::Ingested {
            changed: report.changed,
            ignored: report.ignored,
            epoch: report.epoch,
        },
        None => Response::error("daemon is shutting down"),
    }
}

/// The single write path into the sharded database: every mutation —
/// protocol ingest/retract or a timer-driven collector batch — lands
/// here, so epoch bumps, per-shard snapshot refreshes and cache
/// invalidation can never diverge between entry points. There is no
/// global lock left on this path: the store routes the batch by shard
/// first and locks only the shards it touches, so concurrent mutations
/// to disjoint hosts proceed in parallel.
/// Decrements the in-flight mutation counter on drop, so a panic
/// anywhere inside [`apply_mutation`] (a poisoned cache or shard lock)
/// cannot leave the shutdown drain waiting forever on a count that
/// will never reach zero.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn apply_mutation(
    state: &Arc<ServiceState>,
    records: Vec<DependencyRecord>,
    mutation: &Mutation,
    ctx: Option<TraceContext>,
) -> Option<indaas_deps::ShardedIngestReport> {
    // Shutdown gate (Dekker-style, all SeqCst): either this thread sees
    // the shutdown flag and bails before touching the store, or the
    // shutdown path's drain loop sees this in-flight count and waits —
    // so the final segment save never misses an acknowledged mutation.
    state.in_flight_mutations.fetch_add(1, Ordering::SeqCst);
    let _in_flight = InFlightGuard(&state.in_flight_mutations);
    if state.shutting_down.load(Ordering::SeqCst) {
        return None;
    }
    // The push-latency clock starts here: "invalidate → re-audit →
    // event enqueued" is measured from the moment the write begins.
    let origin = Instant::now();
    state.telemetry.mutations_total.inc();
    let ingest_span = Span::start(Arc::clone(&state.telemetry.ingest_us));
    let report = match mutation {
        Mutation::Ingest => state.db.ingest(records),
        Mutation::Retract => state.db.retract(&records),
    };
    drop(ingest_span);
    // Per-shard purge: only entries pinned to a shard this batch touched
    // are dropped; audits over other shards stay cached. Called on every
    // batch — the cache compares the epoch vector to its last purge and
    // short-circuits in O(shards) when nothing moved (pure-duplicate
    // collector re-reports), so no-op batches never walk the entries.
    let epochs = state.db.epochs();
    state
        .sia_cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .purge_stale(&epochs);
    // The PIA cache is NOT purged: PIA results are a pure function of
    // the request's provider sets, never of the DepDB.
    //
    // Server push: every subscription pinned to a shard this batch
    // bumped gets a fresh audit scheduled on the worker pool. The
    // registry advances the pins synchronously (so overlapping batches
    // trigger once per wave) but the audits themselves run later, off
    // this write path — an ingest never waits on a subscriber. With a
    // debounce window configured, the trigger parks on the loop's
    // timer wheel instead, so an ingest burst coalesces into one
    // pushed audit per subscription per window.
    let debounce_via = if state.config.push_debounce_ms > 0 {
        state
            .loop_shared
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    } else {
        None
    };
    for hit in state.subs.affected(&epochs) {
        match &debounce_via {
            Some(shared) => shared.queue_push(PendingPush {
                subscription: hit.subscription,
                spec: hit.spec,
                outbox: hit.outbox,
                origin,
                ctx,
            }),
            None => {
                schedule_push_audit(state, hit.subscription, hit.spec, hit.outbox, origin, ctx);
            }
        }
    }
    Some(report)
}

/// Runs every registered collector once and ingests what they report
/// through [`apply_mutation`]. The batch is **fully materialized before
/// any shard lock is taken**: collection (which may walk hosts, shell
/// out, or block on slow probes) happens under only the collectors'
/// own mutex, so shard lock hold time stays proportional to routing +
/// apply — a slow collector can never stall concurrent protocol
/// ingests or audits. Returns how many records the tick ingested.
pub(crate) fn run_collectors(state: &Arc<ServiceState>) -> usize {
    // Phase 1: materialize. No DepDB lock is held anywhere in here.
    let mut collected: Vec<DependencyRecord> = Vec::new();
    {
        let mut collectors = state
            .collectors
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for c in collectors.iter_mut() {
            for host in c.hosts() {
                match c.collect(&host) {
                    Ok(records) => collected.extend(records),
                    Err(e) => {
                        slog::warn("server", &format!("collector {} failed: {e}", c.name()));
                    }
                }
            }
        }
    }
    // Phase 2: route + apply, the only part that touches shard locks.
    // A batch rejected by the shutdown gate is simply dropped — the
    // daemon is exiting and the collectors re-measure on next boot.
    let total = collected.len();
    // Collector ticks are daemon-initiated — there is no client trace
    // to parent their fan-out on.
    if !collected.is_empty() && apply_mutation(state, collected, &Mutation::Ingest, None).is_none()
    {
        return 0;
    }
    total
}

/// Rejects request-controlled algorithm parameters that would panic an
/// engine or defeat the scheduler's admission control (e.g. a spec
/// asking one pooled job to spawn thousands of sampling threads).
fn validate_spec(spec: &AuditSpec) -> Result<(), String> {
    const MAX_SAMPLING_THREADS: usize = 8;
    match spec.algorithm {
        indaas_core::RgAlgorithm::Sampling {
            threads, fail_prob, ..
        } => {
            if threads == 0 || threads > MAX_SAMPLING_THREADS {
                return Err(format!(
                    "sampling threads must be in 1..={MAX_SAMPLING_THREADS} (got {threads})"
                ));
            }
            if !(fail_prob > 0.0 && fail_prob < 1.0) {
                return Err(format!("fail_prob must be in (0, 1) (got {fail_prob})"));
            }
        }
        indaas_core::RgAlgorithm::Bdd { max_nodes } => {
            // The node budget bounds one job's memory; uncapped it lets
            // a single request grow allocations past any deadline's
            // reach (the token is only polled between graph nodes).
            const MAX_BDD_NODES: usize = 1 << 24;
            if !(2..=MAX_BDD_NODES).contains(&max_nodes) {
                return Err(format!(
                    "bdd max_nodes must be in 2..={MAX_BDD_NODES} (got {max_nodes})"
                ));
            }
        }
        indaas_core::RgAlgorithm::Minimal { .. } => {}
    }
    Ok(())
}

/// Admits an `AuditSia`: cache hits answer inline; a miss submits a
/// pooled job that fulfills `slot` itself — no thread waits on the
/// result. The job polls its deadline-armed token and reports
/// `Cancelled` as "audit failed: …"; the loop's guard timer answers
/// "audit timed out" only for a worker wedged past deadline + grace,
/// and the [`CrashGuard`] answers for a panicked one.
fn admit_sia(
    state: &Arc<ServiceState>,
    spec: AuditSpec,
    timeout_ms: Option<u64>,
    ctx: Option<TraceContext>,
    slot: Arc<ResponseSlot>,
) -> AdmitOutcome {
    if let Err(e) = validate_spec(&spec) {
        return AdmitOutcome::Done(Response::error(format!("invalid spec: {e}")), false);
    }
    let started = Instant::now();
    // Wait-free: no lock is taken for either the epoch stamp or the
    // snapshot, so audit admission is never delayed by writers.
    let epoch = state.db.epoch();
    let snapshot = state.db.snapshot();
    // The cache key pins exactly the shards this spec's hosts route to:
    // an ingest touching any *other* shard changes neither the key nor
    // the entry's validity, so the cached report stays hot.
    let pins: EpochPins = snapshot.pins_for_hosts(spec_hosts(&spec));
    let key = job_key(&pins, "sia", &spec);
    let detail = spec
        .candidates
        .iter()
        .map(|c| c.name.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    if let Some(report) = state
        .sia_cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        let mut trace = Trace::new("sia", detail);
        trace.cached = true;
        trace.pins = pins;
        trace.total_us = started.elapsed().as_micros() as u64;
        state.telemetry.recorder.record(trace);
        return AdmitOutcome::Done(
            Response::Sia {
                epoch,
                cached: true,
                elapsed_us: started.elapsed().as_micros() as u64,
                report,
            },
            false,
        );
    }

    let deadline = job_deadline(&state.config, timeout_ms);
    let st = Arc::clone(state);
    let telemetry = Arc::clone(&state.telemetry);
    let trace_pins = pins.clone();
    // Sibling children of the request span: how long the job sat in the
    // scheduler queue, then the audit execution (whose engine stages
    // nest under it via the recorder).
    let exec = ctx.map(|c| c.child());
    let submit_at = Instant::now();
    let submitted = state.scheduler.submit(Some(deadline), move |token| {
        // Answers the slot with "audit job crashed" if this closure
        // unwinds before `fulfill` below claims it.
        let crash = CrashGuard(Arc::clone(&slot));
        let _scope = exec.map(TraceScope::enter);
        let run_started = Instant::now();
        if let Some(c) = ctx {
            telemetry.spans.record(
                c.child(),
                "queue_wait",
                String::new(),
                run_started.duration_since(submit_at).as_micros() as u64,
            );
        }
        let recorder = StageRecorder::with_trace(&telemetry, exec);
        let agent = AuditingAgent::from_snapshot(snapshot);
        let result = agent.audit_sia_observed(&spec, token, &recorder);
        let total_us = run_started.elapsed().as_micros() as u64;
        telemetry.audits_sia_total.inc();
        telemetry.audit_sia_us.record(total_us);
        if let Some(e) = exec {
            telemetry
                .spans
                .record(e, "audit_exec", detail.clone(), total_us);
        }
        let mut trace = Trace::new("sia", detail);
        trace.pins = trace_pins;
        trace.stages = recorder.into_stages();
        trace.total_us = total_us;
        if let Err(e) = &result {
            trace.outcome = e.to_string();
        }
        telemetry.recorder.record(trace);
        let response = match result {
            Ok(report) => {
                st.sia_cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(key, pins, report.clone());
                Response::Sia {
                    epoch,
                    cached: false,
                    elapsed_us: started.elapsed().as_micros() as u64,
                    report,
                }
            }
            Err(e) => Response::error(format!("audit failed: {e}")),
        };
        crash.0.fulfill(response);
    });
    match submitted {
        Ok(token) => AdmitOutcome::Pooled { token, deadline },
        Err(e) => AdmitOutcome::Done(Response::error(e.to_string()), false),
    }
}

/// Admits an `AuditPia` — same shape as [`admit_sia`], epoch-free cache
/// key (PIA reads nothing from the DepDB).
fn admit_pia(
    state: &Arc<ServiceState>,
    providers: Vec<(String, Vec<String>)>,
    way: usize,
    minhash: Option<usize>,
    timeout_ms: Option<u64>,
    ctx: Option<TraceContext>,
    slot: Arc<ResponseSlot>,
) -> AdmitOutcome {
    if way < 2 || providers.len() < way {
        return AdmitOutcome::Done(
            Response::error("need way >= 2 and at least `way` providers"),
            false,
        );
    }
    if providers.iter().any(|(_, set)| set.is_empty()) {
        return AdmitOutcome::Done(
            Response::error("provider component sets must be non-empty"),
            false,
        );
    }
    let started = Instant::now();
    let epoch = state.db.epoch();
    // PIA reads nothing from the DepDB — its inputs travel entirely in
    // the request — so the cache key deliberately carries no epoch pins
    // and entries survive ingests (the response still stamps the epoch).
    let key = job_key(&(), "pia", &(&providers, way, minhash));
    let detail = format!("{} providers, {way}-way", providers.len());
    if let Some(rankings) = state
        .pia_cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        let mut trace = Trace::new("pia", detail);
        trace.cached = true;
        trace.total_us = started.elapsed().as_micros() as u64;
        state.telemetry.recorder.record(trace);
        return AdmitOutcome::Done(
            Response::Pia {
                epoch,
                cached: true,
                elapsed_us: started.elapsed().as_micros() as u64,
                rankings,
            },
            false,
        );
    }

    let deadline = job_deadline(&state.config, timeout_ms);
    let st = Arc::clone(state);
    let telemetry = Arc::clone(&state.telemetry);
    let exec = ctx.map(|c| c.child());
    let submit_at = Instant::now();
    let submitted = state.scheduler.submit(Some(deadline), move |token| {
        let crash = CrashGuard(Arc::clone(&slot));
        let _scope = exec.map(TraceScope::enter);
        let run_started = Instant::now();
        if let Some(c) = ctx {
            telemetry.spans.record(
                c.child(),
                "queue_wait",
                String::new(),
                run_started.duration_since(submit_at).as_micros() as u64,
            );
        }
        let result =
            rank_deployments_cancellable(&providers, way, minhash, &PsopConfig::default(), token);
        let total_us = run_started.elapsed().as_micros() as u64;
        telemetry.audits_pia_total.inc();
        telemetry.audit_pia_us.record(total_us);
        if let Some(e) = exec {
            telemetry
                .spans
                .record(e, "audit_exec", detail.clone(), total_us);
        }
        let mut trace = Trace::new("pia", detail);
        trace.total_us = total_us;
        if let Err(e) = &result {
            trace.outcome = e.to_string();
        }
        telemetry.recorder.record(trace);
        let response = match result {
            Ok(rankings) => {
                st.pia_cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(
                        key,
                        EpochPins::new(), // no pins: epoch-independent, never stale
                        rankings.clone(),
                    );
                Response::Pia {
                    epoch,
                    cached: false,
                    elapsed_us: started.elapsed().as_micros() as u64,
                    rankings,
                }
            }
            Err(e) => Response::error(format!("audit failed: {e}")),
        };
        crash.0.fulfill(response);
    });
    match submitted {
        Ok(token) => AdmitOutcome::Pooled { token, deadline },
        Err(e) => AdmitOutcome::Done(Response::error(e.to_string()), false),
    }
}

/// Resolves the effective job deadline: the client's request, clamped
/// to the configured ceiling.
fn job_deadline(config: &ServeConfig, timeout_ms: Option<u64>) -> Duration {
    timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_deadline)
        .min(config.max_deadline)
}

fn status(state: &ServiceState) -> Response {
    // Status reads the same wait-free snapshot path audits use; the
    // counters come from per-shard atomics. No lock, so a dashboard
    // polling Status never slows writers down.
    let snapshot = state.db.snapshot();
    let epoch = state.db.epoch();
    let shard_records: Vec<usize> = (0..snapshot.num_shards())
        .map(|s| snapshot.shard(s).len())
        .collect();
    let records = shard_records.iter().sum();
    let hosts = DepView::hosts(&snapshot).len();
    let shard_epochs = snapshot.epochs().as_slice().to_vec();
    let counters = state.db.counters();
    let (sia_hits, sia_misses, sia_len) = {
        let cache = state
            .sia_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (h, m) = cache.stats();
        (h, m, cache.len())
    };
    let (pia_hits, pia_misses, pia_len) = {
        let cache = state
            .pia_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (h, m) = cache.stats();
        (h, m, cache.len())
    };
    let cache_entries = sia_len + pia_len;
    let cache_hits = sia_hits + pia_hits;
    let cache_misses = sia_misses + pia_misses;
    let lookups = cache_hits + cache_misses;
    Response::Status {
        epoch,
        records,
        hosts,
        shard_epochs,
        shard_records,
        shard_writes: counters.shard_writes,
        lock_waits: counters.lock_waits,
        jobs_queued: state.scheduler.queued(),
        jobs_running: state.scheduler.running(),
        cache_entries,
        cache_hits,
        cache_misses,
        hit_ratio: if lookups == 0 {
            0.0
        } else {
            cache_hits as f64 / lookups as f64
        },
        subscriptions: state.subs.len(),
        pushed_events: state.pushed_events.load(Ordering::Relaxed),
        uptime_ms: state.started.elapsed().as_millis() as u64,
        uptime_secs: state.started.elapsed().as_secs(),
        sia_audits: state.telemetry.audits_sia_total.get(),
        pia_audits: state.telemetry.audits_pia_total.get(),
        dropped_events: state.telemetry.outbox_shed_total.get(),
    }
}

/// Assembles a `Metrics` response: refreshes the derived gauges from
/// their authoritative sources (per-shard atomics, cache stats,
/// scheduler — the same lock-free reads `Status` does), snapshots the
/// registry, and attaches the most recent flight-recorder traces.
fn metrics(state: &ServiceState, recent: Option<usize>) -> Response {
    let telemetry = &state.telemetry;
    let registry = &telemetry.registry;
    let counters = state.db.counters();
    registry
        .gauge(names::DB_SHARD_WRITES)
        .set(counters.shard_writes.iter().sum());
    registry
        .gauge(names::DB_LOCK_WAITS)
        .set(counters.lock_waits);
    let (sia_hits, sia_misses, sia_len) = {
        let cache = state
            .sia_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (h, m) = cache.stats();
        (h, m, cache.len())
    };
    let (pia_hits, pia_misses, pia_len) = {
        let cache = state
            .pia_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (h, m) = cache.stats();
        (h, m, cache.len())
    };
    registry.gauge(names::CACHE_SIA_HITS).set(sia_hits);
    registry.gauge(names::CACHE_SIA_MISSES).set(sia_misses);
    registry.gauge(names::CACHE_PIA_HITS).set(pia_hits);
    registry.gauge(names::CACHE_PIA_MISSES).set(pia_misses);
    registry
        .gauge(names::CACHE_ENTRIES)
        .set((sia_len + pia_len) as u64);
    registry
        .gauge(names::SCHED_QUEUE_DEPTH)
        .set(state.scheduler.queued() as u64);
    registry
        .gauge(names::SCHED_JOBS_RUNNING)
        .set(state.scheduler.running() as u64);
    registry
        .gauge(names::SUBSCRIPTIONS)
        .set(state.subs.len() as u64);
    registry
        .gauge(names::ACTIVE_CONNS)
        .set(state.active_conns.load(Ordering::Relaxed) as u64);
    registry
        .gauge(names::PUSHED_EVENTS)
        .set(state.pushed_events.load(Ordering::Relaxed));
    let snap = registry.snapshot();
    let recent = recent
        .unwrap_or(DEFAULT_RECENT_TRACES)
        .min(telemetry.recorder.capacity());
    Response::Metrics {
        uptime_secs: state.started.elapsed().as_secs(),
        counters: snap.counters,
        gauges: snap.gauges,
        histos: wire_histos(&snap.histos),
        traces: wire_traces(telemetry.recorder.recent(recent)),
        slow_threshold_us: telemetry.recorder.slow_threshold_us(),
    }
}
