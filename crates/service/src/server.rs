//! The continuous auditing daemon.
//!
//! One accept loop, one lightweight thread per client connection, and a
//! fixed [`Scheduler`] pool doing the actual audit work. Connection
//! threads never compute: they parse requests, consult the audit-result
//! cache, and otherwise enqueue a job and wait for its result, so a slow
//! audit can never starve protocol handling.
//!
//! Data flow for an `AuditSia` request:
//!
//! 1. read-lock the versioned DepDB, pin `(epoch, Arc<DepDb> snapshot)`;
//! 2. content-hash `(epoch, spec)` → cache hit ⇒ answer immediately with
//!    `cached: true`;
//! 3. miss ⇒ submit a job carrying the snapshot and a deadline-armed
//!    [`CancelToken`]; the worker runs the cancellable audit entry point
//!    and sends the result back over a channel;
//! 4. insert the report into the cache keyed by the *pinned* epoch (a
//!    concurrent ingest bumps the epoch, so the entry is already stale
//!    and unreachable — and purged on the next ingest).

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use indaas_core::{AuditSpec, AuditingAgent, CancelToken};
use indaas_deps::{DepDb, VersionedDepDb};
use indaas_pia::{rank_deployments_cancellable, PiaRanking, PsopConfig};
use indaas_sia::AuditReport;

use crate::cache::{job_key, AuditCache};
use crate::proto::{decode_line, encode_line, read_bounded_line, LineRead, Request, Response};
use crate::scheduler::Scheduler;

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Audit worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (admission control).
    pub queue_capacity: usize,
    /// Audit-result cache capacity, in entries.
    pub cache_capacity: usize,
    /// Deadline applied to jobs whose request carries no `timeout_ms`.
    pub default_deadline: Duration,
    /// Hard ceiling on client-supplied `timeout_ms` — a request cannot
    /// arm a longer deadline than this (admission control would be
    /// defeated by `timeout_ms: u64::MAX`).
    pub max_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4914".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).clamp(1, 8))
                .unwrap_or(2),
            queue_capacity: 256,
            cache_capacity: 4096,
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(300),
        }
    }
}

/// The dependency database plus the epoch-pinned snapshot audits read.
struct DbState {
    versioned: VersionedDepDb,
    /// Immutable snapshot of `versioned`'s database, rebuilt on every
    /// effective ingest. Audit jobs clone the `Arc`, never the data.
    snapshot: Arc<DepDb>,
}

struct ServiceState {
    config: ServeConfig,
    db: RwLock<DbState>,
    sia_cache: Mutex<AuditCache<AuditReport>>,
    pia_cache: Mutex<AuditCache<Vec<PiaRanking>>>,
    scheduler: Scheduler,
    started: Instant,
    shutting_down: AtomicBool,
    local_addr: SocketAddr,
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        Self::bind_with_db(config, VersionedDepDb::new())
    }

    /// [`Server::bind`] with a pre-loaded dependency database.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind_with_db(config: ServeConfig, db: VersionedDepDb) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let snapshot = Arc::new(db.db().clone());
        let state = Arc::new(ServiceState {
            scheduler: Scheduler::new(config.workers, config.queue_capacity),
            sia_cache: Mutex::new(AuditCache::new(config.cache_capacity)),
            pia_cache: Mutex::new(AuditCache::new(config.cache_capacity)),
            db: RwLock::new(DbState {
                versioned: db,
                snapshot,
            }),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            local_addr,
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Serves until a `Shutdown` request arrives. Each connection gets
    /// its own thread; audits run on the shared worker pool.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::Acquire) {
                break;
            }
            let stream = stream?;
            let state = Arc::clone(&self.state);
            // Detached on purpose: a handler blocked in `read_line` only
            // unblocks when its client hangs up, so joining here would
            // let one idle connection stall shutdown indefinitely. The
            // worker pool itself joins via `Scheduler::drop` once the
            // last connection releases the shared state.
            std::thread::spawn(move || handle_connection(stream, &state));
        }
        self.state.scheduler.shutdown();
        Ok(())
    }
}

/// Largest accepted request line. Ingest batches are the big consumer;
/// 16 MiB comfortably holds millions of Table-1 records per line while
/// bounding per-connection memory.
pub const MAX_REQUEST_LINE: u64 = 16 * 1024 * 1024;

fn handle_connection(stream: TcpStream, state: &ServiceState) {
    let Ok(peer_writer) = stream.try_clone() else {
        return;
    };
    let mut writer = peer_writer;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut reader, &mut line, MAX_REQUEST_LINE) {
            Ok(LineRead::Line) => {}
            Ok(LineRead::Eof) | Err(_) => return, // EOF or broken pipe
            Ok(LineRead::Oversized) => {
                let mut out = encode_line(&Response::error(format!(
                    "request line exceeds {MAX_REQUEST_LINE} bytes"
                )));
                out.push('\n');
                let _ = writer.write_all(out.as_bytes());
                return; // cannot resync mid-line; drop the connection
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match decode_line::<Request>(line.trim()) {
            Ok(request) => handle_request(request, state),
            Err(e) => (Response::error(format!("malformed request: {e}")), false),
        };
        let mut out = encode_line(&response);
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if shutdown {
            initiate_shutdown(state);
            return;
        }
    }
}

/// Flags shutdown and pokes the accept loop awake with a throwaway
/// connection so `run` observes the flag.
fn initiate_shutdown(state: &ServiceState) {
    state.shutting_down.store(true, Ordering::Release);
    let _ = TcpStream::connect(state.local_addr);
}

fn handle_request(request: Request, state: &ServiceState) -> (Response, bool) {
    match request {
        Request::Ping => (Response::Pong, false),
        Request::Ingest { records } => (ingest(state, &records, Mutation::Ingest), false),
        Request::Retract { records } => (ingest(state, &records, Mutation::Retract), false),
        Request::AuditSia { spec, timeout_ms } => (audit_sia(state, spec, timeout_ms), false),
        Request::AuditPia {
            providers,
            way,
            minhash,
            timeout_ms,
        } => (audit_pia(state, providers, way, minhash, timeout_ms), false),
        Request::Status => (status(state), false),
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

enum Mutation {
    Ingest,
    Retract,
}

fn ingest(state: &ServiceState, records: &str, mutation: Mutation) -> Response {
    let mut db = state.db.write().expect("db lock poisoned");
    let report = match mutation {
        Mutation::Ingest => match db.versioned.ingest_text(records) {
            Ok(r) => r,
            Err(e) => return Response::error(format!("bad records: {e}")),
        },
        Mutation::Retract => {
            let parsed = match indaas_deps::parse_records(records) {
                Ok(p) => p,
                Err(e) => return Response::error(format!("bad records: {e}")),
            };
            db.versioned.retract(&parsed)
        }
    };
    if report.changed > 0 {
        // New epoch: refresh the audit snapshot and drop every cache
        // entry the bump just invalidated.
        db.snapshot = Arc::new(db.versioned.db().clone());
        let epoch = db.versioned.epoch();
        state
            .sia_cache
            .lock()
            .expect("cache lock poisoned")
            .purge_stale(epoch);
        // The PIA cache is NOT purged: PIA results are a pure function
        // of the request's provider sets, never of the DepDB.
    }
    Response::Ingested {
        changed: report.changed,
        ignored: report.ignored,
        epoch: report.epoch,
    }
}

/// Rejects request-controlled algorithm parameters that would panic an
/// engine or defeat the scheduler's admission control (e.g. a spec
/// asking one pooled job to spawn thousands of sampling threads).
fn validate_spec(spec: &AuditSpec) -> Result<(), String> {
    const MAX_SAMPLING_THREADS: usize = 8;
    match spec.algorithm {
        indaas_core::RgAlgorithm::Sampling {
            threads, fail_prob, ..
        } => {
            if threads == 0 || threads > MAX_SAMPLING_THREADS {
                return Err(format!(
                    "sampling threads must be in 1..={MAX_SAMPLING_THREADS} (got {threads})"
                ));
            }
            if !(fail_prob > 0.0 && fail_prob < 1.0) {
                return Err(format!("fail_prob must be in (0, 1) (got {fail_prob})"));
            }
        }
        indaas_core::RgAlgorithm::Bdd { max_nodes } => {
            // The node budget bounds one job's memory; uncapped it lets
            // a single request grow allocations past any deadline's
            // reach (the token is only polled between graph nodes).
            const MAX_BDD_NODES: usize = 1 << 24;
            if !(2..=MAX_BDD_NODES).contains(&max_nodes) {
                return Err(format!(
                    "bdd max_nodes must be in 2..={MAX_BDD_NODES} (got {max_nodes})"
                ));
            }
        }
        indaas_core::RgAlgorithm::Minimal { .. } => {}
    }
    Ok(())
}

fn audit_sia(state: &ServiceState, spec: AuditSpec, timeout_ms: Option<u64>) -> Response {
    if let Err(e) = validate_spec(&spec) {
        return Response::error(format!("invalid spec: {e}"));
    }
    let started = Instant::now();
    let (epoch, snapshot) = {
        let db = state.db.read().expect("db lock poisoned");
        (db.versioned.epoch(), Arc::clone(&db.snapshot))
    };
    let key = job_key(epoch, "sia", &spec);
    if let Some(report) = state
        .sia_cache
        .lock()
        .expect("cache lock poisoned")
        .get(&key)
    {
        return Response::Sia {
            epoch,
            cached: true,
            elapsed_us: started.elapsed().as_micros() as u64,
            report,
        };
    }

    let deadline = job_deadline(&state.config, timeout_ms);
    let (tx, rx) = mpsc::channel();
    let submitted = state.scheduler.submit(Some(deadline), move |token| {
        let agent = AuditingAgent::from_shared(snapshot);
        let _ = tx.send(agent.audit_sia_cancellable(&spec, token));
    });
    let token = match submitted {
        Ok(token) => token,
        Err(e) => return Response::error(e.to_string()),
    };
    match wait_for_result(&rx, deadline, &token) {
        Ok(Ok(report)) => {
            state
                .sia_cache
                .lock()
                .expect("cache lock poisoned")
                .insert(key, epoch, report.clone());
            Response::Sia {
                epoch,
                cached: false,
                elapsed_us: started.elapsed().as_micros() as u64,
                report,
            }
        }
        Ok(Err(e)) => Response::error(format!("audit failed: {e}")),
        Err(timeout) => Response::error(timeout),
    }
}

fn audit_pia(
    state: &ServiceState,
    providers: Vec<(String, Vec<String>)>,
    way: usize,
    minhash: Option<usize>,
    timeout_ms: Option<u64>,
) -> Response {
    if way < 2 || providers.len() < way {
        return Response::error("need way >= 2 and at least `way` providers");
    }
    if providers.iter().any(|(_, set)| set.is_empty()) {
        return Response::error("provider component sets must be non-empty");
    }
    let started = Instant::now();
    let epoch = state.db.read().expect("db lock poisoned").versioned.epoch();
    // PIA reads nothing from the DepDB — its inputs travel entirely in
    // the request — so the cache key deliberately omits the epoch and
    // entries survive ingests (the response still stamps the epoch).
    let key = job_key(0, "pia", &(&providers, way, minhash));
    if let Some(rankings) = state
        .pia_cache
        .lock()
        .expect("cache lock poisoned")
        .get(&key)
    {
        return Response::Pia {
            epoch,
            cached: true,
            elapsed_us: started.elapsed().as_micros() as u64,
            rankings,
        };
    }

    let deadline = job_deadline(&state.config, timeout_ms);
    let (tx, rx) = mpsc::channel();
    let submitted = state.scheduler.submit(Some(deadline), move |token| {
        let _ = tx.send(rank_deployments_cancellable(
            &providers,
            way,
            minhash,
            &PsopConfig::default(),
            token,
        ));
    });
    let token = match submitted {
        Ok(token) => token,
        Err(e) => return Response::error(e.to_string()),
    };
    match wait_for_result(&rx, deadline, &token) {
        Ok(Ok(rankings)) => {
            state.pia_cache.lock().expect("cache lock poisoned").insert(
                key,
                0, // epoch-independent; see the key above
                rankings.clone(),
            );
            Response::Pia {
                epoch,
                cached: false,
                elapsed_us: started.elapsed().as_micros() as u64,
                rankings,
            }
        }
        Ok(Err(e)) => Response::error(format!("audit failed: {e}")),
        Err(timeout) => Response::error(timeout),
    }
}

/// Resolves the effective job deadline: the client's request, clamped
/// to the configured ceiling.
fn job_deadline(config: &ServeConfig, timeout_ms: Option<u64>) -> Duration {
    timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_deadline)
        .min(config.max_deadline)
}

/// Waits for a job result, granting a small grace period past the
/// deadline (the job polls its token and reports `Cancelled` itself; the
/// hard timeout here only guards against a wedged worker).
fn wait_for_result<T>(
    rx: &mpsc::Receiver<T>,
    deadline: Duration,
    token: &CancelToken,
) -> Result<T, String> {
    let grace = deadline + Duration::from_secs(2);
    match rx.recv_timeout(grace) {
        Ok(result) => Ok(result),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The job dropped its sender without sending: it panicked
            // (the scheduler caught it and the worker survived).
            Err("audit job crashed; see server log".to_string())
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            token.cancel();
            Err("audit timed out".to_string())
        }
    }
}

fn status(state: &ServiceState) -> Response {
    let (epoch, records, hosts) = {
        let db = state.db.read().expect("db lock poisoned");
        (
            db.versioned.epoch(),
            db.versioned.db().len(),
            db.versioned.db().hosts().len(),
        )
    };
    let (sia_hits, sia_misses, sia_len) = {
        let cache = state.sia_cache.lock().expect("cache lock poisoned");
        let (h, m) = cache.stats();
        (h, m, cache.len())
    };
    let (pia_hits, pia_misses, pia_len) = {
        let cache = state.pia_cache.lock().expect("cache lock poisoned");
        let (h, m) = cache.stats();
        (h, m, cache.len())
    };
    let cache_entries = sia_len + pia_len;
    Response::Status {
        epoch,
        records,
        hosts,
        jobs_queued: state.scheduler.queued(),
        jobs_running: state.scheduler.running(),
        cache_entries,
        cache_hits: sia_hits + pia_hits,
        cache_misses: sia_misses + pia_misses,
        uptime_ms: state.started.elapsed().as_millis() as u64,
    }
}
