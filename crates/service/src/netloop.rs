//! The readiness loop: one thread, one `epoll` instance, every client
//! connection.
//!
//! The threaded server spent two OS threads per connection (a blocking
//! reader plus an outbox-draining writer) and a short-lived thread per
//! in-flight v2 envelope. This module replaces all of them with a
//! single loop that owns the listener, every client socket, an eventfd
//! [`Waker`], and a [`TimerWheel`]:
//!
//! - **Reads** append whatever the kernel has ready to a per-connection
//!   buffer; the incremental codecs ([`crate::codec`]) pop complete
//!   lines/frames out of it, so byte-at-a-time delivery decodes exactly
//!   like the old blocking readers.
//! - **Writes** go through the connection's [`Outbox`] (jobs and push
//!   audits enqueue fully-framed bytes from worker threads, exactly as
//!   before) into a [`WriteQueue`] the loop drains on `EPOLLOUT`,
//!   resuming mid-frame across `WouldBlock`.
//! - **Requests** that need real work (cache-miss audits) are admitted
//!   onto the bounded [`Scheduler`](crate::scheduler::Scheduler) pool
//!   with a [`ResponseSlot`] the job fulfills when done — no thread
//!   waits for the result. A guard timer answers for a wedged worker;
//!   a [`CrashGuard`] answers for a panicked one.
//! - **Timers** absorb the old detached collector thread, per-request
//!   deadline guards, and subscription push debouncing.
//!
//! Federation peer sessions still get a dedicated thread (their ring
//! protocol is synchronous by design), but they multiplex on the same
//! listener: the loop parses the `FederateHello`, then hands the socket
//! plus any already-buffered bytes to the blocking peer loop.

use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use indaas_core::{AuditSpec, CancelToken};
use indaas_netpoll::{Event, Interest, Poller, TimerWheel, Waker};
use indaas_obs::{log as slog, Span, TraceContext};

use crate::codec::{self, WriteQueue};
use crate::proto::{
    decode_line, encode_line, Envelope, Request, Response, EVENT_ENVELOPE_ID, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::server::{
    admit_request, envelope_frame, federate_hello, peer_session_loop, register_subscription,
    request_kind, run_collectors, save_dirty, schedule_push_audit, write_response, AdmitOutcome,
    ConnGuard, ServiceState, MAX_IN_FLIGHT_REQUESTS, MAX_REQUEST_LINE,
};
use crate::subs::Outbox;
use crate::telemetry::Telemetry;

/// Token the listener is registered under.
const LISTENER_TOKEN: u64 = 0;
/// Token the eventfd waker is registered under.
const WAKER_TOKEN: u64 = 1;
/// First token handed to a client connection.
const FIRST_CONN_TOKEN: u64 = 16;
/// Bytes of pending output past which the loop stops *reading* a
/// connection — a peer that writes requests faster than it drains
/// responses gets TCP backpressure instead of unbounded server memory.
const WRITE_HIGH_WATERMARK: usize = 4 * 1024 * 1024;
/// Socket-read chunks serviced per readiness event before yielding to
/// other connections (level-triggered epoll re-reports the remainder).
const MAX_FILLS_PER_EVENT: usize = 8;
/// How long the shutdown drain waits for blocked sockets to flush
/// their final frames before force-closing them.
const SHUTDOWN_LINGER: Duration = Duration::from_secs(2);

/// The cross-thread face of the loop: worker threads and external
/// shutdown callers reach the loop only through this.
pub(crate) struct LoopShared {
    waker: Waker,
    /// Connections whose outbox gained a frame (or closed) since the
    /// loop last drained this list.
    ready: Mutex<Vec<u64>>,
    /// Subscription triggers awaiting debounce (only populated when
    /// [`crate::ServeConfig::push_debounce_ms`] is nonzero).
    pushes: Mutex<Vec<PendingPush>>,
}

impl LoopShared {
    /// Wakes the loop so it re-checks the shutdown flag and its lists.
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    fn notify_conn(&self, token: u64) {
        self.ready
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(token);
        self.waker.wake();
    }

    fn take_ready(&self) -> Vec<u64> {
        std::mem::take(&mut *self.ready.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Queues a subscription trigger for debounced delivery.
    pub(crate) fn queue_push(&self, push: PendingPush) {
        self.pushes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(push);
        self.waker.wake();
    }

    fn take_pushes(&self) -> Vec<PendingPush> {
        std::mem::take(&mut *self.pushes.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A subscription an ingest invalidated, parked until its debounce
/// timer fires. Coalescing keeps the *earliest* trigger per
/// subscription: its `origin` is what the push-latency histogram must
/// measure from.
pub(crate) struct PendingPush {
    pub(crate) subscription: u64,
    pub(crate) spec: AuditSpec,
    pub(crate) outbox: Arc<Outbox>,
    pub(crate) origin: Instant,
    pub(crate) ctx: Option<TraceContext>,
}

/// How a [`ResponseSlot`] frames its response for the wire.
pub(crate) enum SlotEncoding {
    /// A bare v1 response line.
    V1,
    /// A v2 response envelope echoing the request id.
    V2 { id: u64 },
}

/// One outstanding request's answer-exactly-once cell. Whoever calls
/// [`ResponseSlot::fulfill`] first — the job, the deadline guard timer,
/// or the crash guard — wins; later calls are no-ops. Fulfilling
/// records the dispatch latency and the request span, frames the
/// response for the session's protocol, and enqueues it on the
/// connection's outbox (whose notifier wakes the loop).
pub(crate) struct ResponseSlot {
    claimed: AtomicBool,
    outbox: Arc<Outbox>,
    encoding: SlotEncoding,
    /// The v2 per-connection in-flight gauge; `None` for v1 (lock-step
    /// sessions have at most one outstanding request by construction).
    in_flight: Option<Arc<AtomicUsize>>,
    ctx: Option<TraceContext>,
    kind: &'static str,
    started: Instant,
    telemetry: Arc<Telemetry>,
}

impl ResponseSlot {
    /// Delivers `response` if nothing else has yet; returns whether
    /// this call was the one that claimed the slot.
    pub(crate) fn fulfill(&self, response: Response) -> bool {
        if self.claimed.swap(true, Ordering::SeqCst) {
            return false;
        }
        let elapsed_us = self.started.elapsed().as_micros() as u64;
        self.telemetry.dispatch_us.record(elapsed_us);
        if let Some(c) = self.ctx {
            // The request span uses the wire context's span id directly:
            // the client minted it, so client and server agree on the id
            // without a reply header.
            self.telemetry
                .spans
                .record(c, self.kind, String::new(), elapsed_us);
        }
        let frame = match self.encoding {
            SlotEncoding::V1 => codec::line_bytes(&encode_line(&response)),
            SlotEncoding::V2 { id } => envelope_frame(id, response),
        };
        self.outbox.push_response(frame);
        if let Some(gauge) = &self.in_flight {
            gauge.fetch_sub(1, Ordering::AcqRel);
        }
        true
    }
}

/// Fulfills its slot with the crash message when dropped unclaimed —
/// jobs own one so a panic mid-audit (unwound by the scheduler's
/// `catch_unwind`) still answers the request, exactly as the old
/// disconnected-channel path did.
pub(crate) struct CrashGuard(pub(crate) Arc<ResponseSlot>);

impl Drop for CrashGuard {
    fn drop(&mut self) {
        self.0
            .fulfill(Response::error("audit job crashed; see server log"));
    }
}

/// What the loop's timer wheel carries.
enum TimerEvent {
    /// Re-run the registered collectors (the old detached collector
    /// thread, absorbed).
    Collect,
    /// A pooled job's deadline-plus-grace guard: answers "audit timed
    /// out" for a wedged worker and cancels its token.
    Guard {
        slot: Arc<ResponseSlot>,
        token: CancelToken,
    },
    /// A debounced subscription trigger came due.
    Debounce { subscription: u64 },
    /// The shutdown drain's patience ran out; force-close stragglers.
    ShutdownLinger,
}

/// Transport framing state of one connection.
#[derive(Clone, Copy)]
enum Mode {
    /// NDJSON lines: the pre-negotiation greeting and all of a v1
    /// session's life.
    Line {
        /// Whether any effective line has been consumed — `Hello` is
        /// only legal before this flips.
        greeted: bool,
        /// A v1 request is on the pool; line parsing pauses until its
        /// response pops from the outbox (lock-step, as the blocking
        /// loop behaved).
        busy: bool,
    },
    /// Negotiated protocol ≥ 2: length-prefixed envelope frames, many
    /// ids in flight.
    Frames,
}

/// One client connection's entire state — what used to live across a
/// reader thread's stack, a writer thread's stack, and their shared
/// outbox.
struct Conn {
    token: u64,
    stream: TcpStream,
    conn_id: u64,
    outbox: Arc<Outbox>,
    shed_name: String,
    inbuf: Vec<u8>,
    wq: WriteQueue,
    mode: Mode,
    interest: Interest,
    /// Read side is done (EOF, protocol violation, shutdown drain):
    /// flush the write queue, then close.
    closing: bool,
    in_flight: Arc<AtomicUsize>,
    /// Greeting/v1 lines the loop queued that are still in the outbox.
    /// The `svc.frame.write` fault covers v2 envelope frames only (the
    /// threaded server wrote lines outside its writer's fault point),
    /// and a `Welcome` that flips the mode to `Frames` is pumped
    /// *after* the flip — this counter is what still identifies it as
    /// a line.
    line_frames_queued: usize,
}

/// What servicing a connection decided about its future.
enum Verdict {
    /// Keep serving.
    Keep,
    /// Stop reading; deliver what is queued, then close.
    CloseAfterFlush,
    /// Tear down now (write error, injected cut, or fully flushed).
    Close,
    /// Mode switched mid-buffer (v2 negotiation); reparse the buffer.
    Rescan,
    /// `FederateHello` accepted: hand the socket to a peer thread.
    /// Boxed: the welcome dwarfs the other (payload-free) variants.
    HandOff {
        response: Box<Response>,
        version: u32,
    },
}

/// What dispatching one request produced.
enum Dispatched {
    /// Answered synchronously (response already in the outbox).
    Inline { shutdown: bool },
    /// A pool job or dedicated thread owns the response slot.
    Async,
}

/// Runs the readiness loop until shutdown completes. This is
/// `Server::run`'s core; the caller handles pool teardown and the
/// final segment saves.
pub(crate) fn run_loop(listener: TcpListener, state: &Arc<ServiceState>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Waker::new(&poller, WAKER_TOKEN)?;
    let shared = Arc::new(LoopShared {
        waker,
        ready: Mutex::new(Vec::new()),
        pushes: Mutex::new(Vec::new()),
    });
    *state
        .loop_shared
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&shared));
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
    let mut timers = TimerWheel::new();
    if let Some(interval) = state.config.collect_interval {
        timers.arm(Instant::now() + interval, TimerEvent::Collect);
    }
    let mut el = EventLoop {
        state,
        poller,
        shared,
        listener,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        timers,
        debounce: HashMap::new(),
        draining: false,
    };
    let result = el.serve();
    *state
        .loop_shared
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = None;
    result
}

struct EventLoop<'a> {
    state: &'a Arc<ServiceState>,
    poller: Poller,
    shared: Arc<LoopShared>,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    timers: TimerWheel<TimerEvent>,
    /// Debounced triggers keyed by subscription: at most one armed
    /// timer per subscription, earliest trigger wins.
    debounce: HashMap<u64, PendingPush>,
    draining: bool,
}

impl EventLoop<'_> {
    fn serve(&mut self) -> std::io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.state.shutting_down.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                return Ok(());
            }
            let timeout = self
                .timers
                .next_deadline()
                .map(|at| at.saturating_duration_since(Instant::now()));
            let n = self.poller.wait(&mut events, timeout)?; // lint:allow(blocking_in_loop) -- the loop's own poll wait: this is its idle point, not a stall
            self.state.telemetry.loop_wakeups_total.inc();
            self.state.telemetry.loop_ready_events.record(n as u64);
            for ev in events.iter().copied() {
                match ev.token {
                    LISTENER_TOKEN => {
                        if !self.draining {
                            self.accept_ready()?;
                        }
                    }
                    WAKER_TOKEN => self.shared.waker.drain(),
                    token => {
                        if ev.readable || ev.closed {
                            self.service_read(token);
                        } else if ev.writable {
                            self.service_writable(token);
                        }
                    }
                }
            }
            for token in self.shared.take_ready() {
                self.service_writable(token);
            }
            self.absorb_pushes();
            let now = Instant::now();
            while let Some((_, ev)) = self.timers.pop_expired(now) {
                self.fire_timer(ev);
            }
            self.state
                .telemetry
                .conn_registered
                .set(self.conns.len() as u64);
            let queued: usize = self.conns.values().map(|c| c.wq.queued_bytes()).sum();
            self.state.telemetry.write_queue_depth.set(queued as u64);
        }
    }

    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn admit_conn(&mut self, stream: TcpStream) {
        // Frames are a length prefix plus payload in one buffer; with
        // Nagle on, small writes can stall ~40ms behind a delayed ACK.
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let occupied = self.state.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
        let max = self.state.config.max_conns;
        let token = self.next_token;
        self.next_token += 1;
        let conn_id = self.state.next_conn_id.fetch_add(1, Ordering::Relaxed);
        // Sheds on this connection's outbox count both globally and
        // under a per-connection name, for the connection's lifetime.
        let shed_name = crate::names::outbox_shed_conn(conn_id);
        let conn_shed = self.state.telemetry.registry.counter(&shed_name);
        let outbox = Arc::new(Outbox::with_shed_counters(vec![
            Arc::clone(&self.state.telemetry.outbox_shed_total),
            conn_shed,
        ]));
        let shared = Arc::clone(&self.shared);
        outbox.set_notifier(move || shared.notify_conn(token));
        let mut conn = Conn {
            token,
            stream,
            conn_id,
            outbox,
            shed_name,
            inbuf: Vec::new(),
            wq: WriteQueue::new(),
            mode: Mode::Line {
                greeted: false,
                busy: false,
            },
            interest: Interest::READABLE,
            closing: false,
            in_flight: Arc::new(AtomicUsize::new(0)),
            line_frames_queued: 0,
        };
        if occupied > max {
            // Admission control: one clear error, then the connection is
            // flushed and dropped before it can claim loop state.
            push_line(
                &mut conn,
                &Response::error(format!(
                    "connection limit reached ({max} concurrent connections); retry later"
                )),
            );
            conn.closing = true;
            conn.outbox.close();
        }
        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, conn.interest)
            .is_err()
        {
            self.destroy(conn);
            return;
        }
        let verdict = self.pump(&mut conn);
        self.finish(token, conn, verdict);
    }

    /// Readable (or hung-up) socket: pull bytes, parse, dispatch, then
    /// pump whatever responses landed inline.
    fn service_read(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let mut verdict = self.drive_read(&mut conn);
        if matches!(verdict, Verdict::Keep) {
            verdict = self.pump(&mut conn);
        }
        self.finish(token, conn, verdict);
    }

    /// Writable socket or outbox notification: drain outbox → write
    /// queue → socket.
    fn service_writable(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let verdict = self.pump(&mut conn);
        self.finish(token, conn, verdict);
    }

    fn drive_read(&mut self, conn: &mut Conn) -> Verdict {
        for _ in 0..MAX_FILLS_PER_EVENT {
            if conn.closing || conn.wq.queued_bytes() > WRITE_HIGH_WATERMARK {
                return Verdict::Keep;
            }
            match codec::fill_buf(&mut conn.stream, &mut conn.inbuf) {
                Ok(codec::Fill::Bytes(_)) => match self.process_inbuf(conn) {
                    Verdict::Keep => {}
                    v => return v,
                },
                Ok(codec::Fill::WouldBlock) => return Verdict::Keep,
                // EOF and read errors end the session the same way the
                // threaded reader did: stop reading, flush what the
                // writer still holds, then sever.
                Ok(codec::Fill::Eof) | Err(_) => return Verdict::CloseAfterFlush,
            }
        }
        Verdict::Keep
    }

    fn process_inbuf(&mut self, conn: &mut Conn) -> Verdict {
        loop {
            let verdict = match conn.mode {
                Mode::Frames => self.process_frames(conn),
                Mode::Line { .. } => self.process_lines(conn),
            };
            match verdict {
                Verdict::Rescan => continue,
                v => return v,
            }
        }
    }

    fn process_frames(&mut self, conn: &mut Conn) -> Verdict {
        loop {
            let frame = match codec::try_extract_frame(&mut conn.inbuf, MAX_REQUEST_LINE) {
                Ok(Some(frame)) => frame,
                Ok(None) => return Verdict::Keep,
                Err(codec::DecodeError::Oversized { .. }) => {
                    conn.outbox.push_response(envelope_frame(
                        EVENT_ENVELOPE_ID,
                        Response::error(format!("request frame exceeds {MAX_REQUEST_LINE} bytes")),
                    ));
                    return Verdict::CloseAfterFlush; // cannot resync
                }
            };
            // Chaos hook: `svc.frame.read` severs the session at the
            // next frame (error/disconnect) or loses one request after
            // reading it off the wire (drop).
            let read_fault = indaas_faultinj::point(indaas_faultinj::points::SVC_FRAME_READ);
            if matches!(
                read_fault,
                indaas_faultinj::FaultAction::Error | indaas_faultinj::FaultAction::Disconnect
            ) {
                return Verdict::CloseAfterFlush;
            }
            if read_fault == indaas_faultinj::FaultAction::Drop {
                continue;
            }
            match self.handle_envelope(conn, &frame) {
                Verdict::Keep => {}
                v => return v,
            }
        }
    }

    fn handle_envelope(&mut self, conn: &mut Conn, buf: &[u8]) -> Verdict {
        let state = self.state;
        let decode_started = Instant::now();
        let envelope = std::str::from_utf8(buf)
            .map_err(|e| e.to_string())
            .and_then(|text| decode_line::<Envelope>(text).map_err(|e| e.to_string()));
        state
            .telemetry
            .envelope_decode_us
            .record(decode_started.elapsed().as_micros() as u64);
        let Envelope { id, body, trace } = match envelope {
            Ok(envelope) => envelope,
            Err(e) => {
                // v2 frames come only from machine encoders; an
                // unparseable envelope is a broken peer, not a typo —
                // answer once and drop.
                conn.outbox.push_response(envelope_frame(
                    EVENT_ENVELOPE_ID,
                    Response::error(format!("malformed envelope: {e}")),
                ));
                return Verdict::CloseAfterFlush;
            }
        };
        if id == EVENT_ENVELOPE_ID {
            conn.outbox.push_response(envelope_frame(
                EVENT_ENVELOPE_ID,
                Response::error("envelope id 0 is reserved for server pushes"),
            ));
            return Verdict::CloseAfterFlush;
        }
        state.telemetry.requests_total.inc();
        // An unparseable header is treated as absent, not fatal: trace
        // context is advisory metadata and can never poison a request.
        let ctx = trace.as_deref().and_then(TraceContext::parse_header);
        match body {
            Request::Hello { .. } => {
                conn.outbox.push_response(envelope_frame(
                    id,
                    Response::error("session version is already negotiated"),
                ));
            }
            Request::Subscribe { spec, engine } => {
                let started = Instant::now();
                match register_subscription(state, spec, &engine, &conn.outbox, conn.conn_id) {
                    Ok((subscription, spec)) => {
                        // Response first, then the initial audit: the
                        // outbox is FIFO, so `Subscribed` reaches the
                        // wire before the first `AuditEvent` can.
                        conn.outbox.push_response(envelope_frame(
                            id,
                            Response::Subscribed { subscription },
                        ));
                        schedule_push_audit(
                            state,
                            subscription,
                            spec,
                            Arc::clone(&conn.outbox),
                            Instant::now(),
                            ctx,
                        );
                    }
                    Err(message) => {
                        conn.outbox
                            .push_response(envelope_frame(id, Response::error(message)));
                    }
                }
                if let Some(c) = ctx {
                    state.telemetry.spans.record(
                        c,
                        "request:Subscribe",
                        String::new(),
                        started.elapsed().as_micros() as u64,
                    );
                }
            }
            Request::Unsubscribe { subscription } => {
                let response = match state.subs.unregister(subscription, conn.conn_id) {
                    Ok(()) => Response::Unsubscribed { subscription },
                    Err(e) => Response::error(e),
                };
                conn.outbox.push_response(envelope_frame(id, response));
            }
            Request::Shutdown => {
                conn.outbox
                    .push_response(envelope_frame(id, Response::ShuttingDown));
                // SeqCst pairs with the mutation gate in
                // `apply_mutation`; the drain begins at the top of the
                // next loop iteration, after this ack is queued.
                state.shutting_down.store(true, Ordering::SeqCst);
                return Verdict::CloseAfterFlush;
            }
            request => {
                if conn.in_flight.load(Ordering::Acquire) >= MAX_IN_FLIGHT_REQUESTS {
                    conn.outbox.push_response(envelope_frame(
                        id,
                        Response::error(format!(
                            "too many in-flight requests (max {MAX_IN_FLIGHT_REQUESTS})"
                        )),
                    ));
                    return Verdict::Keep;
                }
                conn.in_flight.fetch_add(1, Ordering::AcqRel);
                let slot = Arc::new(ResponseSlot {
                    claimed: AtomicBool::new(false),
                    outbox: Arc::clone(&conn.outbox),
                    encoding: SlotEncoding::V2 { id },
                    in_flight: Some(Arc::clone(&conn.in_flight)),
                    ctx,
                    kind: request_kind(&request),
                    started: Instant::now(),
                    telemetry: Arc::clone(&state.telemetry),
                });
                // v2 multiplexes: the shutdown flag from a request body
                // is impossible here (Shutdown was intercepted above).
                let _ = self.dispatch(request, ctx, slot);
            }
        }
        Verdict::Keep
    }

    fn process_lines(&mut self, conn: &mut Conn) -> Verdict {
        loop {
            let Mode::Line { greeted, busy } = conn.mode else {
                return Verdict::Rescan;
            };
            if busy {
                // Lock-step: the pool owns the current request; the
                // pump resumes parsing when its response pops.
                return Verdict::Keep;
            }
            let line = match codec::try_extract_line(&mut conn.inbuf, MAX_REQUEST_LINE) {
                Ok(Some(Ok(line))) => line,
                // Invalid UTF-8: the blocking reader dropped such
                // connections silently; so does the loop.
                Ok(Some(Err(_))) => return Verdict::CloseAfterFlush,
                Ok(None) => return Verdict::Keep,
                Err(codec::DecodeError::Oversized { .. }) => {
                    push_line(
                        conn,
                        &Response::error(format!("request line exceeds {MAX_REQUEST_LINE} bytes")),
                    );
                    return Verdict::CloseAfterFlush; // cannot resync mid-line
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let request = match decode_line::<Request>(line.trim()) {
                Ok(request) => request,
                Err(e) => {
                    conn.mode = Mode::Line {
                        greeted: true,
                        busy: false,
                    };
                    push_line(conn, &Response::error(format!("malformed request: {e}")));
                    continue;
                }
            };
            // A peer handshake re-tags this connection: hand the socket
            // (and any bytes already buffered behind the hello) to the
            // blocking peer loop — audits and federation share one
            // listener, exactly as before.
            if let Request::FederateHello {
                version,
                node,
                trace,
            } = request
            {
                let response = federate_hello(self.state, version, &node, trace == Some(true));
                let negotiated = match &response {
                    Response::FederateWelcome { version, .. } => Some(*version),
                    _ => None,
                };
                return match negotiated {
                    Some(version) => Verdict::HandOff {
                        response: Box::new(response),
                        version,
                    },
                    None => {
                        push_line(conn, &response);
                        Verdict::CloseAfterFlush
                    }
                };
            }
            // A protocol hello, valid only as the first line, negotiates
            // the session version: ≥ 2 switches to multiplexed binary
            // frames, 1 stays right here in the lock-step line mode.
            if let Request::Hello { version } = request {
                if greeted {
                    push_line(
                        conn,
                        &Response::error("Hello must be the first line of a connection"),
                    );
                    continue;
                }
                conn.mode = Mode::Line {
                    greeted: true,
                    busy: false,
                };
                if version < MIN_PROTOCOL_VERSION {
                    push_line(
                        conn,
                        &Response::error(format!(
                            "protocol version {version} below supported minimum \
                             {MIN_PROTOCOL_VERSION}"
                        )),
                    );
                    return Verdict::CloseAfterFlush;
                }
                let negotiated = version.min(PROTOCOL_VERSION);
                push_line(
                    conn,
                    &Response::Welcome {
                        version: negotiated,
                    },
                );
                slog::debug(
                    "server",
                    &format!(
                        "session negotiated protocol v{negotiated} (client offered v{version})"
                    ),
                );
                if negotiated >= 2 {
                    conn.mode = Mode::Frames;
                    return Verdict::Rescan; // pipelined frames may follow
                }
                continue;
            }
            conn.mode = Mode::Line {
                greeted: true,
                busy: false,
            };
            self.state.telemetry.requests_total.inc();
            // v1 lines carry no envelope, hence no trace context.
            let slot = Arc::new(ResponseSlot {
                claimed: AtomicBool::new(false),
                outbox: Arc::clone(&conn.outbox),
                encoding: SlotEncoding::V1,
                in_flight: None,
                ctx: None,
                kind: request_kind(&request),
                started: Instant::now(),
                telemetry: Arc::clone(&self.state.telemetry),
            });
            match self.dispatch(request, None, slot) {
                Dispatched::Inline { shutdown: true } => {
                    self.state.shutting_down.store(true, Ordering::SeqCst);
                    return Verdict::CloseAfterFlush;
                }
                Dispatched::Inline { shutdown: false } => {}
                Dispatched::Async => {
                    conn.mode = Mode::Line {
                        greeted: true,
                        busy: true,
                    };
                }
            }
        }
    }

    fn dispatch(
        &mut self,
        request: Request,
        ctx: Option<TraceContext>,
        slot: Arc<ResponseSlot>,
    ) -> Dispatched {
        match admit_request(self.state, request, ctx, Arc::clone(&slot)) {
            AdmitOutcome::Done(response, shutdown) => {
                slot.fulfill(response);
                Dispatched::Inline { shutdown }
            }
            AdmitOutcome::Pooled { token, deadline } => {
                // The job polls its token and reports cancellation
                // itself; this guard only answers for a wedged worker.
                self.timers.arm(
                    Instant::now() + deadline + Duration::from_secs(2),
                    TimerEvent::Guard { slot, token },
                );
                Dispatched::Async
            }
            AdmitOutcome::Threaded => Dispatched::Async,
        }
    }

    /// Moves outbox frames into the write queue (one `svc.frame.write`
    /// fault check per frame, as the writer thread did), writes what
    /// the socket will take, and resumes a lock-step v1 parse freed by
    /// a response.
    fn pump(&mut self, conn: &mut Conn) -> Verdict {
        loop {
            let mut resumed = false;
            while let Some(frame) = conn.outbox.try_pop() {
                if let Mode::Line {
                    greeted,
                    busy: true,
                } = conn.mode
                {
                    conn.mode = Mode::Line {
                        greeted,
                        busy: false,
                    };
                    resumed = true;
                }
                // Chaos hook: `svc.frame.write` loses one outgoing frame
                // or severs the connection under the drain. v2 envelope
                // frames only — greeting and v1 lines were written
                // directly by the threaded server, outside its writer's
                // fault point.
                if conn.line_frames_queued > 0 {
                    conn.line_frames_queued -= 1;
                } else if matches!(conn.mode, Mode::Frames) {
                    let fault = indaas_faultinj::point(indaas_faultinj::points::SVC_FRAME_WRITE);
                    if fault == indaas_faultinj::FaultAction::Drop {
                        continue;
                    }
                    if fault != indaas_faultinj::FaultAction::Pass {
                        return Verdict::Close;
                    }
                }
                conn.wq.push(frame);
            }
            if !conn.wq.is_empty() {
                let write_span = Span::start(Arc::clone(&self.state.telemetry.write_us));
                let progress = conn.wq.write_to(&mut conn.stream);
                drop(write_span);
                if progress.is_err() {
                    return Verdict::Close;
                }
            }
            if conn.closing && conn.wq.is_empty() {
                // Everything queued reached the wire (the outbox is
                // closed on every path that sets `closing`, so nothing
                // more can arrive).
                return Verdict::Close;
            }
            if resumed && !conn.closing && !conn.inbuf.is_empty() {
                match self.process_inbuf(conn) {
                    Verdict::Keep => continue, // may have queued responses
                    v => return v,
                }
            }
            return Verdict::Keep;
        }
    }

    fn finish(&mut self, token: u64, mut conn: Conn, verdict: Verdict) {
        match verdict {
            Verdict::Keep => {
                self.update_interest(&mut conn);
                self.conns.insert(token, conn);
            }
            Verdict::CloseAfterFlush => {
                // Teardown, in the threaded server's order: this
                // connection's subscriptions die with it, the outbox
                // closes (in-flight jobs' frames drop silently), and
                // already-queued frames still reach the wire.
                self.state.subs.drop_conn(conn.conn_id);
                conn.outbox.close();
                conn.closing = true;
                match self.pump(&mut conn) {
                    Verdict::Keep => {
                        self.update_interest(&mut conn);
                        self.conns.insert(token, conn);
                    }
                    _ => self.destroy(conn),
                }
            }
            Verdict::Close => {
                self.state.subs.drop_conn(conn.conn_id);
                conn.outbox.close();
                self.destroy(conn);
            }
            Verdict::HandOff { response, version } => self.hand_off(conn, *response, version),
            Verdict::Rescan => unreachable!("Rescan never escapes process_inbuf"), // lint:allow(panic_path) -- pump re-runs process_inbuf on Rescan; it never reaches finish
        }
    }

    fn update_interest(&mut self, conn: &mut Conn) {
        let want = Interest {
            // Backpressure: past the watermark the loop stops reading
            // (deregistering interest, not just skipping reads —
            // level-triggered epoll would otherwise spin).
            readable: !conn.closing && conn.wq.queued_bytes() <= WRITE_HIGH_WATERMARK,
            writable: !conn.wq.is_empty(),
        };
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn destroy(&mut self, conn: Conn) {
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        // Cut the socket so a peer blocked on reads (a watcher awaiting
        // pushes) sees EOF promptly instead of hanging.
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.state
            .telemetry
            .registry
            .remove_counter(&conn.shed_name);
        self.state.active_conns.fetch_sub(1, Ordering::SeqCst);
    }

    /// Re-tags the connection as a federation peer session: deregister
    /// from the loop, flip back to blocking I/O, and run the peer loop
    /// on a dedicated thread, seeded with whatever bytes the loop had
    /// already buffered past the hello.
    fn hand_off(&mut self, conn: Conn, response: Response, version: u32) {
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.state
            .telemetry
            .registry
            .remove_counter(&conn.shed_name);
        conn.outbox.close();
        let state = Arc::clone(self.state);
        let Conn {
            stream,
            inbuf,
            mut wq,
            ..
        } = conn;
        let spawned = std::thread::Builder::new()
            .name("indaas-peer".to_string())
            .spawn(move || {
                // The session still counts against max_conns until the
                // peer loop exits, however it exits.
                let _conn_guard = ConnGuard(&state.active_conns);
                if stream.set_nonblocking(false).is_err() {
                    return;
                }
                let Ok(mut writer) = stream.try_clone() else {
                    return;
                };
                // Flush anything the loop still had queued, then the
                // welcome — blocking writes from here on.
                if wq.write_to(&mut writer).is_err() {
                    return;
                }
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
                let mut reader = BufReader::new(std::io::Cursor::new(inbuf).chain(stream));
                peer_session_loop(&mut reader, &mut writer, &state, version);
            });
        if spawned.is_err() {
            self.state.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn absorb_pushes(&mut self) {
        let pending = self.shared.take_pushes();
        if pending.is_empty() {
            return;
        }
        let delay = Duration::from_millis(self.state.config.push_debounce_ms);
        for push in pending {
            match self.debounce.entry(push.subscription) {
                // Coalesce: an armed subscription keeps its earliest
                // trigger (whose origin the push-latency clock runs
                // from); the burst collapses into one audit.
                std::collections::hash_map::Entry::Occupied(_) => {}
                std::collections::hash_map::Entry::Vacant(slot) => {
                    self.timers.arm(
                        Instant::now() + delay,
                        TimerEvent::Debounce {
                            subscription: push.subscription,
                        },
                    );
                    slot.insert(push);
                }
            }
        }
    }

    fn fire_timer(&mut self, ev: TimerEvent) {
        match ev {
            TimerEvent::Collect => {
                let Some(interval) = self.state.config.collect_interval else {
                    return;
                };
                if self.draining {
                    return;
                }
                // The tick runs on the pool, not the loop: collectors
                // may shell out or block on slow probes.
                let st = Arc::clone(self.state);
                if let Err(e) = self.state.scheduler.submit(None, move |_| {
                    run_collectors(&st);
                    save_dirty(&st);
                }) {
                    slog::warn(
                        "server",
                        &format!("collector tick could not be scheduled: {e}"),
                    );
                }
                self.timers
                    .arm(Instant::now() + interval, TimerEvent::Collect);
            }
            TimerEvent::Guard { slot, token } => {
                if slot.fulfill(Response::error("audit timed out")) {
                    token.cancel();
                }
            }
            TimerEvent::Debounce { subscription } => {
                if let Some(push) = self.debounce.remove(&subscription) {
                    schedule_push_audit(
                        self.state,
                        push.subscription,
                        push.spec,
                        push.outbox,
                        push.origin,
                        push.ctx,
                    );
                }
            }
            TimerEvent::ShutdownLinger => {
                let stragglers: Vec<u64> = self.conns.keys().copied().collect();
                for token in stragglers {
                    if let Some(conn) = self.conns.remove(&token) {
                        self.destroy(conn);
                    }
                }
            }
        }
    }

    /// Enters the shutdown drain: stop accepting, broadcast the
    /// farewell push to every subscribed connection (so a watcher can
    /// tell a clean drain from a dropped connection), close every
    /// outbox, and flush. Sockets that will not take their final bytes
    /// get [`SHUTDOWN_LINGER`], then force-close.
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.poller.delete(self.listener.as_raw_fd());
        let farewell = envelope_frame(EVENT_ENVELOPE_ID, Response::ShuttingDown);
        for outbox in self.state.subs.subscriber_outboxes() {
            outbox.push_response(farewell.clone());
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            self.state.subs.drop_conn(conn.conn_id);
            conn.outbox.close();
            conn.closing = true;
            match self.pump(&mut conn) {
                Verdict::Keep => {
                    self.update_interest(&mut conn);
                    self.conns.insert(token, conn);
                }
                _ => self.destroy(conn),
            }
        }
        self.timers
            .arm(Instant::now() + SHUTDOWN_LINGER, TimerEvent::ShutdownLinger);
    }
}

/// Enqueues one v1/greeting response line on the connection's outbox,
/// counting it so the pump exempts it from the v2 write fault point.
fn push_line(conn: &mut Conn, response: &Response) {
    if conn
        .outbox
        .push_response(codec::line_bytes(&encode_line(response)))
    {
        conn.line_frames_queued += 1;
    }
}
