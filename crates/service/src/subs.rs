//! Server-push plumbing: per-connection outboxes and the subscription
//! registry that turns ingests into [`crate::proto::Response::AuditEvent`]
//! pushes.
//!
//! Every protocol-v2 connection owns one [`Outbox`] — a bounded frame
//! queue drained by the connection's dedicated writer thread. Request
//! handlers and push jobs enqueue pre-serialized frames and never touch
//! the socket, so a slow or stalled consumer can never block an ingest,
//! an audit worker, or another connection. Responses are always
//! delivered (their count is bounded by the per-connection in-flight
//! cap); pushed *events* are best-effort: past [`MAX_OUTBOX_EVENTS`]
//! buffered events the oldest event is shed to make room for the
//! newest, because a dashboard that fell behind wants the freshest
//! result, not a replay of every intermediate one.
//!
//! The [`SubscriptionRegistry`] pins each subscription to the
//! `(shard, epoch)` pairs its spec's hosts route to — the same pins the
//! audit cache keys on. The single write path
//! (`server::apply_mutation`) asks it which subscriptions an ingest's
//! epoch vector invalidates; each affected entry has its pins advanced
//! immediately (so concurrent ingests trigger at most one re-audit per
//! batch wave) and the re-audit itself runs later, on the shared worker
//! pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use indaas_core::AuditSpec;
use indaas_deps::EpochVector;
use indaas_obs::Counter;

use crate::cache::EpochPins;

/// Most pushed-event frames one connection may have buffered; beyond
/// it the oldest buffered event is shed (responses are never shed).
pub const MAX_OUTBOX_EVENTS: usize = 64;

/// Most live subscriptions one daemon tracks across all connections —
/// each costs a spec clone and a re-audit per relevant ingest, so the
/// total is bounded like every other peer-controlled resource.
pub const MAX_SUBSCRIPTIONS: usize = 1024;

struct OutMsg {
    /// True for a pushed event (sheddable), false for a response.
    event: bool,
    frame: Vec<u8>,
}

struct OutboxInner {
    queue: VecDeque<OutMsg>,
    events: usize,
    shed: u64,
    closed: bool,
}

/// A bounded, closeable frame queue. Historically each connection's
/// dedicated writer thread blocked in [`Outbox::pop`]; under the
/// readiness loop the loop drains it non-blockingly with
/// [`Outbox::try_pop`] after the [notifier](Outbox::set_notifier)
/// wakes it.
pub struct Outbox {
    inner: Mutex<OutboxInner>,
    ready: Condvar,
    /// External counters bumped once per shed event, on top of the
    /// outbox's own total — the daemon passes its registry-wide
    /// `outbox_shed_total` plus a per-connection counter, so a slow
    /// subscriber's lost pushes are visible without walking every live
    /// connection.
    shed_counters: Vec<Arc<Counter>>,
    /// Called (outside the queue lock) after every state change a
    /// drainer cares about: a successful enqueue or a close. The
    /// readiness loop installs a hook that flags the connection and
    /// kicks its eventfd waker.
    notifier: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl Default for Outbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Outbox {
    /// An open, empty outbox.
    pub fn new() -> Self {
        Self::with_shed_counters(Vec::new())
    }

    /// An open, empty outbox that also bumps `shed_counters` (e.g. the
    /// daemon-wide and per-connection shed counters) every time it
    /// sheds an event.
    pub fn with_shed_counters(shed_counters: Vec<Arc<Counter>>) -> Self {
        Outbox {
            inner: Mutex::new(OutboxInner {
                queue: VecDeque::new(),
                events: 0,
                shed: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            shed_counters,
            notifier: Mutex::new(None),
        }
    }

    /// Installs the wake hook invoked after every successful enqueue
    /// and on close. At most one notifier is live; installing replaces
    /// the previous one.
    pub fn set_notifier(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.notifier.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(hook));
    }

    fn notify(&self) {
        let hook = self
            .notifier
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(Arc::clone);
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Enqueues a response frame. Responses are never shed — their
    /// number in flight is bounded by the connection's in-flight
    /// request cap. Returns false if the outbox is closed (the
    /// connection died; the frame is dropped).
    pub fn push_response(&self, frame: Vec<u8>) -> bool {
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.closed {
                return false;
            }
            inner.queue.push_back(OutMsg {
                event: false,
                frame,
            });
            self.ready.notify_all();
        }
        self.notify();
        true
    }

    /// Enqueues a pushed-event frame, shedding the oldest buffered
    /// event first when [`MAX_OUTBOX_EVENTS`] are already waiting — the
    /// slow consumer loses intermediate results, never the freshest,
    /// and the producer never blocks. Returns false if the outbox is
    /// closed.
    pub fn push_event(&self, frame: Vec<u8>) -> bool {
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.closed {
                return false;
            }
            if inner.events >= MAX_OUTBOX_EVENTS {
                if let Some(pos) = inner.queue.iter().position(|m| m.event) {
                    inner.queue.remove(pos);
                    inner.events -= 1;
                    inner.shed += 1;
                    for c in &self.shed_counters {
                        c.inc();
                    }
                }
            }
            inner.queue.push_back(OutMsg { event: true, frame });
            inner.events += 1;
            self.ready.notify_all();
        }
        self.notify();
        true
    }

    /// Blocks until a frame is available or the outbox is closed *and*
    /// drained; `None` means the writer should exit.
    pub fn pop(&self) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                if msg.event {
                    inner.events -= 1;
                }
                return Some(msg.frame);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops the next queued frame without blocking; `None` means the
    /// queue is (currently) empty. The readiness loop's drain path —
    /// it never parks a thread on the condvar.
    pub fn try_pop(&self) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let msg = inner.queue.pop_front()?;
        if msg.event {
            inner.events -= 1;
        }
        Some(msg.frame)
    }

    /// True once [`Outbox::close`] ran. Queued frames may still remain.
    pub fn is_closed(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }

    /// Closes the outbox: producers start dropping frames, and the
    /// drainer exits once the already-queued frames are written.
    pub fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
        self.notify();
    }

    /// Waits until the queue is empty (everything handed to the writer),
    /// the outbox closes, or `timeout` elapses. Used by the shutdown
    /// path so the final `ShuttingDown` response reaches the wire
    /// before the process exits. Returns true if the queue drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if inner.queue.is_empty() {
                return true;
            }
            if inner.closed {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (i, _) = self
                .ready
                .wait_timeout(inner, (deadline - now).min(Duration::from_millis(20)))
                .unwrap_or_else(PoisonError::into_inner);
            inner = i;
        }
    }

    /// Events shed so far (slow-consumer back-pressure made visible).
    pub fn shed(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shed
    }
}

struct SubEntry {
    spec: AuditSpec,
    pins: EpochPins,
    outbox: Arc<Outbox>,
    conn: u64,
}

/// A subscription an ingest just invalidated: what the push job needs
/// to re-run the audit and deliver the event.
pub struct Triggered {
    /// The subscription id the pushed event will carry.
    pub subscription: u64,
    /// The spec to re-audit.
    pub spec: AuditSpec,
    /// Where the event goes.
    pub outbox: Arc<Outbox>,
}

/// All live subscriptions across all connections, keyed by id.
#[derive(Default)]
pub struct SubscriptionRegistry {
    inner: Mutex<HashMap<u64, SubEntry>>,
    next_id: AtomicU64,
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SubscriptionRegistry {
            inner: Mutex::new(HashMap::new()),
            // Subscription ids start at 1; 0 would shadow the reserved
            // push envelope id in log lines and confuse nobody usefully.
            next_id: AtomicU64::new(1),
        }
    }

    /// Registers a subscription owned by connection `conn`, pinned to
    /// `pins`. Returns the new subscription id.
    ///
    /// # Errors
    ///
    /// Rejects registration past [`MAX_SUBSCRIPTIONS`].
    pub fn register(
        &self,
        spec: AuditSpec,
        pins: EpochPins,
        outbox: Arc<Outbox>,
        conn: u64,
    ) -> Result<u64, String> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.len() >= MAX_SUBSCRIPTIONS {
            return Err(format!(
                "subscription limit reached ({MAX_SUBSCRIPTIONS} live subscriptions)"
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        inner.insert(
            id,
            SubEntry {
                spec,
                pins,
                outbox,
                conn,
            },
        );
        Ok(id)
    }

    /// Cancels subscription `id` if connection `conn` owns it.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown ids and cross-connection
    /// cancellation attempts.
    pub fn unregister(&self, id: u64, conn: u64) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.get(&id) {
            None => Err(format!("no such subscription: {id}")),
            Some(e) if e.conn != conn => {
                Err(format!("subscription {id} belongs to another connection"))
            }
            Some(_) => {
                inner.remove(&id);
                Ok(())
            }
        }
    }

    /// Drops every subscription a closing connection holds.
    pub fn drop_conn(&self, conn: u64) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|_, e| e.conn != conn);
    }

    /// Returns the subscriptions whose pinned shards moved past their
    /// recorded epochs under `current`, advancing each returned entry's
    /// pins to `current` in the same critical section — so a burst of
    /// ingests triggers each subscription once per wave, not once per
    /// batch it already caught up to.
    pub fn affected(&self, current: &EpochVector) -> Vec<Triggered> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for (&id, entry) in inner.iter_mut() {
            let moved = entry
                .pins
                .iter()
                .any(|&(shard, epoch)| current.get(shard as usize) != epoch);
            if !moved {
                continue;
            }
            for (shard, epoch) in entry.pins.iter_mut() {
                *epoch = current.get(*shard as usize);
            }
            out.push(Triggered {
                subscription: id,
                spec: entry.spec.clone(),
                outbox: Arc::clone(&entry.outbox),
            });
        }
        out
    }

    /// One outbox per distinct connection holding live subscriptions.
    /// The shutdown path broadcasts its `ShuttingDown` push through
    /// these, so a watcher can tell a clean server drain from a dropped
    /// connection.
    pub fn subscriber_outboxes(&self) -> Vec<Arc<Outbox>> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for entry in inner.values() {
            if seen.insert(entry.conn) {
                out.push(Arc::clone(&entry.outbox));
            }
        }
        out
    }

    /// Live subscriptions.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no subscriptions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indaas_core::CandidateDeployment;

    fn spec() -> AuditSpec {
        AuditSpec::sia_size_based(vec![CandidateDeployment::replicated("pair", ["S1", "S2"])])
    }

    #[test]
    fn outbox_delivers_in_order_and_closes() {
        let ob = Outbox::new();
        assert!(ob.push_response(b"a".to_vec()));
        assert!(ob.push_event(b"b".to_vec()));
        assert_eq!(ob.pop().unwrap(), b"a");
        assert_eq!(ob.pop().unwrap(), b"b");
        ob.close();
        assert!(ob.pop().is_none());
        assert!(!ob.push_response(b"late".to_vec()));
    }

    #[test]
    fn events_shed_oldest_but_responses_never_do() {
        let ob = Outbox::new();
        assert!(ob.push_response(b"resp".to_vec()));
        for i in 0..(MAX_OUTBOX_EVENTS + 10) {
            assert!(ob.push_event(format!("ev{i}").into_bytes()));
        }
        assert_eq!(ob.shed(), 10);
        // The response survives at the front; the oldest 10 events are
        // gone and the newest is still last.
        assert_eq!(ob.pop().unwrap(), b"resp");
        assert_eq!(ob.pop().unwrap(), b"ev10");
        let mut last = Vec::new();
        for _ in 1..MAX_OUTBOX_EVENTS {
            last = ob.pop().unwrap();
        }
        assert_eq!(last, format!("ev{}", MAX_OUTBOX_EVENTS + 9).into_bytes());
    }

    #[test]
    fn try_pop_and_notifier_drive_a_poll_drainer() {
        let ob = Outbox::new();
        let hits = Arc::new(Counter::new());
        let h = Arc::clone(&hits);
        ob.set_notifier(move || h.inc());
        assert!(ob.try_pop().is_none());
        ob.push_response(b"a".to_vec());
        ob.push_event(b"b".to_vec());
        assert_eq!(hits.get(), 2, "one wake per enqueue");
        assert_eq!(ob.try_pop().unwrap(), b"a");
        assert_eq!(ob.try_pop().unwrap(), b"b");
        assert!(ob.try_pop().is_none());
        ob.close();
        assert!(ob.is_closed());
        assert_eq!(hits.get(), 3, "close wakes the drainer too");
        assert!(!ob.push_response(b"late".to_vec()));
        assert_eq!(hits.get(), 3, "rejected frames do not wake");
    }

    #[test]
    fn shed_counters_track_lost_events() {
        let global = Arc::new(Counter::new());
        let per_conn = Arc::new(Counter::new());
        let ob = Outbox::with_shed_counters(vec![Arc::clone(&global), Arc::clone(&per_conn)]);
        for i in 0..(MAX_OUTBOX_EVENTS + 3) {
            assert!(ob.push_event(format!("ev{i}").into_bytes()));
        }
        assert_eq!(ob.shed(), 3);
        assert_eq!(global.get(), 3);
        assert_eq!(per_conn.get(), 3);
    }

    #[test]
    fn drain_waits_for_the_writer() {
        let ob = Arc::new(Outbox::new());
        ob.push_response(b"x".to_vec());
        assert!(!ob.drain(Duration::from_millis(30)), "nobody popping");
        let popper = Arc::clone(&ob);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            popper.pop()
        });
        assert!(ob.drain(Duration::from_secs(5)));
        assert_eq!(handle.join().unwrap().unwrap(), b"x");
    }

    #[test]
    fn registry_triggers_once_per_epoch_wave() {
        let reg = SubscriptionRegistry::new();
        let ob = Arc::new(Outbox::new());
        let id = reg
            .register(spec(), vec![(0, 1), (2, 4)], Arc::clone(&ob), 7)
            .unwrap();
        // Pinned shards unchanged: nothing triggers.
        assert!(reg.affected(&EpochVector::from(vec![1, 9, 4])).is_empty());
        // Shard 2 moves: triggered once, pins advance...
        let hit = reg.affected(&EpochVector::from(vec![1, 9, 5]));
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].subscription, id);
        // ...so the same vector does not trigger again.
        assert!(reg.affected(&EpochVector::from(vec![1, 9, 5])).is_empty());
    }

    #[test]
    fn unregister_enforces_ownership_and_drop_conn_sweeps() {
        let reg = SubscriptionRegistry::new();
        let ob = Arc::new(Outbox::new());
        let a = reg
            .register(spec(), vec![(0, 0)], Arc::clone(&ob), 1)
            .unwrap();
        let b = reg
            .register(spec(), vec![(0, 0)], Arc::clone(&ob), 2)
            .unwrap();
        assert!(reg.unregister(a, 99).unwrap_err().contains("another"));
        assert!(reg.unregister(a, 1).is_ok());
        assert!(reg.unregister(a, 1).unwrap_err().contains("no such"));
        reg.drop_conn(2);
        assert!(reg.unregister(b, 2).unwrap_err().contains("no such"));
        assert!(reg.is_empty());
    }
}
