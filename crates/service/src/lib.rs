//! INDaaS as a *service*: the continuous auditing daemon.
//!
//! The paper positions INDaaS as a service clouds query before deploying
//! redundancy; the one-shot CLI rebuilds the full fault graph from
//! scratch on every invocation. This crate turns the reproduction into a
//! long-running daemon:
//!
//! * **incremental sharded ingestion, no global lock** — Table-1
//!   records stream into a host-sharded [`indaas_deps::ShardedDepDb`];
//!   each effective batch bumps the global epoch and the epochs of
//!   exactly the shards it changed, re-cloning only those shards'
//!   copy-on-write snapshots (ingest cost is proportional to what
//!   changed, not to database size); batches lock only the shards they
//!   touch, snapshots are wait-free per-shard `Arc` loads, and
//!   duplicates are absorbed silently;
//! * **segmented persistence** — with [`ServeConfig::db_dir`] set, the
//!   store loads one Table-1 segment file per shard in parallel at
//!   boot (a legacy monolithic file migrates transparently) and saves
//!   dirty shards crash-safely (temp file + rename) on collector ticks
//!   and at shutdown;
//! * **concurrent scheduling** — SIA and PIA audit jobs run on a fixed
//!   worker pool behind a bounded queue with per-job deadlines
//!   ([`scheduler`]), enforced through the cancellable audit entry
//!   points in `indaas-core`/`indaas-sia`/`indaas-pia`;
//! * **content-hash caching** — results are cached by a hash of
//!   `(epoch pins of the shards the spec reads, audit spec)`
//!   ([`cache`]), so repeated or overlapping queries skip BDD
//!   compilation and sampling entirely, an ingest invalidates exactly
//!   the entries pinned to the shards it touched, and audits over
//!   untouched shards stay cached across unrelated ingests;
//! * **a multiplexed, binary-framed wire protocol** ([`proto`]) — a v2
//!   session pipelines many in-flight requests as correlated envelopes
//!   over length-prefixed binary frames, while v1 peers (plain
//!   line-delimited JSON, lock-step) keep working through the hello
//!   downgrade path — plus the pipelining [`Client`] session used by
//!   the `indaas` CLI and the end-to-end tests;
//! * **server-push audit subscriptions** ([`subs`]) — `Subscribe` pins
//!   a spec to the `(shard, epoch)` pairs its hosts route to; when an
//!   ingest bumps a pinned shard the daemon re-runs the audit through
//!   the normal scheduler and cache and pushes the fresh result to
//!   every affected subscriber over its bounded per-connection outbox
//!   (slow consumers shed their oldest events, never block ingest) —
//!   `indaas watch` is the CLI surface;
//! * **flight-recorder observability** ([`telemetry`]) — every stage of
//!   the pipeline records into a lock-cheap metrics registry (counters,
//!   gauges, log₂ latency histograms) and a bounded ring of recent
//!   request/audit traces; the v2 `Metrics` request returns the full
//!   snapshot, and `indaas metrics [--prom]` / `indaas top` are the CLI
//!   surfaces.
//!
//! # Example
//!
//! ```
//! use indaas_core::{AuditSpec, CandidateDeployment};
//! use indaas_service::{Client, ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr();
//! let daemon = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! client
//!     .ingest(
//!         r#"
//!         <src="S1" dst="Internet" route="tor1,core1"/>
//!         <src="S2" dst="Internet" route="tor1,core2"/>
//!         <src="S3" dst="Internet" route="tor2,core2"/>
//!     "#,
//!     )
//!     .unwrap();
//! let spec = AuditSpec::sia_size_based(vec![
//!     CandidateDeployment::replicated("S1+S2", ["S1", "S2"]),
//!     CandidateDeployment::replicated("S1+S3", ["S1", "S3"]),
//! ]);
//! let first = client.audit_sia(&spec, None).unwrap();
//! assert!(!first.cached);
//! let second = client.audit_sia(&spec, None).unwrap();
//! assert!(second.cached, "same epoch + same spec = cache hit");
//! assert_eq!(second.report.best().unwrap().name, "S1+S3");
//!
//! client.shutdown().unwrap();
//! daemon.join().unwrap().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod codec;
pub mod names;
pub mod netloop;
pub mod proto;
pub mod scheduler;
pub mod server;
pub mod subs;
pub mod telemetry;

pub use cache::{job_key, AuditCache, EpochPins};
pub use client::{
    AuditEvent, Client, ClientError, IngestAnswer, MetricsAnswer, PendingResponse, PiaAnswer,
    SiaAnswer, StatusAnswer, Subscription, SubscriptionEnd, V1Client,
};
pub use proto::{
    Envelope, MetricHisto, Request, Response, ResponseEnvelope, SpanEntry, TraceEntry,
};
pub use scheduler::{SchedMetrics, Scheduler, SubmitError};
pub use server::{ServeConfig, Server, ServerHandle};
pub use subs::{Outbox, SubscriptionRegistry};
pub use telemetry::Telemetry;
