//! The pipelining protocol-v2 client session (plus the legacy
//! lock-step [`V1Client`]).
//!
//! [`Client::connect`] performs the `Hello`/`Welcome` negotiation and
//! then speaks length-prefixed binary frames carrying correlated
//! envelopes. A background reader thread matches every response frame
//! to its request id, so a session can keep many requests in flight —
//! [`Client::begin`] returns a [`PendingResponse`] immediately and
//! [`PendingResponse::wait`] blocks only that caller — and routes
//! server-push [`AuditEvent`] frames to the [`Subscription`] they
//! belong to. The one-shot [`Client::request`] and the typed helpers
//! (`ping`/`ingest`/`audit_sia`/`status`/...) keep their familiar
//! blocking shape on top.
//!
//! [`V1Client`] is the old protocol: plain line-delimited JSON, one
//! request/response pair at a time, no hello. The daemon serves both
//! forever — v1 is the downgrade path old tooling rides — and the
//! protocol-compat e2e suite drives a `V1Client` against the v2 daemon
//! to prove it.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use indaas_core::AuditSpec;
use indaas_obs::TraceContext;
use indaas_pia::PiaRanking;
use indaas_sia::AuditReport;

use crate::proto::{
    decode_line, encode_line, read_bounded_line, read_frame, write_frame, Envelope, FrameRead,
    LineRead, MetricHisto, Request, Response, ResponseEnvelope, SpanEntry, TraceEntry,
    EVENT_ENVELOPE_ID, PROTOCOL_VERSION,
};

/// Largest accepted response line/frame (reports scale with candidates
/// and `top_n`, but not unboundedly; this caps client memory against a
/// misbehaving server).
const MAX_RESPONSE_LINE: u64 = 256 * 1024 * 1024;

/// Largest accepted `Welcome` line — the handshake answer is tiny.
const MAX_WELCOME_LINE: u64 = 64 * 1024;

/// Most events buffered for a subscription the reader has heard about
/// before `subscribe()` registered its local channel (the initial push
/// can race the `Subscribed` response's handoff).
const MAX_ORPHAN_EVENTS: usize = 64;

/// Most distinct subscription ids the orphan stash will hold at once —
/// only ids mid-`subscribe()` legitimately live here, so a handful is
/// plenty and the cap keeps a misbehaving server from growing the map.
const MAX_ORPHAN_SUBS: usize = 16;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble.
    Io(std::io::Error),
    /// The server sent something unparseable or out of protocol.
    Protocol(String),
    /// The server answered with `Error { message }`.
    Remote(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A typed SIA answer.
#[derive(Clone, Debug)]
pub struct SiaAnswer {
    /// Epoch the audit ran against.
    pub epoch: u64,
    /// Whether the daemon served it from cache.
    pub cached: bool,
    /// Server-side production time in microseconds.
    pub elapsed_us: u64,
    /// The report.
    pub report: AuditReport,
}

/// A typed PIA answer.
#[derive(Clone, Debug)]
pub struct PiaAnswer {
    /// Epoch stamped on the answer.
    pub epoch: u64,
    /// Whether the daemon served it from cache.
    pub cached: bool,
    /// Server-side production time in microseconds.
    pub elapsed_us: u64,
    /// Candidate deployments, most independent first.
    pub rankings: Vec<PiaRanking>,
}

/// An ingest/retract acknowledgement.
#[derive(Clone, Copy, Debug)]
pub struct IngestAnswer {
    /// Records that changed the database.
    pub changed: usize,
    /// Duplicates/absent records ignored.
    pub ignored: usize,
    /// Epoch after the batch.
    pub epoch: u64,
}

/// A typed `Status` answer — every counter the daemon reports.
#[derive(Clone, Debug)]
pub struct StatusAnswer {
    /// Current global database epoch.
    pub epoch: u64,
    /// Distinct dependency records stored (all shards).
    pub records: usize,
    /// Hosts with at least one record.
    pub hosts: usize,
    /// Per-shard epochs, indexed by shard.
    pub shard_epochs: Vec<u64>,
    /// Distinct records per shard.
    pub shard_records: Vec<usize>,
    /// Effective write batches applied per shard since startup.
    pub shard_writes: Vec<u64>,
    /// Writer lock-contention events, summed over all shards.
    pub lock_waits: u64,
    /// Audit jobs queued (admitted, not yet running).
    pub jobs_queued: usize,
    /// Audit jobs currently executing.
    pub jobs_running: usize,
    /// Live audit-result cache entries.
    pub cache_entries: usize,
    /// Cache hits since startup.
    pub cache_hits: u64,
    /// Cache misses since startup.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 before the first
    /// lookup.
    pub hit_ratio: f64,
    /// Live audit subscriptions across all connections.
    pub subscriptions: usize,
    /// Pushed `AuditEvent` frames enqueued since startup.
    pub pushed_events: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Seconds since the daemon started.
    pub uptime_secs: u64,
    /// SIA audits executed since startup (cache hits excluded).
    pub sia_audits: u64,
    /// PIA audits executed since startup (cache hits excluded).
    pub pia_audits: u64,
    /// Pushed events shed because a subscriber's outbox was full.
    pub dropped_events: u64,
}

/// A typed `Metrics` answer: the registry snapshot plus recent traces.
#[derive(Clone, Debug)]
pub struct MetricsAnswer {
    /// Seconds since the daemon started.
    pub uptime_secs: u64,
    /// `(name, value)` monotonic counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` instantaneous gauges, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Latency histograms, name-sorted.
    pub histos: Vec<MetricHisto>,
    /// Recent flight-recorder traces, newest first.
    pub traces: Vec<TraceEntry>,
    /// Threshold at/above which a trace was flagged `slow`, in µs.
    pub slow_threshold_us: u64,
}

impl MetricsAnswer {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histo(&self, name: &str) -> Option<&MetricHisto> {
        self.histos.iter().find(|h| h.name == name)
    }
}

/// A pushed audit result, as delivered to a [`Subscription`].
#[derive(Clone, Debug)]
pub struct AuditEvent {
    /// The subscription this event belongs to.
    pub subscription: u64,
    /// Global database epoch the audit ran against.
    pub epoch: u64,
    /// Whether the daemon served it from the audit-result cache.
    pub cached: bool,
    /// Server-side production time in microseconds.
    pub elapsed_us: u64,
    /// Hex trace id of the request that triggered this push (the
    /// mutating ingest, or the Subscribe for the initial audit), when
    /// that request carried a trace context — join it against
    /// `indaas trace <id>`.
    pub trace_id: Option<String>,
    /// The fresh report.
    pub report: AuditReport,
}

/// What the reader thread shares with every handle of one session.
struct SessionShared {
    /// Buffered so each frame's length prefix and payload leave in one
    /// write (two small writes through Nagle cost a delayed-ACK stall).
    writer: Mutex<std::io::BufWriter<TcpStream>>,
    pending: Mutex<HashMap<u64, mpsc::Sender<Response>>>,
    subs: Mutex<SubRoutes>,
    /// Why the reader exited, once it has — every later wait reports it.
    dead: Mutex<Option<String>>,
    /// Set when the server pushed `ShuttingDown` before the stream
    /// ended: the session's death is an announced drain, not a loss.
    clean_shutdown: std::sync::atomic::AtomicBool,
}

#[derive(Default)]
struct SubRoutes {
    channels: HashMap<u64, mpsc::Sender<AuditEvent>>,
    /// Events for subscription ids with no local channel yet.
    orphans: HashMap<u64, Vec<AuditEvent>>,
}

impl SessionShared {
    fn dead_reason(&self) -> Option<String> {
        self.dead
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn send_envelope(
        &self,
        id: u64,
        request: &Request,
        trace: Option<TraceContext>,
    ) -> Result<(), ClientError> {
        let frame = encode_line(&Envelope {
            id,
            body: request.clone(),
            trace: trace.map(|c| c.encode_header()),
        })
        .into_bytes();
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        write_frame(&mut *writer, &frame)?;
        writer.flush()?;
        Ok(())
    }
}

/// A pipelining protocol-v2 daemon session.
pub struct Client {
    shared: Arc<SessionShared>,
    /// Kept for `Drop`: shutting the socket down unblocks the reader.
    sock: TcpStream,
    reader: Option<std::thread::JoinHandle<()>>,
    next_id: u64,
    wait_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a running daemon and negotiates protocol v2.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; a server that rejects the hello
    /// or negotiates below v2 surfaces as
    /// [`std::io::ErrorKind::InvalidData`] (point old daemons at
    /// [`V1Client`] instead).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream.try_clone()?);

        // Line-mode handshake, then binary frames.
        let mut hello = encode_line(&Request::Hello {
            version: PROTOCOL_VERSION,
        });
        hello.push('\n');
        writer.write_all(hello.as_bytes())?;
        writer.flush()?;
        let invalid = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let mut line = String::new();
        match read_bounded_line(&mut reader, &mut line, MAX_WELCOME_LINE)? {
            LineRead::Line => {}
            LineRead::Eof => {
                return Err(invalid(
                    "server closed the connection during the hello".into(),
                ));
            }
            LineRead::Oversized => {
                return Err(invalid("oversized hello answer".into()));
            }
        }
        match decode_line::<Response>(line.trim()) {
            Ok(Response::Welcome { version }) if version >= 2 => {}
            Ok(Response::Welcome { version }) => {
                return Err(invalid(format!(
                    "server negotiated protocol v{version}; use V1Client for line-mode daemons"
                )));
            }
            Ok(Response::Error { message }) => {
                return Err(invalid(format!("server rejected the hello: {message}")));
            }
            Ok(other) => {
                return Err(invalid(format!("unexpected hello answer: {other:?}")));
            }
            Err(e) => {
                return Err(invalid(format!("unparseable hello answer: {e}")));
            }
        }

        let shared = Arc::new(SessionShared {
            writer: Mutex::new(std::io::BufWriter::new(writer)),
            pending: Mutex::new(HashMap::new()),
            subs: Mutex::new(SubRoutes::default()),
            dead: Mutex::new(None),
            clean_shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let reader_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || reader_loop(&reader_shared, reader));
        Ok(Client {
            shared,
            sock: stream,
            reader: Some(handle),
            next_id: 0,
            wait_timeout: None,
        })
    }

    /// Caps how long any single [`PendingResponse::wait`] (and every
    /// typed helper built on it) may block (`None` blocks forever, the
    /// default). A federation coordinator sets this so one wedged
    /// daemon fails the audit instead of hanging it.
    ///
    /// # Errors
    ///
    /// Infallible; the signature matches the v1 socket-option shape so
    /// callers need no changes.
    pub fn set_read_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        self.wait_timeout = timeout;
        Ok(())
    }

    /// Sends one request without waiting: the returned handle resolves
    /// to exactly this request's response, however many other requests
    /// this session has in flight and in whatever order the daemon
    /// finishes them.
    ///
    /// Every request mints a fresh root [`TraceContext`] — the client
    /// is where traces begin — so the daemon records a span tree for
    /// it. Use [`Client::begin_traced`] to join an existing trace (or
    /// to opt out with `None`).
    ///
    /// # Errors
    ///
    /// I/O failures and a dead session (reader exited) fail fast.
    pub fn begin(&mut self, request: &Request) -> Result<PendingResponse, ClientError> {
        self.begin_traced(request, Some(TraceContext::root()))
    }

    /// [`Client::begin`] under an explicit trace context: the envelope
    /// carries `trace` verbatim (`None` sends no context at all), so a
    /// caller holding a live trace — a federation coordinator fanning
    /// one audit out to many daemons — can parent the remote work under
    /// its own span.
    ///
    /// # Errors
    ///
    /// I/O failures and a dead session (reader exited) fail fast.
    pub fn begin_traced(
        &mut self,
        request: &Request,
        trace: Option<TraceContext>,
    ) -> Result<PendingResponse, ClientError> {
        if let Some(reason) = self.shared.dead_reason() {
            return Err(ClientError::Protocol(reason));
        }
        self.next_id += 1;
        let id = self.next_id;
        debug_assert_ne!(id, EVENT_ENVELOPE_ID);
        let (tx, rx) = mpsc::channel();
        self.shared
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, tx);
        if let Err(e) = self.shared.send_envelope(id, request, trace) {
            self.shared
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&id);
            return Err(e);
        }
        Ok(PendingResponse {
            id,
            rx,
            shared: Arc::clone(&self.shared),
            timeout: self.wait_timeout,
        })
    }

    /// Sends one request and waits for its response — [`Client::begin`]
    /// plus [`PendingResponse::wait`].
    ///
    /// # Errors
    ///
    /// I/O failures, unparseable responses, or a closed connection.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.begin(request)?.wait()
    }

    /// [`Client::request`] under an explicit trace context — see
    /// [`Client::begin_traced`].
    ///
    /// # Errors
    ///
    /// I/O failures, unparseable responses, or a closed connection.
    pub fn request_traced(
        &mut self,
        request: &Request,
        trace: Option<TraceContext>,
    ) -> Result<Response, ClientError> {
        self.begin_traced(request, trace)?.wait()
    }

    /// Registers a continuous SIA audit over `spec`: the daemon pushes
    /// an initial [`AuditEvent`] immediately and a fresh one after
    /// every ingest that changes a shard the spec's hosts route to.
    /// Other requests keep flowing on this session while events arrive.
    ///
    /// # Errors
    ///
    /// Invalid specs and daemon-side subscription limits surface as
    /// [`ClientError::Remote`].
    pub fn subscribe(&mut self, spec: &AuditSpec) -> Result<Subscription, ClientError> {
        let response = self.request(&Request::Subscribe {
            spec: spec.clone(),
            engine: "sia".to_string(),
        })?;
        match response {
            Response::Subscribed { subscription } => {
                let (tx, rx) = mpsc::channel();
                let mut subs = self
                    .shared
                    .subs
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // The initial event may already have arrived: replay it.
                if let Some(stash) = subs.orphans.remove(&subscription) {
                    for event in stash {
                        let _ = tx.send(event);
                    }
                }
                subs.channels.insert(subscription, tx);
                drop(subs);
                Ok(Subscription {
                    id: subscription,
                    rx,
                    shared: Arc::clone(&self.shared),
                })
            }
            other => Err(unexpected("Subscribed", &other)),
        }
    }

    /// Cancels a subscription made on this session.
    ///
    /// # Errors
    ///
    /// Unknown ids surface as [`ClientError::Remote`].
    pub fn unsubscribe(&mut self, subscription: u64) -> Result<(), ClientError> {
        let response = self.request(&Request::Unsubscribe { subscription })?;
        match response {
            Response::Unsubscribed { .. } => {
                let mut subs = self
                    .shared
                    .subs
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                subs.channels.remove(&subscription);
                subs.orphans.remove(&subscription);
                Ok(())
            }
            other => Err(unexpected("Unsubscribed", &other)),
        }
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Fails unless the server answers `Pong`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Streams Table-1 record text into the daemon.
    ///
    /// # Errors
    ///
    /// Remote parse failures surface as [`ClientError::Remote`].
    pub fn ingest(&mut self, records: &str) -> Result<IngestAnswer, ClientError> {
        let response = self.request(&Request::Ingest {
            records: records.to_string(),
        })?;
        ingest_answer(response)
    }

    /// Retracts previously ingested records.
    ///
    /// # Errors
    ///
    /// Remote parse failures surface as [`ClientError::Remote`].
    pub fn retract(&mut self, records: &str) -> Result<IngestAnswer, ClientError> {
        let response = self.request(&Request::Retract {
            records: records.to_string(),
        })?;
        ingest_answer(response)
    }

    /// Runs (or fetches from cache) a structural independence audit.
    ///
    /// # Errors
    ///
    /// Audit failures, deadline overruns and shed load surface as
    /// [`ClientError::Remote`].
    pub fn audit_sia(
        &mut self,
        spec: &AuditSpec,
        timeout_ms: Option<u64>,
    ) -> Result<SiaAnswer, ClientError> {
        let response = self.request(&Request::AuditSia {
            spec: spec.clone(),
            timeout_ms,
        })?;
        match response {
            Response::Sia {
                epoch,
                cached,
                elapsed_us,
                report,
            } => Ok(SiaAnswer {
                epoch,
                cached,
                elapsed_us,
                report,
            }),
            other => Err(unexpected("Sia", &other)),
        }
    }

    /// Runs (or fetches from cache) a private independence audit.
    ///
    /// # Errors
    ///
    /// Audit failures, deadline overruns and shed load surface as
    /// [`ClientError::Remote`].
    pub fn audit_pia(
        &mut self,
        providers: Vec<(String, Vec<String>)>,
        way: usize,
        minhash: Option<usize>,
        timeout_ms: Option<u64>,
    ) -> Result<PiaAnswer, ClientError> {
        let response = self.request(&Request::AuditPia {
            providers,
            way,
            minhash,
            timeout_ms,
        })?;
        match response {
            Response::Pia {
                epoch,
                cached,
                elapsed_us,
                rankings,
            } => Ok(PiaAnswer {
                epoch,
                cached,
                elapsed_us,
                rankings,
            }),
            other => Err(unexpected("Pia", &other)),
        }
    }

    /// Fetches service counters as a typed [`StatusAnswer`].
    ///
    /// # Errors
    ///
    /// Fails unless the server answers `Status`.
    pub fn status(&mut self) -> Result<StatusAnswer, ClientError> {
        match self.request(&Request::Status)? {
            Response::Status {
                epoch,
                records,
                hosts,
                shard_epochs,
                shard_records,
                shard_writes,
                lock_waits,
                jobs_queued,
                jobs_running,
                cache_entries,
                cache_hits,
                cache_misses,
                hit_ratio,
                subscriptions,
                pushed_events,
                uptime_ms,
                uptime_secs,
                sia_audits,
                pia_audits,
                dropped_events,
            } => Ok(StatusAnswer {
                epoch,
                records,
                hosts,
                shard_epochs,
                shard_records,
                shard_writes,
                lock_waits,
                jobs_queued,
                jobs_running,
                cache_entries,
                cache_hits,
                cache_misses,
                hit_ratio,
                subscriptions,
                pushed_events,
                uptime_ms,
                uptime_secs,
                sia_audits,
                pia_audits,
                dropped_events,
            }),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Fetches the metrics snapshot (registry + recent traces) as a
    /// typed [`MetricsAnswer`]. `recent` bounds how many traces return
    /// (`None` = server default).
    ///
    /// # Errors
    ///
    /// Fails unless the server answers `Metrics`.
    pub fn metrics(&mut self, recent: Option<usize>) -> Result<MetricsAnswer, ClientError> {
        match self.request(&Request::Metrics { recent })? {
            Response::Metrics {
                uptime_secs,
                counters,
                gauges,
                histos,
                traces,
                slow_threshold_us,
            } => Ok(MetricsAnswer {
                uptime_secs,
                counters,
                gauges,
                histos,
                traces,
                slow_threshold_us,
            }),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Fetches every span the daemon recorded under the hex trace id
    /// `id`. Returns the daemon's node name (its listen address) and
    /// the raw span entries — feed entries from several daemons into
    /// [`indaas_obs::build_span_tree`] to stitch a federated trace.
    ///
    /// # Errors
    ///
    /// Malformed ids surface as [`ClientError::Remote`].
    pub fn fetch_trace(&mut self, id: &str) -> Result<(String, Vec<SpanEntry>), ClientError> {
        let response = self.request_traced(&Request::Trace { id: id.to_string() }, None)?;
        match response {
            Response::Trace { node, spans } => Ok((node, spans)),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Asks the daemon to exit its serve loop.
    ///
    /// # Errors
    ///
    /// Fails unless the server acknowledges with `ShuttingDown`.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Unblocks the reader (its read returns 0/error), then reaps it.
        let _ = self.sock.shutdown(Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

/// One in-flight request's response slot.
pub struct PendingResponse {
    id: u64,
    rx: mpsc::Receiver<Response>,
    shared: Arc<SessionShared>,
    timeout: Option<Duration>,
}

impl PendingResponse {
    /// The envelope id this handle is waiting on.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until this request's response arrives (honouring the
    /// session's [`Client::set_read_timeout`], if any).
    ///
    /// # Errors
    ///
    /// A dead session reports why the reader exited; a timeout abandons
    /// the slot (a late response for it is discarded by the reader).
    pub fn wait(self) -> Result<Response, ClientError> {
        let received = match self.timeout {
            None => self.rx.recv().map_err(|_| None),
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => Some(t),
                mpsc::RecvTimeoutError::Disconnected => None,
            }),
        };
        match received {
            Ok(response) => Ok(response),
            Err(Some(timeout)) => {
                self.shared
                    .pending
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&self.id);
                Err(ClientError::Protocol(format!(
                    "no response within {}ms (request id {})",
                    timeout.as_millis(),
                    self.id
                )))
            }
            Err(None) => Err(ClientError::Protocol(
                self.shared
                    .dead_reason()
                    .unwrap_or_else(|| "session closed".to_string()),
            )),
        }
    }
}

/// How a subscription's event stream came to an end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubscriptionEnd {
    /// The server pushed `ShuttingDown` and drained the session: an
    /// orderly goodbye, not a failure.
    CleanShutdown,
    /// The transport died without an announcement (crash, cut cable,
    /// protocol violation) — the recorded reader-exit reason.
    ConnectionLost(String),
}

impl std::fmt::Display for SubscriptionEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscriptionEnd::CleanShutdown => write!(f, "server shut down cleanly"),
            SubscriptionEnd::ConnectionLost(reason) => write!(f, "connection lost: {reason}"),
        }
    }
}

/// A live audit subscription: an iterator of pushed [`AuditEvent`]s.
/// Dropping it stops local delivery; call [`Client::unsubscribe`] to
/// also stop the daemon from computing events.
///
/// When the iterator returns `None` (or `recv` fails), [`Subscription::end`]
/// tells an announced server shutdown apart from a lost connection — the
/// difference between exiting zero and reconnecting.
pub struct Subscription {
    id: u64,
    rx: mpsc::Receiver<AuditEvent>,
    shared: Arc<SessionShared>,
}

impl Subscription {
    /// The daemon-assigned subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the next pushed event.
    ///
    /// # Errors
    ///
    /// A dead or closed session reports why.
    pub fn recv(&mut self) -> Result<AuditEvent, ClientError> {
        self.rx.recv().map_err(|_| self.closed())
    }

    /// Waits up to `timeout` for the next pushed event; `Ok(None)`
    /// means no event arrived in time (the subscription is still live).
    ///
    /// # Errors
    ///
    /// A dead or closed session reports why.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<AuditEvent>, ClientError> {
        match self.rx.recv_timeout(timeout) {
            Ok(event) => Ok(Some(event)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.closed()),
        }
    }

    /// Terminal state of the session under this subscription: `None`
    /// while the session is alive, [`SubscriptionEnd::CleanShutdown`]
    /// when the server announced its drain before the stream ended,
    /// [`SubscriptionEnd::ConnectionLost`] otherwise.
    pub fn end(&self) -> Option<SubscriptionEnd> {
        let reason = self.shared.dead_reason()?;
        if self
            .shared
            .clean_shutdown
            .load(std::sync::atomic::Ordering::Acquire)
        {
            Some(SubscriptionEnd::CleanShutdown)
        } else {
            Some(SubscriptionEnd::ConnectionLost(reason))
        }
    }

    fn closed(&self) -> ClientError {
        ClientError::Protocol(
            self.shared
                .dead_reason()
                .unwrap_or_else(|| "subscription closed".to_string()),
        )
    }
}

impl Iterator for Subscription {
    type Item = AuditEvent;

    fn next(&mut self) -> Option<AuditEvent> {
        self.rx.recv().ok()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut subs = self
            .shared
            .subs
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        subs.channels.remove(&self.id);
        // Without a channel, events for this id would pile up in the
        // orphan stash for the life of the session — drop them too.
        subs.orphans.remove(&self.id);
    }
}

/// The session's demultiplexer: matches response frames to pending
/// request ids and routes pushed events to their subscriptions. Exits
/// (recording why) on EOF, transport errors, or protocol violations —
/// which drops every pending sender, so all waiters fail fast with the
/// recorded reason.
fn reader_loop(shared: &SessionShared, mut reader: BufReader<TcpStream>) {
    let mut buf = Vec::new();
    let reason = loop {
        match read_frame(&mut reader, &mut buf, MAX_RESPONSE_LINE) {
            Ok(FrameRead::Frame) => {}
            Ok(FrameRead::Eof) => break "server closed connection".to_string(),
            Ok(FrameRead::Oversized) => break "oversized response frame".to_string(),
            Err(e) => break format!("connection error: {e}"),
        }
        let envelope = std::str::from_utf8(&buf)
            .map_err(|e| e.to_string())
            .and_then(|text| decode_line::<ResponseEnvelope>(text).map_err(|e| e.to_string()));
        let envelope = match envelope {
            Ok(envelope) => envelope,
            Err(e) => break format!("unparseable response envelope: {e}"),
        };
        if envelope.id == EVENT_ENVELOPE_ID {
            match envelope.body {
                Response::AuditEvent {
                    subscription,
                    epoch,
                    cached,
                    elapsed_us,
                    trace_id,
                    report,
                } => route_event(
                    shared,
                    AuditEvent {
                        subscription,
                        epoch,
                        cached,
                        elapsed_us,
                        trace_id,
                        report,
                    },
                ),
                Response::Error { message } => break format!("server error: {message}"),
                // The server announces a clean drain before closing;
                // remember it so terminal states can tell an orderly
                // shutdown from a cut cable, then keep reading — the
                // drain may still deliver queued events and responses.
                Response::ShuttingDown => {
                    shared
                        .clean_shutdown
                        .store(true, std::sync::atomic::Ordering::Release);
                    continue;
                }
                other => break format!("unexpected push: {other:?}"),
            }
            continue;
        }
        let slot = shared
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&envelope.id);
        if let Some(tx) = slot {
            let _ = tx.send(envelope.body);
        }
        // No slot: the waiter timed out and abandoned it. Discard.
    };
    *shared.dead.lock().unwrap_or_else(PoisonError::into_inner) = Some(reason);
    // Dropping the senders unblocks every waiter and ends every
    // subscription iterator.
    shared
        .pending
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    let mut subs = shared.subs.lock().unwrap_or_else(PoisonError::into_inner);
    subs.channels.clear();
    subs.orphans.clear();
}

fn route_event(shared: &SessionShared, event: AuditEvent) {
    let mut subs = shared.subs.lock().unwrap_or_else(PoisonError::into_inner);
    let id = event.subscription;
    match subs.channels.get(&id) {
        Some(tx) => {
            // A failed send hands the event back — no clone needed on
            // the delivery path.
            if tx.send(event).is_err() {
                subs.channels.remove(&id);
            }
        }
        None => {
            // Stash for a subscribe() that has not registered yet —
            // bounded per id *and* in distinct ids, so a server
            // inventing subscription ids (or an app leaking dropped
            // handles) cannot grow this map without bound.
            if subs.orphans.len() >= MAX_ORPHAN_SUBS && !subs.orphans.contains_key(&id) {
                return;
            }
            let stash = subs.orphans.entry(id).or_default();
            if stash.len() < MAX_ORPHAN_EVENTS {
                stash.push(event);
            }
        }
    }
}

fn ingest_answer(response: Response) -> Result<IngestAnswer, ClientError> {
    match response {
        Response::Ingested {
            changed,
            ignored,
            epoch,
        } => Ok(IngestAnswer {
            changed,
            ignored,
            epoch,
        }),
        other => Err(unexpected("Ingested", &other)),
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { message } => ClientError::Remote(message.clone()),
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}

/// The legacy protocol-v1 client: line-delimited JSON, strictly one
/// request/response pair at a time, no hello. Kept as the compat
/// surface old tooling uses and the protocol-compat e2e suite drives
/// against the v2 daemon.
pub struct V1Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl V1Client {
    /// Connects to a running daemon without any handshake — the first
    /// plain request line is what pins the connection to v1.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(V1Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Caps how long any single response read may block (`None` blocks
    /// forever, the default).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, unparseable responses, or a closed connection.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = encode_line(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut answer = String::new();
        match read_bounded_line(&mut self.reader, &mut answer, MAX_RESPONSE_LINE)? {
            LineRead::Line => {}
            LineRead::Eof => {
                return Err(ClientError::Protocol("server closed connection".into()));
            }
            LineRead::Oversized => {
                return Err(ClientError::Protocol("oversized response line".into()));
            }
        }
        decode_line(answer.trim()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Fails unless the server answers `Pong`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Streams Table-1 record text into the daemon.
    ///
    /// # Errors
    ///
    /// Remote parse failures surface as [`ClientError::Remote`].
    pub fn ingest(&mut self, records: &str) -> Result<IngestAnswer, ClientError> {
        let response = self.request(&Request::Ingest {
            records: records.to_string(),
        })?;
        ingest_answer(response)
    }

    /// Runs (or fetches from cache) a structural independence audit.
    ///
    /// # Errors
    ///
    /// Audit failures, deadline overruns and shed load surface as
    /// [`ClientError::Remote`].
    pub fn audit_sia(
        &mut self,
        spec: &AuditSpec,
        timeout_ms: Option<u64>,
    ) -> Result<SiaAnswer, ClientError> {
        let response = self.request(&Request::AuditSia {
            spec: spec.clone(),
            timeout_ms,
        })?;
        match response {
            Response::Sia {
                epoch,
                cached,
                elapsed_us,
                report,
            } => Ok(SiaAnswer {
                epoch,
                cached,
                elapsed_us,
                report,
            }),
            other => Err(unexpected("Sia", &other)),
        }
    }

    /// Fetches service counters as the raw `Status` response.
    ///
    /// # Errors
    ///
    /// Fails unless the server answers `Status`.
    pub fn status(&mut self) -> Result<Response, ClientError> {
        match self.request(&Request::Status)? {
            s @ Response::Status { .. } => Ok(s),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Asks the daemon to exit its serve loop.
    ///
    /// # Errors
    ///
    /// Fails unless the server acknowledges with `ShuttingDown`.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}
