//! Blocking NDJSON client for the auditing daemon.
//!
//! One TCP connection, one request/response pair per call — requests can
//! be issued back to back on the same connection (the daemon answers in
//! order). Used by the `indaas` CLI and the end-to-end tests.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use indaas_core::AuditSpec;
use indaas_pia::PiaRanking;
use indaas_sia::AuditReport;

use crate::proto::{decode_line, encode_line, read_bounded_line, LineRead, Request, Response};

/// Largest accepted response line (reports scale with candidates and
/// `top_n`, but not unboundedly; this caps client memory against a
/// misbehaving server).
const MAX_RESPONSE_LINE: u64 = 256 * 1024 * 1024;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble.
    Io(std::io::Error),
    /// The server sent something unparseable or out of protocol.
    Protocol(String),
    /// The server answered with `Error { message }`.
    Remote(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A typed SIA answer.
#[derive(Clone, Debug)]
pub struct SiaAnswer {
    /// Epoch the audit ran against.
    pub epoch: u64,
    /// Whether the daemon served it from cache.
    pub cached: bool,
    /// Server-side production time in microseconds.
    pub elapsed_us: u64,
    /// The report.
    pub report: AuditReport,
}

/// A typed PIA answer.
#[derive(Clone, Debug)]
pub struct PiaAnswer {
    /// Epoch stamped on the answer.
    pub epoch: u64,
    /// Whether the daemon served it from cache.
    pub cached: bool,
    /// Server-side production time in microseconds.
    pub elapsed_us: u64,
    /// Candidate deployments, most independent first.
    pub rankings: Vec<PiaRanking>,
}

/// An ingest/retract acknowledgement.
#[derive(Clone, Copy, Debug)]
pub struct IngestAnswer {
    /// Records that changed the database.
    pub changed: usize,
    /// Duplicates/absent records ignored.
    pub ignored: usize,
    /// Epoch after the batch.
    pub epoch: u64,
}

/// Blocking daemon client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Caps how long any single response read may block (`None` blocks
    /// forever, the default). A federation coordinator sets this so one
    /// wedged daemon fails the audit instead of hanging it.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// I/O failures, unparseable responses, or a closed connection.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = encode_line(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut answer = String::new();
        match read_bounded_line(&mut self.reader, &mut answer, MAX_RESPONSE_LINE)? {
            LineRead::Line => {}
            LineRead::Eof => {
                return Err(ClientError::Protocol("server closed connection".into()));
            }
            LineRead::Oversized => {
                return Err(ClientError::Protocol("oversized response line".into()));
            }
        }
        decode_line(answer.trim()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Fails unless the server answers `Pong`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Streams Table-1 record text into the daemon.
    ///
    /// # Errors
    ///
    /// Remote parse failures surface as [`ClientError::Remote`].
    pub fn ingest(&mut self, records: &str) -> Result<IngestAnswer, ClientError> {
        let response = self.request(&Request::Ingest {
            records: records.to_string(),
        })?;
        match response {
            Response::Ingested {
                changed,
                ignored,
                epoch,
            } => Ok(IngestAnswer {
                changed,
                ignored,
                epoch,
            }),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Retracts previously ingested records.
    ///
    /// # Errors
    ///
    /// Remote parse failures surface as [`ClientError::Remote`].
    pub fn retract(&mut self, records: &str) -> Result<IngestAnswer, ClientError> {
        let response = self.request(&Request::Retract {
            records: records.to_string(),
        })?;
        match response {
            Response::Ingested {
                changed,
                ignored,
                epoch,
            } => Ok(IngestAnswer {
                changed,
                ignored,
                epoch,
            }),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Runs (or fetches from cache) a structural independence audit.
    ///
    /// # Errors
    ///
    /// Audit failures, deadline overruns and shed load surface as
    /// [`ClientError::Remote`].
    pub fn audit_sia(
        &mut self,
        spec: &AuditSpec,
        timeout_ms: Option<u64>,
    ) -> Result<SiaAnswer, ClientError> {
        let response = self.request(&Request::AuditSia {
            spec: spec.clone(),
            timeout_ms,
        })?;
        match response {
            Response::Sia {
                epoch,
                cached,
                elapsed_us,
                report,
            } => Ok(SiaAnswer {
                epoch,
                cached,
                elapsed_us,
                report,
            }),
            other => Err(unexpected("Sia", &other)),
        }
    }

    /// Runs (or fetches from cache) a private independence audit.
    ///
    /// # Errors
    ///
    /// Audit failures, deadline overruns and shed load surface as
    /// [`ClientError::Remote`].
    pub fn audit_pia(
        &mut self,
        providers: Vec<(String, Vec<String>)>,
        way: usize,
        minhash: Option<usize>,
        timeout_ms: Option<u64>,
    ) -> Result<PiaAnswer, ClientError> {
        let response = self.request(&Request::AuditPia {
            providers,
            way,
            minhash,
            timeout_ms,
        })?;
        match response {
            Response::Pia {
                epoch,
                cached,
                elapsed_us,
                rankings,
            } => Ok(PiaAnswer {
                epoch,
                cached,
                elapsed_us,
                rankings,
            }),
            other => Err(unexpected("Pia", &other)),
        }
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// Fails unless the server answers `Status`.
    pub fn status(&mut self) -> Result<Response, ClientError> {
        match self.request(&Request::Status)? {
            s @ Response::Status { .. } => Ok(s),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Asks the daemon to exit its serve loop.
    ///
    /// # Errors
    ///
    /// Fails unless the server acknowledges with `ShuttingDown`.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { message } => ClientError::Remote(message.clone()),
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
