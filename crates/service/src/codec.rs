//! Incremental wire codecs for the readiness loop: buffer-backed
//! decoders that accept bytes in whatever fragments the kernel
//! delivers, and a per-connection write queue that resumes across
//! `WouldBlock`.
//!
//! The blocking codecs in [`proto`](crate::proto) pull whole frames out
//! of a stream and park the thread until they arrive — exactly what a
//! thread-per-connection server wants and exactly what a readiness loop
//! cannot afford. Here the loop owns the read: it appends whatever
//! `read(2)` returned to the connection's input buffer and asks
//! [`try_extract_frame`]/[`try_extract_line`] whether a complete
//! message has accumulated. Decoding is therefore a pure function of
//! the buffer — byte-at-a-time delivery and one giant `read` decode
//! identically (the property tests in `tests/properties.rs` hold the
//! incremental decoders to the blocking readers' output bit for bit).
//!
//! On the way out, [`WriteQueue`] holds fully-encoded messages and a
//! cursor into the front one; [`WriteQueue::write_to`] pushes bytes
//! until the socket blocks and picks up mid-frame on the next
//! `EPOLLOUT`. The same bounds the blocking codecs enforce apply
//! unchanged: an announced frame length or a terminator-less line past
//! the limit poisons the connection (the stream can no longer be
//! resynchronized), surfaced as [`DecodeError::Oversized`] before any
//! payload allocation.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Length of the binary-frame header: a `u32` big-endian payload length.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Why an input buffer can no longer yield messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The peer announced a frame longer than the limit, or sent
    /// `limit` line bytes with no newline. Nothing was consumed; the
    /// connection must be dropped.
    Oversized {
        /// The announced frame length (or the accumulated line length).
        announced: u64,
        /// The limit it exceeded.
        limit: u64,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let DecodeError::Oversized { announced, limit } = self;
        write!(
            f,
            "message of {announced} bytes exceeds the {limit}-byte limit"
        )
    }
}

impl std::error::Error for DecodeError {}

/// Pops one complete length-prefixed binary frame off the front of
/// `inbuf`, or `None` when the buffer holds only a partial frame.
///
/// Mirrors [`proto::read_frame`](crate::proto::read_frame): the
/// announced length is checked against `limit` as soon as the 4-byte
/// header is visible, before any payload allocation, so a lying prefix
/// on a stalling peer can never balloon memory.
///
/// # Errors
///
/// [`DecodeError::Oversized`] when the announced length exceeds
/// `limit`; the buffer is left untouched and the caller must drop the
/// connection.
pub fn try_extract_frame(inbuf: &mut Vec<u8>, limit: u64) -> Result<Option<Vec<u8>>, DecodeError> {
    if inbuf.len() < FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let announced = u64::from(u32::from_be_bytes(
        inbuf[..FRAME_HEADER_BYTES]
            .try_into()
            .expect("4-byte slice"), // lint:allow(panic_path) -- the slice is exactly FRAME_HEADER_BYTES long
    ));
    if announced > limit {
        return Err(DecodeError::Oversized { announced, limit });
    }
    let total = FRAME_HEADER_BYTES + announced as usize;
    if inbuf.len() < total {
        return Ok(None);
    }
    let payload = inbuf[FRAME_HEADER_BYTES..total].to_vec();
    inbuf.drain(..total);
    Ok(Some(payload))
}

/// Pops one `\n`-terminated line (terminator included, matching
/// [`proto::read_bounded_line`](crate::proto::read_bounded_line)) off
/// the front of `inbuf`, or `None` while no newline has arrived yet.
///
/// # Errors
///
/// [`DecodeError::Oversized`] once `limit` bytes sit in the buffer
/// with no newline among them — the line can never complete within
/// bounds. Invalid UTF-8 in a complete line surfaces as an
/// [`io::Error`] exactly as the blocking reader's `read_line` does.
pub fn try_extract_line(
    inbuf: &mut Vec<u8>,
    limit: u64,
) -> Result<Option<io::Result<String>>, DecodeError> {
    match inbuf.iter().position(|&b| b == b'\n') {
        Some(pos) if (pos as u64) < limit => {
            let raw: Vec<u8> = inbuf.drain(..=pos).collect();
            Ok(Some(match String::from_utf8(raw) {
                Ok(line) => Ok(line),
                Err(_) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stream did not contain valid UTF-8",
                )),
            }))
        }
        Some(pos) => Err(DecodeError::Oversized {
            announced: pos as u64 + 1,
            limit,
        }),
        None if inbuf.len() as u64 >= limit => Err(DecodeError::Oversized {
            announced: inbuf.len() as u64,
            limit,
        }),
        None => Ok(None),
    }
}

/// What one non-blocking fill of the input buffer observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// This many fresh bytes were appended (> 0).
    Bytes(usize),
    /// The socket has no bytes ready; wait for the next `EPOLLIN`.
    WouldBlock,
    /// The peer closed its write side.
    Eof,
}

/// Appends whatever the non-blocking `reader` has ready to `inbuf`,
/// reading at most one chunk (the loop services other connections
/// between chunks; level-triggered epoll re-reports the rest).
///
/// # Errors
///
/// Transport errors other than `WouldBlock`/`Interrupted` propagate.
pub fn fill_buf(reader: &mut impl Read, inbuf: &mut Vec<u8>) -> io::Result<Fill> {
    const CHUNK: usize = 64 * 1024;
    let start = inbuf.len();
    inbuf.resize(start + CHUNK, 0);
    loop {
        // lint:allow(blocking_in_loop) -- the stream is registered nonblocking
        // with the poller; read returns WouldBlock instead of parking
        match reader.read(&mut inbuf[start..]) {
            Ok(0) => {
                inbuf.truncate(start);
                return Ok(Fill::Eof);
            }
            Ok(n) => {
                inbuf.truncate(start + n);
                return Ok(Fill::Bytes(n));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                inbuf.truncate(start);
                return Ok(Fill::WouldBlock);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                inbuf.truncate(start);
                return Err(e);
            }
        }
    }
}

/// Encodes one binary frame — the `u32` big-endian length prefix plus
/// the payload — as the byte string [`WriteQueue::push`] takes.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32 length"); // lint:allow(panic_path) -- payloads are in-process responses far below the 4 GiB frame ceiling
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes one v1 response line (newline appended).
pub fn line_bytes(line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    out
}

/// Outcome of one [`WriteQueue::write_to`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// Every queued byte reached the socket; EPOLLOUT can be dropped.
    Drained,
    /// The socket blocked mid-queue; resume on the next `EPOLLOUT`.
    Blocked,
}

/// A connection's pending output: fully-encoded messages plus a byte
/// cursor into the front one, so a write that lands mid-frame resumes
/// exactly where the kernel stopped taking bytes.
#[derive(Default)]
pub struct WriteQueue {
    messages: VecDeque<Vec<u8>>,
    /// How many bytes of `messages[0]` already reached the socket.
    head_sent: usize,
    queued_bytes: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WriteQueue::default()
    }

    /// Queues one fully-encoded message (see [`frame_bytes`] /
    /// [`line_bytes`]).
    pub fn push(&mut self, message: Vec<u8>) {
        self.queued_bytes += message.len();
        self.messages.push_back(message);
    }

    /// True when no byte is pending.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Bytes not yet accepted by the socket.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Queued messages not yet fully written.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Writes queued bytes until the queue drains or the socket blocks.
    ///
    /// # Errors
    ///
    /// A zero-length accepted write is reported as
    /// [`io::ErrorKind::WriteZero`]; transport errors other than
    /// `WouldBlock`/`Interrupted` propagate. Either way the connection
    /// is dead.
    pub fn write_to(&mut self, writer: &mut impl Write) -> io::Result<WriteProgress> {
        while let Some(front) = self.messages.front() {
            // lint:allow(blocking_in_loop) -- the stream is registered nonblocking
            // with the poller; write returns WouldBlock instead of parking
            match writer.write(&front[self.head_sent..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes of a pending message",
                    ));
                }
                Ok(n) => {
                    self.head_sent += n;
                    self.queued_bytes -= n;
                    if self.head_sent == front.len() {
                        self.messages.pop_front();
                        self.head_sent = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(WriteProgress::Blocked);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(WriteProgress::Drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_extraction_is_incremental() {
        let encoded = frame_bytes(b"hello");
        let mut inbuf = Vec::new();
        for (i, &b) in encoded.iter().enumerate() {
            inbuf.push(b);
            let got = try_extract_frame(&mut inbuf, 1024).expect("within limit");
            if i + 1 < encoded.len() {
                assert!(got.is_none(), "no frame before byte {}", encoded.len());
            } else {
                assert_eq!(got.as_deref(), Some(&b"hello"[..]));
                assert!(inbuf.is_empty());
            }
        }
    }

    #[test]
    fn two_frames_in_one_burst_pop_in_order() {
        let mut inbuf = Vec::new();
        inbuf.extend_from_slice(&frame_bytes(b"a"));
        inbuf.extend_from_slice(&frame_bytes(b"bb"));
        assert_eq!(
            try_extract_frame(&mut inbuf, 1024).unwrap().as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(
            try_extract_frame(&mut inbuf, 1024).unwrap().as_deref(),
            Some(&b"bb"[..])
        );
        assert_eq!(try_extract_frame(&mut inbuf, 1024).unwrap(), None);
    }

    #[test]
    fn oversized_announcement_rejected_from_header_alone() {
        let mut inbuf = 100u32.to_be_bytes().to_vec();
        assert_eq!(
            try_extract_frame(&mut inbuf, 99),
            Err(DecodeError::Oversized {
                announced: 100,
                limit: 99
            })
        );
    }

    #[test]
    fn line_extraction_keeps_terminator_and_bounds_length() {
        let mut inbuf = b"\"Ping\"\ntrailing".to_vec();
        let line = try_extract_line(&mut inbuf, 64).unwrap().unwrap().unwrap();
        assert_eq!(line, "\"Ping\"\n");
        assert_eq!(inbuf, b"trailing");
        assert!(try_extract_line(&mut inbuf, 64).unwrap().is_none());

        let mut oversized = vec![b'x'; 64];
        assert!(try_extract_line(&mut oversized, 64).is_err());
    }

    /// A writer that accepts at most `cap` bytes per call, then blocks.
    struct Dribble {
        cap: usize,
        taken: Vec<u8>,
        calls_until_block: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_until_block == 0 {
                self.calls_until_block = 1;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.calls_until_block -= 1;
            let n = buf.len().min(self.cap);
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_resume_losslessly() {
        let mut wq = WriteQueue::new();
        wq.push(frame_bytes(b"first"));
        wq.push(frame_bytes(b"second message"));
        let mut expected = frame_bytes(b"first");
        expected.extend_from_slice(&frame_bytes(b"second message"));

        let mut sink = Dribble {
            cap: 3,
            taken: Vec::new(),
            calls_until_block: 2,
        };
        let mut passes = 0;
        loop {
            passes += 1;
            match wq.write_to(&mut sink).expect("no transport error") {
                WriteProgress::Drained => break,
                WriteProgress::Blocked => sink.calls_until_block = 2,
            }
        }
        assert!(passes > 1, "the dribbling sink must have blocked mid-queue");
        assert_eq!(sink.taken, expected);
        assert!(wq.is_empty());
        assert_eq!(wq.queued_bytes(), 0);
    }
}
