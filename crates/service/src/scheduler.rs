//! Fixed-pool job scheduler with a bounded queue and per-job deadlines.
//!
//! Audit jobs are CPU-bound and occasionally explosive (minimal-RG
//! computation is NP-hard), so the daemon never runs them on connection
//! threads. Instead a fixed number of worker threads drain a bounded
//! FIFO queue:
//!
//! * **bounded** — when the queue is full, [`Scheduler::submit`] fails
//!   immediately with [`SubmitError::QueueFull`] and the client gets a
//!   load-shed error instead of unbounded latency;
//! * **deadlines** — every job carries a [`CancelToken`]; the deadline
//!   keeps ticking while the job is *queued*, so an overloaded daemon
//!   sheds expired work the moment a worker picks it up (the audit
//!   engines poll the same token while running).
//!
//! Subscription push audits (protocol v2's `AuditEvent`s) are ordinary
//! jobs on this same pool: an ingest that wakes N subscriptions submits
//! N jobs and moves on, admission control sheds push load exactly like
//! request load, and a shed push costs one event — the subscription
//! stays armed for the next batch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use indaas_core::CancelToken;
use indaas_obs::{Counter, Gauge, Histo};

/// Observability hooks for the pool: queue occupancy, queue-wait
/// latency, and total admissions. All optional — [`Scheduler::new`]
/// runs unobserved (tests, embedded use); the daemon passes handles
/// from its registry via [`Scheduler::with_metrics`].
#[derive(Clone)]
pub struct SchedMetrics {
    /// Jobs admitted but not yet picked up (set on every transition).
    pub queue_depth: Arc<Gauge>,
    /// Microseconds each job spent queued before a worker took it.
    pub wait_us: Arc<Histo>,
    /// Jobs admitted since startup.
    pub jobs_total: Arc<Counter>,
}

/// Why a job was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed load.
    QueueFull,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "audit queue full, retry later"),
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Job {
    run: Box<dyn FnOnce(&CancelToken) + Send>,
    token: CancelToken,
    enqueued: Instant,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    running: AtomicUsize,
    metrics: Option<SchedMetrics>,
}

/// The worker pool. Dropping it drains nothing: queued jobs whose
/// closures were admitted still run before workers exit.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns `workers` threads sharing a queue of at most `capacity`
    /// pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, capacity: usize) -> Self {
        Self::with_metrics(workers, capacity, None)
    }

    /// [`Scheduler::new`] with observability hooks: the pool keeps
    /// `queue_depth` current, records every job's queue wait into
    /// `wait_us`, and counts admissions into `jobs_total`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_metrics(workers: usize, capacity: usize, metrics: Option<SchedMetrics>) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            metrics,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("indaas-audit-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn audit worker") // lint:allow(panic_path) -- workers spawn once at startup; a failed spawn is fatal misconfiguration
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Admits a job. The returned token lets the caller cancel it (it is
    /// the same token the job body receives); `deadline` arms the token
    /// to expire that far from *now* — queue wait counts against it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::ShuttingDown`]
    /// after shutdown began.
    pub fn submit(
        &self,
        deadline: Option<Duration>,
        run: impl FnOnce(&CancelToken) + Send + 'static,
    ) -> Result<CancelToken, SubmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        // Chaos hook: `sched.dispatch` makes admission fail exactly like
        // a full queue (error/drop) or a closing pool (disconnect), so
        // callers exercise their shed-load paths on a healthy daemon.
        match indaas_faultinj::point(indaas_faultinj::points::SCHED_DISPATCH) {
            indaas_faultinj::FaultAction::Pass => {}
            indaas_faultinj::FaultAction::Disconnect => return Err(SubmitError::ShuttingDown),
            _ => return Err(SubmitError::QueueFull),
        }
        let token = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let job = Job {
            run: Box::new(run),
            token: token.clone(),
            enqueued: Instant::now(),
        };
        {
            let mut queue = self
                .shared
                .queue
                // lint:allow(blocking_in_loop) -- bounded short critical
                // section; never held across blocking work
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if queue.len() >= self.shared.capacity {
                return Err(SubmitError::QueueFull);
            }
            queue.push_back(job);
            if let Some(m) = &self.shared.metrics {
                m.jobs_total.inc();
                m.queue_depth.set(queue.len() as u64);
            }
        }
        self.shared.available.notify_one();
        Ok(token)
    }

    /// Jobs admitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            // lint:allow(blocking_in_loop) -- bounded short critical
            // section; never held across blocking work
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Stops accepting jobs and wakes idle workers; running jobs finish.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
    }

    /// [`Scheduler::shutdown`], then blocks until every worker thread
    /// has exited — queued jobs still run first. The daemon's shutdown
    /// path calls this so `Server::run` returns with zero pool threads
    /// left behind; idempotent (a second call finds no handles).
    pub fn shutdown_and_join(&self) {
        self.shutdown();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    if let Some(m) = &shared.metrics {
                        m.queue_depth.set(queue.len() as u64);
                    }
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if let Some(m) = &shared.metrics {
            m.wait_us.record(job.enqueued.elapsed().as_micros() as u64);
        }
        shared.running.fetch_add(1, Ordering::Relaxed);
        // The job body observes queue-time expiry through its token.
        // A panicking job (bad algorithm parameters tripping an assert
        // deep in an engine) must not kill the worker: catch it, keep
        // the counter honest, and let the submitter observe the dropped
        // result channel.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (job.run)(&job.token);
        }));
        shared.running.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            indaas_obs::log::error("scheduler", "audit job panicked (worker recovered)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_results_flow_back() {
        let s = Scheduler::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..6u32 {
            let tx = tx.clone();
            s.submit(None, move |_| tx.send(i * i).expect("send result"))
                .unwrap();
        }
        let mut got: Vec<u32> = (0..6).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn queue_full_sheds_load() {
        let s = Scheduler::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        s.submit(None, move |_| {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        // ...fill the queue...
        s.submit(None, |_| {}).unwrap();
        // ...and the next submit must shed.
        let err = s.submit(None, |_| {}).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        block_tx.send(()).unwrap();
    }

    #[test]
    fn deadline_expires_while_queued() {
        let s = Scheduler::new(1, 8);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        s.submit(None, move |_| {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        let (tx, rx) = mpsc::channel();
        s.submit(Some(Duration::ZERO), move |token| {
            tx.send(token.is_cancelled()).unwrap();
        })
        .unwrap();
        block_tx.send(()).unwrap();
        assert!(rx.recv().unwrap(), "deadline must expire during queueing");
    }

    #[test]
    fn caller_can_cancel_via_returned_token() {
        let s = Scheduler::new(1, 8);
        let (tx, rx) = mpsc::channel();
        let token = s
            .submit(None, move |t: &CancelToken| {
                // Spin until cancelled (bounded by the test timeout).
                while !t.is_cancelled() {
                    std::thread::yield_now();
                }
                tx.send(true).unwrap();
            })
            .unwrap();
        token.cancel();
        assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap());
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let s = Scheduler::new(1, 8);
        s.submit(None, |_| panic!("boom")).unwrap();
        // The sole worker must survive to run the next job.
        let (tx, rx) = mpsc::channel();
        s.submit(None, move |_| tx.send(7u32).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
        // The gauge is decremented *after* the job body returns, so poll
        // briefly rather than racing the worker.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while s.running() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "running gauge must not leak on panic"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn metrics_track_admissions_and_queue_wait() {
        let m = SchedMetrics {
            queue_depth: Arc::new(Gauge::new()),
            wait_us: Arc::new(Histo::new()),
            jobs_total: Arc::new(Counter::new()),
        };
        let s = Scheduler::with_metrics(1, 8, Some(m.clone()));
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            let tx = tx.clone();
            s.submit(None, move |_| tx.send(()).unwrap()).unwrap();
        }
        for _ in 0..3 {
            rx.recv().unwrap();
        }
        assert_eq!(m.jobs_total.get(), 3);
        // Every job's queue wait was recorded once it was picked up.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while m.wait_us.snapshot().count != 3 {
            assert!(std::time::Instant::now() < deadline, "waits not recorded");
            std::thread::yield_now();
        }
        assert_eq!(m.queue_depth.get(), 0);
    }

    #[test]
    fn shutdown_and_join_runs_queued_work_first() {
        let s = Scheduler::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..5u32 {
            let tx = tx.clone();
            s.submit(None, move |_| tx.send(i).unwrap()).unwrap();
        }
        s.shutdown_and_join();
        // Join returned, so every admitted job already ran.
        let mut got: Vec<u32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        // Idempotent: a second join finds nothing to do.
        s.shutdown_and_join();
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let s = Scheduler::new(1, 8);
        s.shutdown();
        assert_eq!(
            s.submit(None, |_| {}).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }
}
