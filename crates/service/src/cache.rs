//! Content-hash audit-result cache.
//!
//! Audits are pure functions of `(DepDb epoch, audit spec)`: the epoch
//! pins the dependency data and the spec pins everything else. The cache
//! therefore keys entries by an FNV-1a content hash of the spec's
//! *canonical JSON* (the vendored serde's objects are key-sorted, so
//! serialization is deterministic) concatenated with the epoch, and an
//! ingest that bumps the epoch makes every older entry unreachable —
//! [`AuditCache::purge_stale`] reclaims them eagerly.
//!
//! Repeated or overlapping queries — a dashboard polling the same
//! deployment comparison, many tenants auditing a popular rack pair —
//! hit the cache instead of recomputing BDDs or sampling rounds.

use std::collections::{HashMap, VecDeque};

use serde::Serialize;

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content key of an audit job: the FNV-1a hash indexes the map, and
/// the full canonical form rides along so lookups can reject hash
/// collisions — FNV is not collision-resistant and specs are fully
/// request-controlled, so a bare 64-bit key could be made to alias
/// another tenant's entry and silently serve the wrong report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobKey {
    hash: u64,
    canonical: String,
}

/// Builds the content key: epoch ‖ kind tag ‖ canonical spec JSON.
///
/// The `kind` tag keeps SIA and PIA jobs with coincidentally identical
/// JSON from colliding.
pub fn job_key<T: Serialize>(epoch: u64, kind: &str, spec: &T) -> JobKey {
    let spec_json = serde_json::to_string(spec).expect("specs always serialize");
    let canonical = format!("{epoch}\u{1f}{kind}\u{1f}{spec_json}");
    JobKey {
        hash: fnv1a(canonical.as_bytes()),
        canonical,
    }
}

struct Entry<V> {
    value: V,
    epoch: u64,
    /// Full canonical key, compared on lookup to reject hash collisions.
    canonical: String,
    /// Last-touch sequence number: bumped on insert *and* on every hit,
    /// making eviction least-recently-*used*, not first-in-first-out.
    seq: u64,
}

/// Bounded map from job key to cached audit result, evicting the least
/// recently used entry at capacity — hot specs (dashboards polling the
/// same deployment comparison) survive cold sweeps of one-off queries.
pub struct AuditCache<V> {
    entries: HashMap<u64, Entry<V>>,
    /// `(key, seq)` in touch order; stale pairs (re-touched, overwritten
    /// or purged entries) are skipped lazily at eviction time, keeping
    /// eviction amortized O(1) instead of scanning the map.
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    next_seq: u64,
    hits: u64,
    misses: u64,
}

impl<V: Clone> AuditCache<V> {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        AuditCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            next_seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a result, counting the hit or miss and refreshing the
    /// entry's recency on a hit (LRU promotion). A hash collision (same
    /// hash, different canonical key) counts as a miss.
    pub fn get(&mut self, key: &JobKey) -> Option<V> {
        match self.entries.get_mut(&key.hash) {
            Some(e) if e.canonical == key.canonical => {
                self.hits += 1;
                e.seq = self.next_seq;
                self.order.push_back((key.hash, self.next_seq));
                self.next_seq += 1;
                let value = e.value.clone();
                self.compact_order();
                Some(value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Keeps the lazy recency queue from outgrowing the map unboundedly
    /// when the same keys are re-touched repeatedly (hits push too).
    fn compact_order(&mut self) {
        if self.order.len() > self.capacity.saturating_mul(2).max(64) {
            let entries = &self.entries;
            self.order
                .retain(|(k, seq)| entries.get(k).is_some_and(|e| e.seq == *seq));
        }
    }

    /// Stores a result computed at `epoch`. At capacity, the least
    /// recently used entry is evicted first.
    pub fn insert(&mut self, key: JobKey, epoch: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key.hash) {
            // Pop queue pairs until one still names a live entry.
            while let Some((k, seq)) = self.order.pop_front() {
                if self.entries.get(&k).is_some_and(|e| e.seq == seq) {
                    self.entries.remove(&k);
                    break;
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order.push_back((key.hash, seq));
        self.entries.insert(
            key.hash,
            Entry {
                value,
                epoch,
                canonical: key.canonical,
                seq,
            },
        );
        self.compact_order();
    }

    /// Drops every entry computed before `current_epoch`. Keys embed the
    /// epoch, so stale entries can never be *hit* — this reclaims their
    /// memory as soon as an ingest invalidates them.
    pub fn purge_stale(&mut self, current_epoch: u64) {
        self.entries.retain(|_, e| e.epoch >= current_epoch);
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> JobKey {
        job_key(1, "test", &n)
    }

    #[test]
    fn job_key_is_deterministic_and_epoch_sensitive() {
        let spec = vec!["a".to_string(), "b".to_string()];
        assert_eq!(job_key(1, "sia", &spec), job_key(1, "sia", &spec));
        assert_ne!(job_key(1, "sia", &spec), job_key(2, "sia", &spec));
        assert_ne!(job_key(1, "sia", &spec), job_key(1, "pia", &spec));
        let other = vec!["a".to_string(), "c".to_string()];
        assert_ne!(job_key(1, "sia", &spec), job_key(1, "sia", &other));
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c: AuditCache<u32> = AuditCache::new(4);
        assert_eq!(c.get(&key(7)), None);
        c.insert(key(7), 1, 42);
        assert_eq!(c.get(&key(7)), Some(42));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn hash_collision_is_a_miss_not_a_wrong_hit() {
        let mut c: AuditCache<u32> = AuditCache::new(4);
        // Forge a key whose hash aliases key(7) but whose canonical
        // form differs — must NOT be served key(7)'s value.
        let honest = key(7);
        let forged = JobKey {
            hash: honest.hash,
            canonical: "something else entirely".to_string(),
        };
        c.insert(honest.clone(), 1, 42);
        assert_eq!(c.get(&forged), None, "collision must miss");
        assert_eq!(c.get(&honest), Some(42));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c: AuditCache<u32> = AuditCache::new(2);
        c.insert(key(1), 1, 10);
        c.insert(key(2), 1, 20);
        // Touch key(1): key(2) is now the LRU entry.
        assert_eq!(c.get(&key(1)), Some(10));
        c.insert(key(3), 1, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(2)), None, "LRU entry evicted");
        assert_eq!(c.get(&key(1)), Some(10), "hot entry survives");
        assert_eq!(c.get(&key(3)), Some(30));
    }

    #[test]
    fn untouched_entries_evict_in_insertion_order() {
        let mut c: AuditCache<u32> = AuditCache::new(2);
        c.insert(key(1), 1, 10);
        c.insert(key(2), 1, 20);
        c.insert(key(3), 1, 30);
        assert_eq!(c.get(&key(1)), None, "no hits => LRU degenerates to FIFO");
        assert_eq!(c.get(&key(2)), Some(20));
    }

    #[test]
    fn repeated_hits_do_not_bloat_the_recency_queue() {
        let mut c: AuditCache<u32> = AuditCache::new(2);
        c.insert(key(1), 1, 10);
        for _ in 0..10_000 {
            assert_eq!(c.get(&key(1)), Some(10));
        }
        assert!(
            c.order.len() <= 128,
            "lazy queue must stay bounded, got {}",
            c.order.len()
        );
    }

    #[test]
    fn purge_stale_drops_older_epochs() {
        let mut c: AuditCache<u32> = AuditCache::new(8);
        c.insert(key(1), 1, 10);
        c.insert(key(2), 2, 20);
        c.purge_stale(2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(2)), Some(20));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: AuditCache<u32> = AuditCache::new(0);
        c.insert(key(1), 1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&key(1)), None);
    }
}
