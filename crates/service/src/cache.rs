//! Content-hash audit-result cache with per-shard epoch pins.
//!
//! Audits are pure functions of `(dependency data read, audit spec)`.
//! The dependency store is sharded with per-shard epochs
//! ([`indaas_deps::ShardedDepDb`]), and a SIA audit reads only the
//! shards its candidate hosts route to — so the cache keys entries by an
//! FNV-1a content hash of the spec's *canonical JSON* (the vendored
//! serde's objects are key-sorted, so serialization is deterministic)
//! concatenated with the `(shard, epoch)` pins of exactly the shards the
//! spec reads. An ingest that bumps *other* shards' epochs leaves those
//! keys — and therefore those cached reports — perfectly hot; only an
//! ingest touching a read shard makes an entry unreachable, and
//! [`AuditCache::purge_stale`] reclaims such entries eagerly (and
//! short-circuits entirely when the epoch vector hasn't moved).
//!
//! Repeated or overlapping queries — a dashboard polling the same
//! deployment comparison, many tenants auditing a popular rack pair —
//! hit the cache instead of recomputing BDDs or sampling rounds.
//!
//! The same [`EpochPins`] mechanism drives the protocol-v2 push path:
//! a subscription ([`crate::subs::SubscriptionRegistry`]) is pinned to
//! exactly the pins its spec's cache key embeds, so "which ingests
//! invalidate this cached report" and "which ingests wake this
//! subscriber" are one answer — and a pushed re-audit lands back in
//! this cache, where every other subscriber to the same spec (and
//! every poller) hits it for free.

use std::collections::{HashMap, VecDeque};

use indaas_deps::{Epoch, EpochVector};
use serde::Serialize;

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `(shard, epoch)` pairs an audit read — what pins a cache entry to
/// the data it was computed from. Empty pins mean the result does not
/// depend on the dependency database at all (PIA inputs travel in the
/// request) and can never go stale.
pub type EpochPins = Vec<(u32, Epoch)>;

/// Content key of an audit job: the FNV-1a hash indexes the map, and
/// the full canonical form rides along so lookups can reject hash
/// collisions — FNV is not collision-resistant and specs are fully
/// request-controlled, so a bare 64-bit key could be made to alias
/// another tenant's entry and silently serve the wrong report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobKey {
    hash: u64,
    canonical: String,
}

/// Builds the content key: scope JSON ‖ kind tag ‖ canonical spec JSON.
///
/// `scope` is whatever pins the result to the data it reads — the
/// [`EpochPins`] of the shards a SIA spec touches, a bare epoch, or `()`
/// for data-independent jobs. The `kind` tag keeps SIA and PIA jobs with
/// coincidentally identical JSON from colliding.
pub fn job_key<S: Serialize, T: Serialize>(scope: &S, kind: &str, spec: &T) -> JobKey {
    let scope_json = serde_json::to_string(scope).expect("scopes always serialize"); // lint:allow(panic_path) -- audit scopes are plain data; JSON serialization cannot fail
    let spec_json = serde_json::to_string(spec).expect("specs always serialize"); // lint:allow(panic_path) -- audit specs are plain data; JSON serialization cannot fail
    let canonical = format!("{scope_json}\u{1f}{kind}\u{1f}{spec_json}");
    JobKey {
        hash: fnv1a(canonical.as_bytes()),
        canonical,
    }
}

struct Entry<V> {
    value: V,
    /// The `(shard, epoch)` pairs the result was computed against;
    /// compared to the live epoch vector to purge stale entries.
    pins: EpochPins,
    /// Full canonical key, compared on lookup to reject hash collisions.
    canonical: String,
    /// Last-touch sequence number: bumped on insert *and* on every hit,
    /// making eviction least-recently-*used*, not first-in-first-out.
    seq: u64,
}

/// Bounded map from job key to cached audit result, evicting the least
/// recently used entry at capacity — hot specs (dashboards polling the
/// same deployment comparison) survive cold sweeps of one-off queries.
pub struct AuditCache<V> {
    entries: HashMap<u64, Entry<V>>,
    /// `(key, seq)` in touch order; stale pairs (re-touched, overwritten
    /// or purged entries) are skipped lazily at eviction time, keeping
    /// eviction amortized O(1) instead of scanning the map.
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    next_seq: u64,
    hits: u64,
    misses: u64,
    /// The epoch vector of the last purge — an unchanged vector means
    /// nothing can have gone stale since, so the purge walk is skipped.
    purged_at: Option<EpochVector>,
}

impl<V: Clone> AuditCache<V> {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        AuditCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            next_seq: 0,
            hits: 0,
            misses: 0,
            purged_at: None,
        }
    }

    /// Looks up a result, counting the hit or miss and refreshing the
    /// entry's recency on a hit (LRU promotion). A hash collision (same
    /// hash, different canonical key) counts as a miss.
    pub fn get(&mut self, key: &JobKey) -> Option<V> {
        match self.entries.get_mut(&key.hash) {
            Some(e) if e.canonical == key.canonical => {
                self.hits += 1;
                e.seq = self.next_seq;
                self.order.push_back((key.hash, self.next_seq));
                self.next_seq += 1;
                let value = e.value.clone();
                self.compact_order();
                Some(value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Keeps the lazy recency queue from outgrowing the map unboundedly
    /// when the same keys are re-touched repeatedly (hits push too).
    fn compact_order(&mut self) {
        if self.order.len() > self.capacity.saturating_mul(2).max(64) {
            let entries = &self.entries;
            self.order
                .retain(|(k, seq)| entries.get(k).is_some_and(|e| e.seq == *seq));
        }
    }

    /// Stores a result computed against the given epoch pins. At
    /// capacity, the least recently used entry is evicted first.
    pub fn insert(&mut self, key: JobKey, pins: EpochPins, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key.hash) {
            // Pop queue pairs until one still names a live entry.
            while let Some((k, seq)) = self.order.pop_front() {
                if self.entries.get(&k).is_some_and(|e| e.seq == seq) {
                    self.entries.remove(&k);
                    break;
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order.push_back((key.hash, seq));
        self.entries.insert(
            key.hash,
            Entry {
                value,
                pins,
                canonical: key.canonical,
                seq,
            },
        );
        self.compact_order();
    }

    /// Drops every entry whose pinned shards have moved past the epochs
    /// it was computed at. Keys embed the pins, so stale entries can
    /// never be *hit* — this reclaims their memory as soon as an ingest
    /// invalidates them, and it goes per-shard: an entry pinned only to
    /// untouched shards survives.
    ///
    /// Purges are **monotonic**: with no global DB lock, concurrent
    /// writers can deliver their epoch vectors out of order (writer A
    /// reads `[2,1]`, writer B bumps shard 1 and reads `[2,2]`, B's
    /// purge runs first), so each incoming vector is merged
    /// component-wise-max into the high-water mark and the purge uses
    /// the merge — a late-arriving stale vector can never evict an
    /// entry legitimately pinned to a newer epoch.
    ///
    /// Short-circuits without walking any entry when the merge changes
    /// nothing — an ingest of pure duplicates (or a redundant or
    /// out-of-order purge) costs O(shards), not O(entries).
    pub fn purge_stale(&mut self, current: &EpochVector) {
        let merged: EpochVector = match &self.purged_at {
            None => current.clone(),
            Some(prev) => {
                let len = prev.len().max(current.len());
                EpochVector::from(
                    (0..len)
                        .map(|s| prev.get(s).max(current.get(s)))
                        .collect::<Vec<_>>(),
                )
            }
        };
        if self.purged_at.as_ref() == Some(&merged) {
            return;
        }
        self.entries.retain(|_, e| {
            e.pins
                .iter()
                .all(|&(shard, epoch)| merged.get(shard as usize) == epoch)
        });
        self.purged_at = Some(merged);
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> JobKey {
        job_key(&1u64, "test", &n)
    }

    fn pin(shard: u32, epoch: Epoch) -> EpochPins {
        vec![(shard, epoch)]
    }

    #[test]
    fn job_key_is_deterministic_and_scope_sensitive() {
        let spec = vec!["a".to_string(), "b".to_string()];
        assert_eq!(job_key(&1u64, "sia", &spec), job_key(&1u64, "sia", &spec));
        assert_ne!(job_key(&1u64, "sia", &spec), job_key(&2u64, "sia", &spec));
        assert_ne!(job_key(&1u64, "sia", &spec), job_key(&1u64, "pia", &spec));
        let other = vec!["a".to_string(), "c".to_string()];
        assert_ne!(job_key(&1u64, "sia", &spec), job_key(&1u64, "sia", &other));
        // Epoch-pin scopes: same pins hit, a moved shard epoch misses.
        let pins: EpochPins = vec![(0, 3), (4, 1)];
        let moved: EpochPins = vec![(0, 3), (4, 2)];
        assert_eq!(job_key(&pins, "sia", &spec), job_key(&pins, "sia", &spec));
        assert_ne!(job_key(&pins, "sia", &spec), job_key(&moved, "sia", &spec));
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c: AuditCache<u32> = AuditCache::new(4);
        assert_eq!(c.get(&key(7)), None);
        c.insert(key(7), pin(0, 1), 42);
        assert_eq!(c.get(&key(7)), Some(42));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn hash_collision_is_a_miss_not_a_wrong_hit() {
        let mut c: AuditCache<u32> = AuditCache::new(4);
        // Forge a key whose hash aliases key(7) but whose canonical
        // form differs — must NOT be served key(7)'s value.
        let honest = key(7);
        let forged = JobKey {
            hash: honest.hash,
            canonical: "something else entirely".to_string(),
        };
        c.insert(honest.clone(), pin(0, 1), 42);
        assert_eq!(c.get(&forged), None, "collision must miss");
        assert_eq!(c.get(&honest), Some(42));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c: AuditCache<u32> = AuditCache::new(2);
        c.insert(key(1), pin(0, 1), 10);
        c.insert(key(2), pin(0, 1), 20);
        // Touch key(1): key(2) is now the LRU entry.
        assert_eq!(c.get(&key(1)), Some(10));
        c.insert(key(3), pin(0, 1), 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(2)), None, "LRU entry evicted");
        assert_eq!(c.get(&key(1)), Some(10), "hot entry survives");
        assert_eq!(c.get(&key(3)), Some(30));
    }

    #[test]
    fn untouched_entries_evict_in_insertion_order() {
        let mut c: AuditCache<u32> = AuditCache::new(2);
        c.insert(key(1), pin(0, 1), 10);
        c.insert(key(2), pin(0, 1), 20);
        c.insert(key(3), pin(0, 1), 30);
        assert_eq!(c.get(&key(1)), None, "no hits => LRU degenerates to FIFO");
        assert_eq!(c.get(&key(2)), Some(20));
    }

    #[test]
    fn repeated_hits_do_not_bloat_the_recency_queue() {
        let mut c: AuditCache<u32> = AuditCache::new(2);
        c.insert(key(1), pin(0, 1), 10);
        for _ in 0..10_000 {
            assert_eq!(c.get(&key(1)), Some(10));
        }
        assert!(
            c.order.len() <= 128,
            "lazy queue must stay bounded, got {}",
            c.order.len()
        );
    }

    #[test]
    fn purge_stale_is_per_shard() {
        let mut c: AuditCache<u32> = AuditCache::new(8);
        c.insert(key(1), pin(0, 1), 10); // pinned to shard 0 @ epoch 1
        c.insert(key(2), pin(1, 1), 20); // pinned to shard 1 @ epoch 1
        c.insert(key(3), vec![(0, 1), (1, 1)], 30); // reads both shards
        c.insert(key(4), vec![], 40); // data-independent: never stale
                                      // Shard 0 moves to epoch 2; shard 1 stays at 1.
        c.purge_stale(&EpochVector::from(vec![2, 1]));
        assert_eq!(c.get(&key(1)), None, "shard-0 entry purged");
        assert_eq!(c.get(&key(2)), Some(20), "shard-1 entry survives");
        assert_eq!(c.get(&key(3)), None, "cross-shard entry touching 0 purged");
        assert_eq!(c.get(&key(4)), Some(40), "pinless entry survives");
    }

    #[test]
    fn purge_stale_short_circuits_on_unchanged_epochs() {
        let mut c: AuditCache<u32> = AuditCache::new(8);
        let live = EpochVector::from(vec![1, 1]);
        c.insert(key(1), pin(0, 1), 10);
        c.purge_stale(&live);
        assert_eq!(c.len(), 1, "entry at the live epochs survives a purge");
        // Regression: repeated purges at an unchanged vector must not
        // evict anything and must not touch the (hits, misses) counters
        // — a later lookup still hits.
        let stats_before = c.stats();
        for _ in 0..100 {
            c.purge_stale(&live);
        }
        assert_eq!(c.stats(), stats_before, "purges never count as lookups");
        assert_eq!(c.get(&key(1)), Some(10), "entry still hot after purges");
        assert_eq!(c.stats(), (stats_before.0 + 1, stats_before.1));
    }

    #[test]
    fn out_of_order_purge_cannot_evict_fresher_entries() {
        // With per-shard locking, two writers can deliver their epoch
        // vectors to the cache in either order. The later-epoch purge
        // arriving first must win: a stale vector limping in afterwards
        // may not evict entries pinned to the newer epochs.
        let mut c: AuditCache<u32> = AuditCache::new(8);
        c.purge_stale(&EpochVector::from(vec![2, 2])); // writer B first
        c.insert(key(1), pin(1, 2), 10); // audit pinned to shard 1 @ 2
        c.purge_stale(&EpochVector::from(vec![2, 1])); // writer A, stale
        assert_eq!(
            c.get(&key(1)),
            Some(10),
            "a stale purge vector must not evict an entry at the high-water epoch"
        );
        // A genuinely newer vector still evicts it.
        c.purge_stale(&EpochVector::from(vec![2, 3]));
        assert_eq!(c.get(&key(1)), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: AuditCache<u32> = AuditCache::new(0);
        c.insert(key(1), pin(0, 1), 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&key(1)), None);
    }
}
